"""Setup shim so `pip install -e .` / `python setup.py develop` work alongside pyproject.toml."""
from setuptools import setup

setup()
