"""Host-side drivers that run the pair-count kernels over a tiled schedule.

These functions are the "GPU phase" of the mining pipeline: transfer the
packed data to the device once, loop over the upper-triangle tiles, launch
one kernel per tile, download each tile's result matrix ``Z_{p,q}`` and
assemble the full symmetric count matrix on the host.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.bitmap import BitmapIndex
from repro.core.collection import BatmapCollection
from repro.core.results import SparseAccumulator
from repro.gpu.device import DeviceSpec, GTX_285
from repro.gpu.executor import GpuSimulator
from repro.kernels.bitmap_kernel import BitmapAndPopcountKernel
from repro.kernels.pair_count import PairCountKernel
from repro.kernels.tiling import TileScheduler, pad_to_multiple
from repro.utils.validation import require, require_positive

__all__ = ["DeviceRunResult", "run_batmap_pair_counts", "run_bitmap_pair_counts"]


@dataclass
class DeviceRunResult:
    """Counts plus the simulator that produced them (for stats and timing)."""

    counts: np.ndarray        #: (n, n) symmetric matrix of pair intersection counts
    simulator: GpuSimulator
    tiles: int
    #: Sparse/pruned runs return a CountResult (original index order) here
    #: instead of the dense sorted-order matrix; ``counts`` is then None.
    result: object | None = None
    tiles_skipped: int = 0

    @property
    def device_seconds(self) -> float:
        """Modelled kernel execution time on the device."""
        return self.simulator.totals.device_seconds

    @property
    def transfer_seconds(self) -> float:
        """Modelled host<->device transfer time."""
        return self.simulator.totals.transfer_seconds

    @property
    def total_device_bytes(self) -> int:
        return self.simulator.combined_stats().global_bytes_total

    @property
    def achieved_bandwidth_gbps(self) -> float:
        return self.simulator.achieved_bandwidth_bytes_per_second() / 1e9

    @property
    def coalescing_efficiency(self) -> float:
        return self.simulator.combined_stats().coalescing_efficiency


def run_batmap_pair_counts(
    collection: BatmapCollection,
    *,
    device: DeviceSpec = GTX_285,
    tile_size: int = 2048,
    work_group: tuple[int, int] = (16, 16),
    simulator: GpuSimulator | None = None,
    compute: str = "kernel",
    workers: int | None = None,
    result_format: str = "dense",
    min_support: int = 0,
) -> DeviceRunResult:
    """Compute every pairwise intersection count of a batmap collection on the simulator.

    The returned matrix is indexed by *sorted* batmap order (the device
    scheduling order); callers that need original indices should remap with
    ``collection.order`` — the mining pipeline does this in postprocessing.

    With ``result_format="sparse"`` the driver accumulates only the nonzero
    upper-triangle entries (already mapped to *original* index order) into a
    :class:`~repro.core.results.SparseCountResult` on ``DeviceRunResult.result``
    and leaves ``counts`` as ``None``.  A positive ``min_support`` lets the
    kernel path skip whole tiles whose set-size bounds cannot reach the
    threshold — those launches never happen, so the modelled device time and
    traffic shrink with the pruning.

    ``compute`` selects how the counts themselves are produced:

    * ``"kernel"`` (default) — simulate every tiled kernel launch work-group
      by work-group, recording the full traffic/coalescing statistics and the
      modelled device time;
    * ``"batch"`` — take the (bit-identical) counts from the host-side
      vectorised batch engine (:mod:`repro.core.batch`) and skip the
      per-work-group simulation.  Only the host->device transfer is modelled
      (``tiles == 0``, no launch records); use this when the counts matter
      but per-launch statistics do not.
    * ``"parallel"`` — count for real across ``workers`` processes over one
      shared-memory copy of the packed buffer
      (:class:`~repro.parallel.executor.ParallelPairCounter`); bit-identical
      to ``"batch"``.  Small collections (or a single available worker) fall
      back to the serial batch engine automatically.  ``workers=None``
      auto-selects from the machine's core count.
    * ``"auto"`` — let the workload planner
      (:func:`repro.core.plan.plan_counts`) pick between the batch engine
      and the executor from the collection's size, width-class mix and the
      available cores.  The simulator is never auto-selected — it models a
      device, it does not serve requests.
    """
    require_positive(tile_size, "tile_size")
    if compute not in ("kernel", "batch", "parallel", "auto"):
        raise ValueError(
            f"compute must be 'kernel', 'batch', 'parallel' or 'auto', got {compute!r}"
        )
    require(result_format in ("dense", "sparse"),
            f"result_format must be 'dense' or 'sparse', got {result_format!r}")
    sparse = result_format == "sparse"
    n = len(collection)
    sim = simulator or GpuSimulator(device)
    buffer = collection.device_buffer()
    sim.upload("batmaps", buffer.words)

    if compute == "auto":
        from repro.core.plan import plan_counts

        plan = plan_counts(collection, workers=workers)
        # The driver always produces a full sorted-order matrix; "host"
        # (point-query) plans have no cheaper shape here, so they run on the
        # batch engine.
        compute = "parallel" if plan.backend == "parallel" else "batch"

    if compute == "parallel":
        # Deferred import: repro.parallel.executor itself imports the tiling
        # module of this package, so a module-level import would be circular.
        from repro.parallel.executor import ParallelPairCounter, recommended_backend

        if recommended_backend(collection, workers=workers) == "parallel":
            with ParallelPairCounter(collection, workers=workers) as counter:
                if sparse:
                    result = counter.count_result(
                        result_format="sparse", min_support=min_support)
                    return DeviceRunResult(
                        counts=None, simulator=sim, tiles=0, result=result,
                        tiles_skipped=(result.stats or {}).get("tiles_skipped", 0))
                counts = counter.counts_sorted().copy()
            return DeviceRunResult(counts=counts, simulator=sim, tiles=0)
        compute = "batch"

    if compute == "batch":
        if sparse:
            result = collection.batch_counter().count_result(
                result_format="sparse", min_support=min_support)
            return DeviceRunResult(
                counts=None, simulator=sim, tiles=0, result=result,
                tiles_skipped=(result.stats or {}).get("tiles_skipped", 0))
        counts = collection.batch_counter().counts_sorted().copy()
        return DeviceRunResult(counts=counts, simulator=sim, tiles=0)

    order = collection.order
    accumulator = None
    bounds = None
    counts = None
    tiles_skipped = 0
    if sparse:
        accumulator = SparseAccumulator(n, min_support=min_support)
        bounds = np.array([bm.set_size for bm in collection.batmaps_sorted],
                          dtype=np.int64)
    else:
        counts = np.zeros((n, n), dtype=np.int64)
    scheduler = TileScheduler(n, tile_size)
    for tile in scheduler:
        if sparse and min_support > 0:
            row_bound = bounds[tile.row_start:tile.row_end].max(initial=0)
            col_bound = bounds[tile.col_start:tile.col_end].max(initial=0)
            if min(row_bound, col_bound) < min_support:
                tiles_skipped += 1
                continue
        kernel = PairCountKernel(
            offsets=buffer.offsets,
            widths=buffer.widths,
            n_batmaps=n,
            row_base=tile.row_start,
            col_base=tile.col_start,
            tile_shape=(tile.rows, tile.cols),
        )
        kernel.local_size = tuple(work_group)
        sim.allocate("results", (tile.rows * tile.cols,), np.int64)
        global_size = (
            pad_to_multiple(tile.rows, work_group[0]),
            pad_to_multiple(tile.cols, work_group[1]),
        )
        sim.launch(kernel, global_size)
        z = sim.download("results").reshape(tile.rows, tile.cols)
        sim.free("results")
        if sparse:
            rows = np.arange(tile.row_start, tile.row_end)
            cols = np.arange(tile.col_start, tile.col_end)
            if tile.is_diagonal:
                # Diagonal tiles hold both triangles; keep slot-space r <= c
                # so the flipped original-order entries coalesce once.
                z = np.where(rows[:, None] <= cols[None, :], z, 0)
            accumulator.add_block(order[rows], order[cols], z)
        else:
            counts[tile.row_start:tile.row_end, tile.col_start:tile.col_end] = z
            if not tile.is_diagonal:
                counts[tile.col_start:tile.col_end, tile.row_start:tile.row_end] = z.T
    if sparse:
        accumulator.tiles_total = len(scheduler)
        accumulator.tiles_skipped = tiles_skipped
        return DeviceRunResult(
            counts=None, simulator=sim, tiles=len(scheduler) - tiles_skipped,
            result=accumulator.finalize(), tiles_skipped=tiles_skipped)
    return DeviceRunResult(counts=counts, simulator=sim, tiles=len(scheduler))


def run_bitmap_pair_counts(
    index: BitmapIndex,
    *,
    device: DeviceSpec = GTX_285,
    tile_size: int = 2048,
    work_group: tuple[int, int] = (16, 16),
    simulator: GpuSimulator | None = None,
) -> DeviceRunResult:
    """Same driver for the uncompressed-bitmap layout (the PBI baseline)."""
    require_positive(tile_size, "tile_size")
    n = index.n_sets
    sim = simulator or GpuSimulator(device)
    sim.upload("bitmaps", index.words.ravel())

    counts = np.zeros((n, n), dtype=np.int64)
    scheduler = TileScheduler(n, tile_size)
    for tile in scheduler:
        kernel = BitmapAndPopcountKernel(
            words_per_set=index.words_per_set,
            n_sets=n,
            row_base=tile.row_start,
            col_base=tile.col_start,
            tile_shape=(tile.rows, tile.cols),
        )
        kernel.local_size = tuple(work_group)
        sim.allocate("results", (tile.rows * tile.cols,), np.int64)
        global_size = (
            pad_to_multiple(tile.rows, work_group[0]),
            pad_to_multiple(tile.cols, work_group[1]),
        )
        sim.launch(kernel, global_size)
        z = sim.download("results").reshape(tile.rows, tile.cols)
        sim.free("results")
        counts[tile.row_start:tile.row_end, tile.col_start:tile.col_end] = z
        if not tile.is_diagonal:
            counts[tile.col_start:tile.col_end, tile.row_start:tile.row_end] = z.T
    return DeviceRunResult(counts=counts, simulator=sim, tiles=len(scheduler))
