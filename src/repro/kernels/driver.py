"""Host-side drivers that run the pair-count kernels over a tiled schedule.

These functions are the "GPU phase" of the mining pipeline: transfer the
packed data to the device once, loop over the upper-triangle tiles, launch
one kernel per tile, download each tile's result matrix ``Z_{p,q}`` and
assemble the full symmetric count matrix on the host.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.bitmap import BitmapIndex
from repro.core.collection import BatmapCollection
from repro.gpu.device import DeviceSpec, GTX_285
from repro.gpu.executor import GpuSimulator
from repro.kernels.bitmap_kernel import BitmapAndPopcountKernel
from repro.kernels.pair_count import PairCountKernel
from repro.kernels.tiling import TileScheduler, pad_to_multiple
from repro.utils.validation import require_positive

__all__ = ["DeviceRunResult", "run_batmap_pair_counts", "run_bitmap_pair_counts"]


@dataclass
class DeviceRunResult:
    """Counts plus the simulator that produced them (for stats and timing)."""

    counts: np.ndarray        #: (n, n) symmetric matrix of pair intersection counts
    simulator: GpuSimulator
    tiles: int

    @property
    def device_seconds(self) -> float:
        """Modelled kernel execution time on the device."""
        return self.simulator.totals.device_seconds

    @property
    def transfer_seconds(self) -> float:
        """Modelled host<->device transfer time."""
        return self.simulator.totals.transfer_seconds

    @property
    def total_device_bytes(self) -> int:
        return self.simulator.combined_stats().global_bytes_total

    @property
    def achieved_bandwidth_gbps(self) -> float:
        return self.simulator.achieved_bandwidth_bytes_per_second() / 1e9

    @property
    def coalescing_efficiency(self) -> float:
        return self.simulator.combined_stats().coalescing_efficiency


def run_batmap_pair_counts(
    collection: BatmapCollection,
    *,
    device: DeviceSpec = GTX_285,
    tile_size: int = 2048,
    work_group: tuple[int, int] = (16, 16),
    simulator: GpuSimulator | None = None,
    compute: str = "kernel",
    workers: int | None = None,
) -> DeviceRunResult:
    """Compute every pairwise intersection count of a batmap collection on the simulator.

    The returned matrix is indexed by *sorted* batmap order (the device
    scheduling order); callers that need original indices should remap with
    ``collection.order`` — the mining pipeline does this in postprocessing.

    ``compute`` selects how the counts themselves are produced:

    * ``"kernel"`` (default) — simulate every tiled kernel launch work-group
      by work-group, recording the full traffic/coalescing statistics and the
      modelled device time;
    * ``"batch"`` — take the (bit-identical) counts from the host-side
      vectorised batch engine (:mod:`repro.core.batch`) and skip the
      per-work-group simulation.  Only the host->device transfer is modelled
      (``tiles == 0``, no launch records); use this when the counts matter
      but per-launch statistics do not.
    * ``"parallel"`` — count for real across ``workers`` processes over one
      shared-memory copy of the packed buffer
      (:class:`~repro.parallel.executor.ParallelPairCounter`); bit-identical
      to ``"batch"``.  Small collections (or a single available worker) fall
      back to the serial batch engine automatically.  ``workers=None``
      auto-selects from the machine's core count.
    * ``"auto"`` — let the workload planner
      (:func:`repro.core.plan.plan_counts`) pick between the batch engine
      and the executor from the collection's size, width-class mix and the
      available cores.  The simulator is never auto-selected — it models a
      device, it does not serve requests.
    """
    require_positive(tile_size, "tile_size")
    if compute not in ("kernel", "batch", "parallel", "auto"):
        raise ValueError(
            f"compute must be 'kernel', 'batch', 'parallel' or 'auto', got {compute!r}"
        )
    n = len(collection)
    sim = simulator or GpuSimulator(device)
    buffer = collection.device_buffer()
    sim.upload("batmaps", buffer.words)

    if compute == "auto":
        from repro.core.plan import plan_counts

        plan = plan_counts(collection, workers=workers)
        # The driver always produces a full sorted-order matrix; "host"
        # (point-query) plans have no cheaper shape here, so they run on the
        # batch engine.
        compute = "parallel" if plan.backend == "parallel" else "batch"

    if compute == "parallel":
        # Deferred import: repro.parallel.executor itself imports the tiling
        # module of this package, so a module-level import would be circular.
        from repro.parallel.executor import ParallelPairCounter, recommended_backend

        if recommended_backend(collection, workers=workers) == "parallel":
            with ParallelPairCounter(collection, workers=workers) as counter:
                counts = counter.counts_sorted().copy()
        else:
            counts = collection.batch_counter().counts_sorted().copy()
        return DeviceRunResult(counts=counts, simulator=sim, tiles=0)

    if compute == "batch":
        counts = collection.batch_counter().counts_sorted().copy()
        return DeviceRunResult(counts=counts, simulator=sim, tiles=0)

    counts = np.zeros((n, n), dtype=np.int64)
    scheduler = TileScheduler(n, tile_size)
    for tile in scheduler:
        kernel = PairCountKernel(
            offsets=buffer.offsets,
            widths=buffer.widths,
            n_batmaps=n,
            row_base=tile.row_start,
            col_base=tile.col_start,
            tile_shape=(tile.rows, tile.cols),
        )
        kernel.local_size = tuple(work_group)
        sim.allocate("results", (tile.rows * tile.cols,), np.int64)
        global_size = (
            pad_to_multiple(tile.rows, work_group[0]),
            pad_to_multiple(tile.cols, work_group[1]),
        )
        sim.launch(kernel, global_size)
        z = sim.download("results").reshape(tile.rows, tile.cols)
        sim.free("results")
        counts[tile.row_start:tile.row_end, tile.col_start:tile.col_end] = z
        if not tile.is_diagonal:
            counts[tile.col_start:tile.col_end, tile.row_start:tile.row_end] = z.T
    return DeviceRunResult(counts=counts, simulator=sim, tiles=len(scheduler))


def run_bitmap_pair_counts(
    index: BitmapIndex,
    *,
    device: DeviceSpec = GTX_285,
    tile_size: int = 2048,
    work_group: tuple[int, int] = (16, 16),
    simulator: GpuSimulator | None = None,
) -> DeviceRunResult:
    """Same driver for the uncompressed-bitmap layout (the PBI baseline)."""
    require_positive(tile_size, "tile_size")
    n = index.n_sets
    sim = simulator or GpuSimulator(device)
    sim.upload("bitmaps", index.words.ravel())

    counts = np.zeros((n, n), dtype=np.int64)
    scheduler = TileScheduler(n, tile_size)
    for tile in scheduler:
        kernel = BitmapAndPopcountKernel(
            words_per_set=index.words_per_set,
            n_sets=n,
            row_base=tile.row_start,
            col_base=tile.col_start,
            tile_shape=(tile.rows, tile.cols),
        )
        kernel.local_size = tuple(work_group)
        sim.allocate("results", (tile.rows * tile.cols,), np.int64)
        global_size = (
            pad_to_multiple(tile.rows, work_group[0]),
            pad_to_multiple(tile.cols, work_group[1]),
        )
        sim.launch(kernel, global_size)
        z = sim.download("results").reshape(tile.rows, tile.cols)
        sim.free("results")
        counts[tile.row_start:tile.row_end, tile.col_start:tile.col_end] = z
        if not tile.is_diagonal:
            counts[tile.col_start:tile.col_end, tile.row_start:tile.row_end] = z.T
    return DeviceRunResult(counts=counts, simulator=sim, tiles=len(scheduler))
