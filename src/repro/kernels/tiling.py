"""Tiling of the n x n pair space into k x k sub-problems (Section III-C).

Two practical constraints shape the device-side schedule in the paper:

* graphics devices that also drive a display enforce a watchdog limit of a
  few seconds per kernel, so the full ``n x n`` comparison is broken into
  ``k x k`` tiles (the paper uses ``k = 2048``);
* the pair-count matrix is symmetric, so only tiles with ``p <= q`` need to
  be computed — "cutting almost half of the GPU computation time, from n²
  to around binom(n, 2)".

:class:`TileScheduler` enumerates the tiles; :func:`pad_to_multiple` rounds a
tile edge up to the work-group size as the launch geometry requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.utils.validation import require_positive

__all__ = ["Tile", "TileScheduler", "pad_to_multiple"]


def pad_to_multiple(value: int, multiple: int) -> int:
    """Round ``value`` up to the next multiple of ``multiple``."""
    require_positive(multiple, "multiple")
    if value < 0:
        raise ValueError(f"value must be >= 0, got {value}")
    return ((value + multiple - 1) // multiple) * multiple


@dataclass(frozen=True)
class Tile:
    """One k x k sub-problem: batmaps [row_start, row_end) x [col_start, col_end)."""

    p: int
    q: int
    row_start: int
    row_end: int
    col_start: int
    col_end: int

    @property
    def rows(self) -> int:
        return self.row_end - self.row_start

    @property
    def cols(self) -> int:
        return self.col_end - self.col_start

    @property
    def is_diagonal(self) -> bool:
        """Diagonal tiles (p == q) contain each unordered pair twice; the
        postprocessing step keeps only the upper triangle."""
        return self.p == self.q


class TileScheduler:
    """Enumerate the upper-triangle tiles of an ``n x n`` pair matrix."""

    def __init__(self, n_batmaps: int, tile_size: int) -> None:
        require_positive(n_batmaps, "n_batmaps")
        require_positive(tile_size, "tile_size")
        self.n_batmaps = n_batmaps
        self.tile_size = tile_size

    @property
    def tiles_per_side(self) -> int:
        return -(-self.n_batmaps // self.tile_size)

    @property
    def n_tiles(self) -> int:
        """Number of tiles actually launched (upper triangle including diagonal)."""
        t = self.tiles_per_side
        return t * (t + 1) // 2

    @property
    def n_tiles_full(self) -> int:
        """Number of tiles a symmetry-oblivious schedule would launch."""
        return self.tiles_per_side ** 2

    def __iter__(self) -> Iterator[Tile]:
        k = self.tile_size
        for p in range(self.tiles_per_side):
            for q in range(p, self.tiles_per_side):
                yield Tile(
                    p=p,
                    q=q,
                    row_start=p * k,
                    row_end=min((p + 1) * k, self.n_batmaps),
                    col_start=q * k,
                    col_end=min((q + 1) * k, self.n_batmaps),
                )

    def __len__(self) -> int:
        return self.n_tiles
