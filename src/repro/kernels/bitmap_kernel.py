"""Bitmap AND + popcount kernel — the PBI-GPU baseline on the same simulator.

Fang et al. [11] represent every item's tidlist as an uncompressed bitmap of
``m`` bits and compute pair supports as ``popcount(bitmap_i AND bitmap_j)``.
Running that layout through the same simulator as the batmap kernel isolates
the effect of the *data layout* (dense bitmaps vs batmaps) from everything
else: same device model, same tiling, same coalescing rules.  This drives
experiment E9 (dense vs sparse comparison of Section I-B2a).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import Kernel, WorkGroupContext
from repro.utils.bits import popcount_array

__all__ = ["BitmapAndPopcountKernel"]

#: and + popcount (modelled as 4 ops with a lookup) + accumulate per word pair
OPS_PER_WORD = 6


class BitmapAndPopcountKernel(Kernel):
    """Count ``popcount(row_i AND row_j)`` for all pairs in a tile of bitmaps.

    The bitmaps all have the same width ``words_per_set`` (that is the point
    of the layout — and its space problem), so there is no folding and no
    per-pair masking.
    """

    name = "bitmap_and_popcount"

    def __init__(
        self,
        words_per_set: int,
        n_sets: int,
        *,
        row_base: int = 0,
        col_base: int = 0,
        tile_shape: tuple[int, int] | None = None,
        bitmap_buffer: str = "bitmaps",
        result_buffer: str = "results",
        local_size: tuple[int, int] = (16, 16),
    ) -> None:
        if words_per_set <= 0:
            raise ValueError("words_per_set must be positive")
        self.words_per_set = int(words_per_set)
        self.n_sets = int(n_sets)
        self.row_base = int(row_base)
        self.col_base = int(col_base)
        self.tile_shape = tile_shape
        self.bitmap_buffer = bitmap_buffer
        self.result_buffer = result_buffer
        self.local_size = tuple(local_size)

    def run_group(self, ctx: WorkGroupContext) -> None:
        lx, ly = ctx.local_size
        gi, gj = ctx.global_offset
        rows = self.row_base + gi + np.arange(lx)
        cols = self.col_base + gj + np.arange(ly)
        valid_rows = rows < self.n_sets
        valid_cols = cols < self.n_sets
        if not valid_rows.any() or not valid_cols.any():
            return
        safe_rows = np.where(valid_rows, rows, 0)
        safe_cols = np.where(valid_cols, cols, 0)

        shared_a = ctx.alloc_shared("slice_a", (lx, ly), np.uint32)
        shared_b = ctx.alloc_shared("slice_b", (lx, ly), np.uint32)
        counts = np.zeros((lx, ly), dtype=np.int64)
        n_slices = -(-self.words_per_set // ly)

        for s in range(n_slices):
            word_pos = s * ly + np.arange(ly)
            in_range = word_pos < self.words_per_set
            clamped = np.minimum(word_pos, self.words_per_set - 1)
            idx_a = safe_rows[:, None] * self.words_per_set + clamped[None, :]
            idx_b = safe_cols[:, None] * self.words_per_set + clamped[None, :]
            a = ctx.read_global(self.bitmap_buffer, idx_a)
            b = ctx.read_global(self.bitmap_buffer, idx_b)
            ctx.store_shared("slice_a", a.astype(np.uint32))
            ctx.store_shared("slice_b", b.astype(np.uint32))
            ctx.barrier()

            anded = shared_a[:, None, :] & shared_b[None, :, :]
            per_word = popcount_array(anded).astype(np.int64)
            counts += (per_word * in_range[None, None, :]).sum(axis=2)
            ctx.add_ops(lx * ly * ly * OPS_PER_WORD)
            ctx.barrier()

        if self.tile_shape is None:
            raise ValueError("tile_shape must be set before launching the kernel")
        tile_rows, tile_cols = self.tile_shape
        local_rows = gi + np.arange(lx)
        local_cols = gj + np.arange(ly)
        in_tile = (local_rows[:, None] < tile_rows) & (local_cols[None, :] < tile_cols)
        writable = in_tile & valid_rows[:, None] & valid_cols[None, :]
        if not writable.any():
            return
        flat = local_rows[:, None] * tile_cols + local_cols[None, :]
        ctx.write_global(self.result_buffer, flat[writable], counts[writable])
