"""Device kernels for the GPU simulator.

* :class:`~repro.kernels.pair_count.PairCountKernel` — the paper's batmap
  comparison kernel (16x16 work groups, shared-memory staging, SWAR counting).
* :class:`~repro.kernels.bitmap_kernel.BitmapAndPopcountKernel` — the
  uncompressed-bitmap baseline (PBI layout) on the same execution model.
* :class:`~repro.kernels.tiling.TileScheduler` — k x k tiling with
  upper-triangle symmetry pruning.
* :mod:`~repro.kernels.driver` — host-side drivers assembling full pair-count
  matrices from tiled launches.
"""

from repro.kernels.bitmap_kernel import BitmapAndPopcountKernel
from repro.kernels.driver import DeviceRunResult, run_batmap_pair_counts, run_bitmap_pair_counts
from repro.kernels.pair_count import PairCountKernel
from repro.kernels.tiling import Tile, TileScheduler, pad_to_multiple

__all__ = [
    "PairCountKernel",
    "BitmapAndPopcountKernel",
    "Tile",
    "TileScheduler",
    "pad_to_multiple",
    "DeviceRunResult",
    "run_batmap_pair_counts",
    "run_bitmap_pair_counts",
]
