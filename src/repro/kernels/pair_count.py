"""The batmap pair-count kernel (Section III-B of the paper).

Work decomposition, exactly as the paper describes it:

* the global size is ``n x n`` (or one ``k x k`` tile of it), the work-group
  size is 16 x 16;
* the work item with local index ``(li, lj)`` in the group with global offset
  ``(gi, gj)`` is responsible for the pair of batmaps ``(gi + li, gj + lj)``;
* the group repeatedly copies one 16-integer-wide slice of each of its 16 row
  batmaps and 16 column batmaps from global memory into two 16 x 16 shared
  arrays (these loads are coalesced: 16 consecutive 32-bit words per half
  warp), synchronises, and lets every work item compare its pair's slices
  with the branch-free SWAR word comparison;
* batmaps of different widths are folded onto each other by indexing words
  modulo the batmap's width, and word positions beyond the pair's larger
  width are masked out of the count (predication, not branching).

The simulator executes each work group as a handful of vectorised NumPy
operations while recording the same global-memory traffic, shared-memory
traffic and scalar-operation counts the per-thread OpenCL kernel would
generate.
"""

from __future__ import annotations

import numpy as np

from repro.core.swar import count_matches_per_word
from repro.gpu.kernel import Kernel, WorkGroupContext

__all__ = ["PairCountKernel"]

#: scalar operations per 32-bit word comparison: xor, or, sub, xor, and, and,
#: four shifts, three adds, one mask — the instruction sequence of Section III-A.
OPS_PER_WORD_COMPARISON = 14


class PairCountKernel(Kernel):
    """Count |S_a ∩ S_b| for every batmap pair (a, b) inside one tile.

    Parameters
    ----------
    offsets, widths:
        Word offset and word width of every batmap inside the packed device
        buffer (sorted order), as produced by
        :meth:`repro.core.collection.BatmapCollection.device_buffer`.
    n_batmaps:
        Total number of batmaps (pairs outside this range are ignored).
    row_base, col_base:
        Sorted-index origin of the tile being processed.
    result_buffer / batmap_buffer:
        Names of the device buffers holding the output tile (int64, flattened
        ``tile_shape``) and the packed batmap words.
    tile_shape:
        Shape of the output tile (rows, cols); the launch's global size must
        equal this shape padded up to a multiple of the work-group size.
    """

    name = "batmap_pair_count"

    def __init__(
        self,
        offsets: np.ndarray,
        widths: np.ndarray,
        n_batmaps: int,
        *,
        row_base: int = 0,
        col_base: int = 0,
        tile_shape: tuple[int, int] | None = None,
        batmap_buffer: str = "batmaps",
        result_buffer: str = "results",
        local_size: tuple[int, int] = (16, 16),
    ) -> None:
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.widths = np.asarray(widths, dtype=np.int64)
        if self.offsets.shape != self.widths.shape:
            raise ValueError("offsets and widths must have the same length")
        if np.any(self.widths <= 0):
            raise ValueError("every batmap must have a positive word width")
        self.n_batmaps = int(n_batmaps)
        self.row_base = int(row_base)
        self.col_base = int(col_base)
        self.tile_shape = tile_shape
        self.batmap_buffer = batmap_buffer
        self.result_buffer = result_buffer
        self.local_size = tuple(local_size)

    # ------------------------------------------------------------------ #
    def run_group(self, ctx: WorkGroupContext) -> None:
        lx, ly = ctx.local_size
        gi, gj = ctx.global_offset
        rows = self.row_base + gi + np.arange(lx)
        cols = self.col_base + gj + np.arange(ly)
        valid_rows = rows < self.n_batmaps
        valid_cols = cols < self.n_batmaps
        if not valid_rows.any() or not valid_cols.any():
            return

        # Width/offset of each batmap handled by this group; invalid lanes get
        # width 1 so the modulo arithmetic stays defined, and are masked later.
        safe_rows = np.where(valid_rows, rows, 0)
        safe_cols = np.where(valid_cols, cols, 0)
        w_rows = np.where(valid_rows, self.widths[safe_rows], 1)
        w_cols = np.where(valid_cols, self.widths[safe_cols], 1)
        o_rows = np.where(valid_rows, self.offsets[safe_rows], 0)
        o_cols = np.where(valid_cols, self.offsets[safe_cols], 0)

        # Every pair is compared over max(w_a, w_b) word positions.
        pair_limit = np.maximum(w_rows[:, None], w_cols[None, :])
        group_limit = int(pair_limit[np.outer(valid_rows, valid_cols)].max())
        n_slices = -(-group_limit // ly)

        shared_a = ctx.alloc_shared("slice_a", (lx, ly), np.uint32)
        shared_b = ctx.alloc_shared("slice_b", (lx, ly), np.uint32)
        counts = np.zeros((lx, ly), dtype=np.int64)

        for s in range(n_slices):
            word_pos = s * ly + np.arange(ly)
            # Each work item copies one word of a row batmap and one of a
            # column batmap into shared memory (coalesced 16-word reads).
            idx_a = o_rows[:, None] + (word_pos[None, :] % w_rows[:, None])
            idx_b = o_cols[:, None] + (word_pos[None, :] % w_cols[:, None])
            a = ctx.read_global(self.batmap_buffer, idx_a)
            b = ctx.read_global(self.batmap_buffer, idx_b)
            ctx.store_shared("slice_a", a.astype(np.uint32))
            ctx.store_shared("slice_b", b.astype(np.uint32))
            ctx.barrier()

            # All 16x16 pairs compare their 16-word slices (branch free).
            per_word = count_matches_per_word(
                shared_a[:, None, :], shared_b[None, :, :]
            ).astype(np.int64)
            mask = word_pos[None, None, :] < pair_limit[:, :, None]
            counts += (per_word * mask).sum(axis=2)
            ctx.add_ops(lx * ly * ly * OPS_PER_WORD_COMPARISON)
            ctx.barrier()

        if self.tile_shape is None:
            raise ValueError("tile_shape must be set before launching the kernel")
        tile_rows, tile_cols = self.tile_shape
        local_rows = gi + np.arange(lx)
        local_cols = gj + np.arange(ly)
        in_tile = (local_rows[:, None] < tile_rows) & (local_cols[None, :] < tile_cols)
        writable = in_tile & valid_rows[:, None] & valid_cols[None, :]
        if not writable.any():
            return
        flat = local_rows[:, None] * tile_cols + local_cols[None, :]
        ctx.write_global(self.result_buffer, flat[writable], counts[writable])
