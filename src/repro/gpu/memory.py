"""Device memory models: global memory buffers and per-work-group shared memory.

The simulator does not model latency cycle by cycle; it models the two things
that determine the paper's performance story: *how many bytes* move through
each memory system and *how well coalesced* the global accesses are.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import CapacityError, DeviceError, SharedMemoryError
from repro.gpu.coalescing import analyze_access
from repro.gpu.device import DeviceSpec

__all__ = ["GlobalMemory", "SharedMemory", "MemoryTraffic"]


@dataclass
class MemoryTraffic:
    """Byte / transaction counters for one memory space."""

    bytes_read: int = 0
    bytes_written: int = 0
    read_transactions: int = 0
    write_transactions: int = 0
    ideal_read_transactions: int = 0
    ideal_write_transactions: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    @property
    def total_transactions(self) -> int:
        return self.read_transactions + self.write_transactions

    @property
    def coalescing_efficiency(self) -> float:
        actual = self.total_transactions
        if actual == 0:
            return 1.0
        return (self.ideal_read_transactions + self.ideal_write_transactions) / actual

    def merge(self, other: "MemoryTraffic") -> None:
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.read_transactions += other.read_transactions
        self.write_transactions += other.write_transactions
        self.ideal_read_transactions += other.ideal_read_transactions
        self.ideal_write_transactions += other.ideal_write_transactions


class GlobalMemory:
    """The device's global memory: named NumPy buffers plus traffic accounting.

    Buffers are uploaded from the host (tracked as host-to-device transfer
    bytes), read/written by kernels through :meth:`read` / :meth:`write`
    (tracked with the coalescing model) and downloaded back with
    :meth:`download`.
    """

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        self._buffers: dict[str, np.ndarray] = {}
        self.traffic = MemoryTraffic()
        self.host_to_device_bytes = 0
        self.device_to_host_bytes = 0

    # ------------------------------------------------------------------ #
    # Allocation and transfer
    # ------------------------------------------------------------------ #
    @property
    def allocated_bytes(self) -> int:
        return sum(int(buf.nbytes) for buf in self._buffers.values())

    def upload(self, name: str, array: np.ndarray) -> None:
        """Copy a host array into a device buffer (host-to-device transfer)."""
        array = np.ascontiguousarray(array)
        new_total = self.allocated_bytes - self._nbytes_of(name) + int(array.nbytes)
        if new_total > self.device.global_memory_bytes:
            raise CapacityError(
                f"uploading {name!r} ({array.nbytes} B) would exceed device memory "
                f"({self.device.global_memory_bytes} B)"
            )
        self._buffers[name] = array.copy()
        self.host_to_device_bytes += int(array.nbytes)

    def allocate(self, name: str, shape, dtype) -> None:
        """Allocate an uninitialised (zeroed) device buffer without a transfer."""
        array = np.zeros(shape, dtype=dtype)
        new_total = self.allocated_bytes - self._nbytes_of(name) + int(array.nbytes)
        if new_total > self.device.global_memory_bytes:
            raise CapacityError(
                f"allocating {name!r} ({array.nbytes} B) would exceed device memory"
            )
        self._buffers[name] = array

    def download(self, name: str) -> np.ndarray:
        """Copy a device buffer back to the host (device-to-host transfer)."""
        buf = self.buffer(name)
        self.device_to_host_bytes += int(buf.nbytes)
        return buf.copy()

    def free(self, name: str) -> None:
        self._buffers.pop(name, None)

    def buffer(self, name: str) -> np.ndarray:
        if name not in self._buffers:
            raise DeviceError(f"no device buffer named {name!r}")
        return self._buffers[name]

    def _nbytes_of(self, name: str) -> int:
        buf = self._buffers.get(name)
        return int(buf.nbytes) if buf is not None else 0

    # ------------------------------------------------------------------ #
    # Kernel-visible access (with coalescing accounting)
    # ------------------------------------------------------------------ #
    def read(self, name: str, indices: np.ndarray, *, half_warp: int | None = None) -> np.ndarray:
        """Gather elements ``buffer[indices]`` and record the memory traffic.

        ``indices`` are element indices issued in work-item order; they are
        grouped into half warps for the coalescing analysis.
        """
        buf = self.buffer(name)
        indices = np.asarray(indices, dtype=np.int64)
        item = int(buf.dtype.itemsize)
        report = analyze_access(indices.ravel() * item, item,
                                half_warp=half_warp or self.device.half_warp)
        self.traffic.bytes_read += report.bytes_requested
        self.traffic.read_transactions += report.transactions
        self.traffic.ideal_read_transactions += report.ideal_transactions
        return buf[indices]

    def write(self, name: str, indices: np.ndarray, values: np.ndarray,
              *, half_warp: int | None = None) -> None:
        """Scatter ``values`` to ``buffer[indices]`` and record the traffic."""
        buf = self.buffer(name)
        indices = np.asarray(indices, dtype=np.int64)
        item = int(buf.dtype.itemsize)
        report = analyze_access(indices.ravel() * item, item,
                                half_warp=half_warp or self.device.half_warp)
        self.traffic.bytes_written += report.bytes_requested
        self.traffic.write_transactions += report.transactions
        self.traffic.ideal_write_transactions += report.ideal_transactions
        buf[indices] = values


class SharedMemory:
    """Per-work-group scratch memory with a hard capacity check.

    A kernel allocates named arrays at the start of each work group; the
    total must fit in the device's per-multiprocessor shared memory (16 KiB
    on the GTX 285 — the constraint that shapes the paper's 16x16 tile size:
    two 16x16 arrays of 32-bit words are 2 KiB, comfortably resident).
    """

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        self._arrays: dict[str, np.ndarray] = {}
        self.bytes_allocated = 0
        self.peak_bytes = 0
        self.bytes_traffic = 0

    def alloc(self, name: str, shape, dtype) -> np.ndarray:
        if name in self._arrays:
            raise SharedMemoryError(f"shared array {name!r} already allocated in this group")
        array = np.zeros(shape, dtype=dtype)
        if self.bytes_allocated + array.nbytes > self.device.shared_memory_per_mp_bytes:
            raise SharedMemoryError(
                f"work group shared memory overflow: {self.bytes_allocated + array.nbytes} B "
                f"> {self.device.shared_memory_per_mp_bytes} B"
            )
        self._arrays[name] = array
        self.bytes_allocated += int(array.nbytes)
        self.peak_bytes = max(self.peak_bytes, self.bytes_allocated)
        return array

    def store(self, name: str, values: np.ndarray) -> None:
        """Record a write of ``values`` into a shared array (traffic accounting)."""
        arr = self.get(name)
        values = np.asarray(values)
        if values.shape != arr.shape:
            raise SharedMemoryError(
                f"store shape {values.shape} does not match allocation {arr.shape}"
            )
        arr[...] = values
        self.bytes_traffic += int(values.nbytes)

    def get(self, name: str) -> np.ndarray:
        if name not in self._arrays:
            raise SharedMemoryError(f"no shared array named {name!r}")
        return self._arrays[name]

    def reset(self) -> None:
        """Called between work groups: shared memory does not persist."""
        self._arrays.clear()
        self.bytes_allocated = 0
