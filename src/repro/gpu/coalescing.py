"""Global-memory coalescing model (GT200-class rules, simplified).

One of the paper's central arguments is that the batmap comparison kernel
achieves fully coalesced global memory access: the 16 threads of a half warp
read 16 consecutive 32-bit words, which the device services in a single
64-byte transaction.  The simulator quantifies this by replaying the address
stream of each half warp through the rules below and counting transactions.

Rules implemented (simplified from the CUDA/OpenCL best-practice guide the
paper cites as [19]):

* accesses are grouped per half warp (16 work items);
* the device issues one transaction per distinct aligned segment touched,
  where the segment size is 32 B for 1-byte accesses, 64 B for 2- and 4-byte
  accesses and 128 B for 8- and 16-byte accesses;
* a fully scattered half warp therefore costs up to 16 transactions, while a
  contiguous aligned access costs exactly one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require, require_positive

__all__ = ["CoalescingReport", "segment_size_for_access", "transactions_for_half_warp",
           "analyze_access"]


def segment_size_for_access(access_bytes: int) -> int:
    """Aligned segment size used by the coalescer for a given per-thread access width."""
    require_positive(access_bytes, "access_bytes")
    if access_bytes == 1:
        return 32
    if access_bytes in (2, 4):
        return 64
    if access_bytes in (8, 16):
        return 128
    raise ValueError(f"unsupported access width {access_bytes} bytes")


def transactions_for_half_warp(byte_addresses: np.ndarray, access_bytes: int) -> int:
    """Number of memory transactions needed to service one half warp.

    ``byte_addresses`` holds the starting byte address of each work item's
    access (inactive lanes can simply be omitted).
    """
    addresses = np.asarray(byte_addresses, dtype=np.int64)
    if addresses.size == 0:
        return 0
    if addresses.min() < 0:
        raise ValueError("negative byte address")
    segment = segment_size_for_access(access_bytes)
    first = addresses // segment
    last = (addresses + access_bytes - 1) // segment
    return int(np.union1d(first, last).size)


@dataclass(frozen=True)
class CoalescingReport:
    """Aggregate coalescing statistics for an access pattern."""

    transactions: int
    ideal_transactions: int
    bytes_requested: int
    half_warps: int
    segment_bytes: int = 64

    @property
    def efficiency(self) -> float:
        """Ideal / actual transactions; 1.0 means perfectly coalesced."""
        if self.transactions == 0:
            return 1.0
        return self.ideal_transactions / self.transactions

    @property
    def bytes_transferred(self) -> int:
        """Bytes actually moved over the memory bus: whole segments are fetched,
        so poorly coalesced patterns move more than they request."""
        return self.transactions * self.segment_bytes


def analyze_access(
    byte_addresses: np.ndarray,
    access_bytes: int,
    *,
    half_warp: int = 16,
) -> CoalescingReport:
    """Group an address stream into half warps and total the transactions.

    ``byte_addresses`` is ordered by work-item id (the way a kernel issues
    them); it is chunked into groups of ``half_warp`` addresses.
    """
    require(half_warp >= 1, f"half_warp must be >= 1, got {half_warp}")
    addresses = np.asarray(byte_addresses, dtype=np.int64).ravel()
    segment = segment_size_for_access(access_bytes)
    if addresses.size and addresses.min() < 0:
        raise ValueError("negative byte address")
    total = 0
    ideal = 0
    if addresses.size:
        # Vectorised per-half-warp distinct-segment count: pad the address
        # stream to a whole number of half warps (repeating the last address,
        # which never adds a new segment), sort each chunk's touched segments
        # and count the distinct ones.
        n_chunks = -(-addresses.size // half_warp)
        padded = np.full(n_chunks * half_warp, addresses[-1], dtype=np.int64)
        padded[:addresses.size] = addresses
        chunks = padded.reshape(n_chunks, half_warp)
        first = chunks // segment
        last = (chunks + access_bytes - 1) // segment
        touched = np.sort(np.concatenate([first, last], axis=1), axis=1)
        distinct = 1 + np.count_nonzero(np.diff(touched, axis=1), axis=1)
        total = int(distinct.sum())
        # the minimum possible: contiguous packing of each chunk's bytes
        sizes = np.full(n_chunks, half_warp, dtype=np.int64)
        sizes[-1] = addresses.size - (n_chunks - 1) * half_warp
        ideal = int(np.maximum(1, -(-(sizes * access_bytes) // segment)).sum())
    return CoalescingReport(
        transactions=total,
        ideal_transactions=ideal,
        bytes_requested=int(addresses.size) * access_bytes,
        half_warps=-(-addresses.size // half_warp) if addresses.size else 0,
        segment_bytes=segment,
    )
