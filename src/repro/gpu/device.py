"""Device specifications for the GPU simulator.

The paper's experiments ran on an NVIDIA GeForce GTX 285 (30 multiprocessors
of 8 scalar cores at 1.4 GHz, 1 GB of global memory, ~159 GB/s memory
bandwidth, 16 KiB of shared memory per multiprocessor) hosted by a dual
Xeon 5462 machine.  The simulator is parameterised by these numbers so the
modelled device times and throughput ratios can be compared with the paper's
reported figures; other devices can be described by constructing a
:class:`DeviceSpec` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_positive

__all__ = ["DeviceSpec", "GTX_285", "XEON_5462", "LAPTOP_CPU"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a (real or modelled) compute device."""

    name: str
    multiprocessors: int            #: number of SMs (GPU) or cores (CPU model)
    cores_per_multiprocessor: int   #: scalar lanes per SM
    clock_ghz: float                #: core clock
    global_memory_bytes: int        #: device memory capacity
    memory_bandwidth_gbps: float    #: peak global-memory bandwidth, GB/s (10^9)
    shared_memory_per_mp_bytes: int #: low-latency scratch per SM
    warp_size: int = 32
    half_warp: int = 16
    max_work_group_size: int = 512
    #: host<->device transfer bandwidth (PCIe for a discrete GPU), GB/s
    transfer_bandwidth_gbps: float = 5.0
    #: fixed cost of one kernel launch, seconds
    kernel_launch_overhead_s: float = 10e-6
    #: simple instructions retired per core per clock cycle
    ops_per_cycle: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.multiprocessors, "multiprocessors")
        require_positive(self.cores_per_multiprocessor, "cores_per_multiprocessor")
        require_positive(self.clock_ghz, "clock_ghz")
        require_positive(self.global_memory_bytes, "global_memory_bytes")
        require_positive(self.memory_bandwidth_gbps, "memory_bandwidth_gbps")
        require_positive(self.shared_memory_per_mp_bytes, "shared_memory_per_mp_bytes")
        require_positive(self.warp_size, "warp_size")
        require_positive(self.half_warp, "half_warp")
        require_positive(self.max_work_group_size, "max_work_group_size")

    @property
    def total_cores(self) -> int:
        return self.multiprocessors * self.cores_per_multiprocessor

    @property
    def peak_ops_per_second(self) -> float:
        """Scalar operations per second at full occupancy."""
        return self.total_cores * self.clock_ghz * 1e9 * self.ops_per_cycle

    @property
    def peak_bandwidth_bytes_per_second(self) -> float:
        return self.memory_bandwidth_gbps * 1e9

    @property
    def transfer_bandwidth_bytes_per_second(self) -> float:
        return self.transfer_bandwidth_gbps * 1e9


#: The card used in the paper (Section IV, "Hardware setup").
GTX_285 = DeviceSpec(
    name="GeForce GTX 285",
    multiprocessors=30,
    cores_per_multiprocessor=8,
    clock_ghz=1.476,
    global_memory_bytes=1 * 2**30,
    memory_bandwidth_gbps=159.0,
    shared_memory_per_mp_bytes=16 * 1024,
)

#: The paper's host CPUs: two quad-core Xeon 5462 at 2.8 GHz, FSB 1.6 GHz.
#: The bandwidth figure models the ~7.6 GB/s saturation seen in Figure 11.
XEON_5462 = DeviceSpec(
    name="2x Intel Xeon 5462",
    multiprocessors=8,
    cores_per_multiprocessor=1,
    clock_ghz=2.8,
    global_memory_bytes=6 * 2**30,
    memory_bandwidth_gbps=12.8,
    shared_memory_per_mp_bytes=6 * 2**20,  # L2 cache per chip, used as "shared"
    warp_size=1,
    half_warp=1,
    max_work_group_size=1,
    transfer_bandwidth_gbps=12.8,
    kernel_launch_overhead_s=0.0,
    ops_per_cycle=2.0,
)

#: A deliberately modest modern CPU spec, handy for examples and tests.
LAPTOP_CPU = DeviceSpec(
    name="generic laptop CPU",
    multiprocessors=4,
    cores_per_multiprocessor=1,
    clock_ghz=2.4,
    global_memory_bytes=8 * 2**30,
    memory_bandwidth_gbps=20.0,
    shared_memory_per_mp_bytes=1 * 2**20,
    warp_size=1,
    half_warp=1,
    max_work_group_size=1,
    transfer_bandwidth_gbps=20.0,
    kernel_launch_overhead_s=0.0,
    ops_per_cycle=4.0,
)
