"""A deterministic OpenCL-style GPU simulator.

The paper evaluates batmaps on a GeForce GTX 285 through PyOpenCL.  This
environment has no GPU, so the package provides the substrate described in
DESIGN.md: device specifications (:mod:`repro.gpu.device`), global/shared
memory models with coalescing analysis (:mod:`repro.gpu.memory`,
:mod:`repro.gpu.coalescing`), a kernel/work-group execution model
(:mod:`repro.gpu.kernel`, :mod:`repro.gpu.executor`) and an analytic timing
model (:mod:`repro.gpu.timing`).  Kernels run vectorised over work groups, so
results are exact while byte counts, transaction counts and modelled device
times quantify the regularity properties the paper's argument rests on.
"""

from repro.gpu.coalescing import (
    CoalescingReport,
    analyze_access,
    segment_size_for_access,
    transactions_for_half_warp,
)
from repro.gpu.device import GTX_285, LAPTOP_CPU, XEON_5462, DeviceSpec
from repro.gpu.executor import GpuSimulator, LaunchRecord
from repro.gpu.kernel import Kernel, WorkGroupContext
from repro.gpu.memory import GlobalMemory, MemoryTraffic, SharedMemory
from repro.gpu.timing import (
    KernelStats,
    LaunchTiming,
    estimate_kernel_time,
    estimate_transfer_time,
)

__all__ = [
    "DeviceSpec",
    "GTX_285",
    "XEON_5462",
    "LAPTOP_CPU",
    "GpuSimulator",
    "LaunchRecord",
    "Kernel",
    "WorkGroupContext",
    "GlobalMemory",
    "SharedMemory",
    "MemoryTraffic",
    "KernelStats",
    "LaunchTiming",
    "estimate_kernel_time",
    "estimate_transfer_time",
    "CoalescingReport",
    "analyze_access",
    "segment_size_for_access",
    "transactions_for_half_warp",
]
