"""Kernel abstraction and per-work-group execution context.

A :class:`Kernel` is the simulator's equivalent of an OpenCL kernel.  Rather
than executing one Python function per work item (hopelessly slow), a kernel
implements :meth:`Kernel.run_group`, which processes one *work group* at a
time with vectorised NumPy operations while reporting, through the
:class:`WorkGroupContext`, exactly the memory traffic and instruction counts
the per-item version would have generated.  The timing model then turns those
counts into modelled device time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.errors import KernelLaunchError
from repro.gpu.device import DeviceSpec
from repro.gpu.memory import GlobalMemory, SharedMemory

__all__ = ["Kernel", "WorkGroupContext"]


@dataclass
class WorkGroupContext:
    """Everything a kernel sees while executing one work group."""

    device: DeviceSpec
    global_memory: GlobalMemory
    shared: SharedMemory
    group_id: tuple[int, int]
    num_groups: tuple[int, int]
    local_size: tuple[int, int]

    #: counters the kernel fills in while running
    scalar_ops: int = 0
    barriers: int = 0

    # ------------------------------------------------------------------ #
    # Identification helpers (mirror OpenCL's get_group_id / get_global_id)
    # ------------------------------------------------------------------ #
    @property
    def global_offset(self) -> tuple[int, int]:
        """Global index of this group's first work item, per dimension."""
        return (self.group_id[0] * self.local_size[0],
                self.group_id[1] * self.local_size[1])

    @property
    def work_items(self) -> int:
        return self.local_size[0] * self.local_size[1]

    # ------------------------------------------------------------------ #
    # Memory access
    # ------------------------------------------------------------------ #
    def read_global(self, buffer: str, indices: np.ndarray) -> np.ndarray:
        """Gather from a global buffer; traffic is recorded with coalescing analysis."""
        return self.global_memory.read(buffer, indices)

    def write_global(self, buffer: str, indices: np.ndarray, values: np.ndarray) -> None:
        self.global_memory.write(buffer, indices, values)

    def alloc_shared(self, name: str, shape, dtype) -> np.ndarray:
        return self.shared.alloc(name, shape, dtype)

    def store_shared(self, name: str, values: np.ndarray) -> None:
        self.shared.store(name, values)

    def barrier(self) -> None:
        """A work-group memory barrier (CLK_LOCAL_MEM_FENCE in the real kernel)."""
        self.barriers += 1

    def add_ops(self, count: int) -> None:
        """Record ``count`` scalar operations executed by this work group."""
        if count < 0:
            raise ValueError(f"operation count must be >= 0, got {count}")
        self.scalar_ops += int(count)


class Kernel(abc.ABC):
    """Base class for simulated device kernels."""

    #: human-readable kernel name (shows up in launch reports)
    name: str = "kernel"
    #: work-group shape (rows, cols); the paper uses 16 x 16
    local_size: tuple[int, int] = (16, 16)

    def validate_launch(self, global_size: tuple[int, int], device: DeviceSpec) -> None:
        """Check the launch geometry the way an OpenCL runtime would."""
        if len(global_size) != 2:
            raise KernelLaunchError(f"global size must be 2-D, got {global_size!r}")
        gx, gy = global_size
        lx, ly = self.local_size
        if lx <= 0 or ly <= 0:
            raise KernelLaunchError(f"invalid local size {self.local_size!r}")
        if lx * ly > device.max_work_group_size:
            raise KernelLaunchError(
                f"work group {self.local_size!r} exceeds the device limit "
                f"{device.max_work_group_size}"
            )
        if gx <= 0 or gy <= 0:
            raise KernelLaunchError(f"global size must be positive, got {global_size!r}")
        if gx % lx or gy % ly:
            raise KernelLaunchError(
                f"global size {global_size!r} is not a multiple of the local size "
                f"{self.local_size!r}"
            )

    @abc.abstractmethod
    def run_group(self, ctx: WorkGroupContext) -> None:
        """Execute one work group (vectorised over its work items)."""
