"""The GPU simulator: buffer management, kernel launches, statistics, timing.

Usage mirrors a minimal OpenCL host program::

    sim = GpuSimulator(GTX_285)
    sim.upload("batmaps", device_words)
    record = sim.launch(PairCountKernel(...), global_size=(n, n))
    counts = sim.download("results")
    print(record.timing.device_seconds, record.stats.coalescing_efficiency)

The simulator executes work groups sequentially (the results are therefore
deterministic) while the timing model accounts for the device's parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import DeviceSpec, GTX_285
from repro.gpu.kernel import Kernel, WorkGroupContext
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.gpu.timing import (
    KernelStats,
    LaunchTiming,
    estimate_kernel_time,
    estimate_transfer_time,
)

__all__ = ["LaunchRecord", "GpuSimulator"]


@dataclass
class LaunchRecord:
    """Statistics and modelled timing of one kernel launch."""

    kernel_name: str
    global_size: tuple[int, int]
    stats: KernelStats
    timing: LaunchTiming


@dataclass
class SimulatorTotals:
    """Aggregate counters across every launch and transfer."""

    device_seconds: float = 0.0
    transfer_seconds: float = 0.0
    host_to_device_bytes: int = 0
    device_to_host_bytes: int = 0
    launches: int = 0

    @property
    def total_seconds(self) -> float:
        return self.device_seconds + self.transfer_seconds


class GpuSimulator:
    """Deterministic OpenCL-style device simulator."""

    def __init__(self, device: DeviceSpec = GTX_285) -> None:
        self.device = device
        self.memory = GlobalMemory(device)
        self.records: list[LaunchRecord] = []
        self.totals = SimulatorTotals()

    # ------------------------------------------------------------------ #
    # Host <-> device transfers
    # ------------------------------------------------------------------ #
    def upload(self, name: str, array: np.ndarray) -> None:
        """Transfer a host array to the device (tracked as PCIe traffic)."""
        before = self.memory.host_to_device_bytes
        self.memory.upload(name, array)
        moved = self.memory.host_to_device_bytes - before
        self.totals.host_to_device_bytes += moved
        self.totals.transfer_seconds += estimate_transfer_time(moved, self.device)

    def allocate(self, name: str, shape, dtype) -> None:
        """Allocate a device-resident buffer without transferring data."""
        self.memory.allocate(name, shape, dtype)

    def download(self, name: str) -> np.ndarray:
        """Transfer a device buffer back to the host."""
        before = self.memory.device_to_host_bytes
        out = self.memory.download(name)
        moved = self.memory.device_to_host_bytes - before
        self.totals.device_to_host_bytes += moved
        self.totals.transfer_seconds += estimate_transfer_time(moved, self.device)
        return out

    def free(self, name: str) -> None:
        self.memory.free(name)

    # ------------------------------------------------------------------ #
    # Kernel launches
    # ------------------------------------------------------------------ #
    def launch(self, kernel: Kernel, global_size: tuple[int, int]) -> LaunchRecord:
        """Run a kernel over the given 2-D global size and return its launch record."""
        kernel.validate_launch(global_size, self.device)
        lx, ly = kernel.local_size
        groups_x = global_size[0] // lx
        groups_y = global_size[1] // ly

        traffic_before = _snapshot_traffic(self.memory)
        stats = KernelStats()
        shared_peak = 0

        for gx in range(groups_x):
            for gy in range(groups_y):
                shared = SharedMemory(self.device)
                ctx = WorkGroupContext(
                    device=self.device,
                    global_memory=self.memory,
                    shared=shared,
                    group_id=(gx, gy),
                    num_groups=(groups_x, groups_y),
                    local_size=kernel.local_size,
                )
                kernel.run_group(ctx)
                stats.scalar_ops += ctx.scalar_ops
                stats.barriers += ctx.barriers
                stats.shared_bytes += shared.bytes_traffic
                shared_peak = max(shared_peak, shared.peak_bytes)
                stats.work_groups += 1
                stats.work_items += ctx.work_items

        traffic_after = _snapshot_traffic(self.memory)
        stats.global_bytes_read = traffic_after[0] - traffic_before[0]
        stats.global_bytes_written = traffic_after[1] - traffic_before[1]
        stats.global_read_transactions = traffic_after[2] - traffic_before[2]
        stats.global_write_transactions = traffic_after[3] - traffic_before[3]
        stats.ideal_read_transactions = traffic_after[4] - traffic_before[4]
        stats.ideal_write_transactions = traffic_after[5] - traffic_before[5]

        timing = estimate_kernel_time(stats, self.device)
        record = LaunchRecord(
            kernel_name=kernel.name,
            global_size=tuple(global_size),
            stats=stats,
            timing=timing,
        )
        self.records.append(record)
        self.totals.device_seconds += timing.device_seconds
        self.totals.launches += 1
        return record

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def combined_stats(self) -> KernelStats:
        """Merge the statistics of every launch so far."""
        merged = KernelStats()
        for record in self.records:
            merged.merge(record.stats)
        return merged

    def achieved_bandwidth_bytes_per_second(self) -> float:
        """Bytes moved through global memory per modelled device second.

        This is the quantity the paper reports as "36.2 Gbyte per second" in
        the throughput computation of Section IV.
        """
        if self.totals.device_seconds == 0:
            return 0.0
        return self.combined_stats().global_bytes_total / self.totals.device_seconds


def _snapshot_traffic(memory: GlobalMemory) -> tuple[int, int, int, int, int, int]:
    t = memory.traffic
    return (t.bytes_read, t.bytes_written, t.read_transactions, t.write_transactions,
            t.ideal_read_transactions, t.ideal_write_transactions)
