"""Analytic timing model for the GPU simulator.

The simulator estimates device time from first principles instead of
measuring Python wall clock (which would say more about the interpreter than
about the data layout):

* **memory time** — bytes moved through global memory divided by the
  effective bandwidth, where the effective bandwidth is the peak bandwidth
  scaled by the measured coalescing efficiency;
* **compute time** — scalar operations retired divided by the device's peak
  operation throughput (the pair-count kernel does a handful of bit
  operations per 32-bit word, so it is strongly memory-bound on a GTX 285,
  exactly as the paper observes: 36.2 GB/s achieved vs 159 GB/s peak);
* **launch overhead** — a fixed cost per kernel launch, plus the host/device
  transfer time for uploads and downloads.

The model deliberately ignores occupancy subtleties, bank conflicts and
partition camping; the paper's conclusions rest on byte counts and
coalescing, which the model captures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec

__all__ = ["KernelStats", "LaunchTiming", "estimate_kernel_time", "estimate_transfer_time"]


@dataclass
class KernelStats:
    """Everything a kernel launch reports to the timing model."""

    work_groups: int = 0
    work_items: int = 0
    global_bytes_read: int = 0
    global_bytes_written: int = 0
    global_read_transactions: int = 0
    global_write_transactions: int = 0
    ideal_read_transactions: int = 0
    ideal_write_transactions: int = 0
    shared_bytes: int = 0
    scalar_ops: int = 0
    barriers: int = 0

    @property
    def global_bytes_total(self) -> int:
        return self.global_bytes_read + self.global_bytes_written

    @property
    def coalescing_efficiency(self) -> float:
        actual = self.global_read_transactions + self.global_write_transactions
        if actual == 0:
            return 1.0
        ideal = self.ideal_read_transactions + self.ideal_write_transactions
        return ideal / actual

    def merge(self, other: "KernelStats") -> None:
        self.work_groups += other.work_groups
        self.work_items += other.work_items
        self.global_bytes_read += other.global_bytes_read
        self.global_bytes_written += other.global_bytes_written
        self.global_read_transactions += other.global_read_transactions
        self.global_write_transactions += other.global_write_transactions
        self.ideal_read_transactions += other.ideal_read_transactions
        self.ideal_write_transactions += other.ideal_write_transactions
        self.shared_bytes += other.shared_bytes
        self.scalar_ops += other.scalar_ops
        self.barriers += other.barriers


@dataclass
class LaunchTiming:
    """Decomposed time estimate of one (or several merged) kernel launches."""

    memory_seconds: float = 0.0
    compute_seconds: float = 0.0
    launch_overhead_seconds: float = 0.0
    launches: int = 0

    @property
    def device_seconds(self) -> float:
        """Modelled device execution time: kernels overlap memory and compute."""
        return max(self.memory_seconds, self.compute_seconds) + self.launch_overhead_seconds

    def merge(self, other: "LaunchTiming") -> None:
        self.memory_seconds += other.memory_seconds
        self.compute_seconds += other.compute_seconds
        self.launch_overhead_seconds += other.launch_overhead_seconds
        self.launches += other.launches


def estimate_kernel_time(stats: KernelStats, device: DeviceSpec) -> LaunchTiming:
    """Estimate the device time of one kernel launch from its statistics."""
    efficiency = max(stats.coalescing_efficiency, 1e-3)
    effective_bandwidth = device.peak_bandwidth_bytes_per_second * efficiency
    memory_seconds = stats.global_bytes_total / effective_bandwidth if effective_bandwidth else 0.0
    compute_seconds = stats.scalar_ops / device.peak_ops_per_second
    return LaunchTiming(
        memory_seconds=memory_seconds,
        compute_seconds=compute_seconds,
        launch_overhead_seconds=device.kernel_launch_overhead_s,
        launches=1,
    )


def estimate_transfer_time(n_bytes: int, device: DeviceSpec) -> float:
    """Host <-> device transfer time over the interconnect (PCIe for the GTX 285)."""
    if n_bytes < 0:
        raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
    return n_bytes / device.transfer_bandwidth_bytes_per_second
