"""Bit-level helpers used across the BATMAP implementation.

The compressed batmap layout packs four 8-bit entries into one 32-bit word
(Section III-A of the paper), so the library needs fast, vectorised helpers
for power-of-two arithmetic, population counts and byte<->word packing.
All array functions are pure NumPy and operate on ``uint32``/``uint8``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "next_power_of_two",
    "is_power_of_two",
    "ilog2",
    "popcount32",
    "popcount_array",
    "pack_bytes_to_words",
    "unpack_words_to_bytes",
]


def next_power_of_two(n: int) -> int:
    """Return the smallest power of two ``>= n`` (with ``next_power_of_two(0) == 1``).

    The batmap hash ranges :math:`r_i` are required to be powers of two so
    that the range-nesting property ``h mod r_i == (h mod r_j) mod r_i``
    holds for ``r_i <= r_j`` (Section II of the paper).
    """
    if n < 0:
        raise ValueError(f"next_power_of_two requires n >= 0, got {n}")
    if n <= 1:
        return 1
    return 1 << (int(n) - 1).bit_length()


def is_power_of_two(n: int) -> bool:
    """Return ``True`` iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Return ``log2(n)`` for a positive power of two ``n``.

    Raises :class:`ValueError` if ``n`` is not a power of two, because a
    silent floor would corrupt the compression shift computation.
    """
    if not is_power_of_two(n):
        raise ValueError(f"ilog2 requires a positive power of two, got {n}")
    return int(n).bit_length() - 1


# Lookup table for per-byte popcounts; used to count matches in packed words.
_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def popcount32(x: int) -> int:
    """Population count of a single non-negative integer (< 2**32)."""
    if x < 0 or x > 0xFFFFFFFF:
        raise ValueError(f"popcount32 requires 0 <= x < 2**32, got {x}")
    return bin(int(x)).count("1")


def popcount_array(words: np.ndarray) -> np.ndarray:
    """Vectorised popcount of a ``uint32`` array, returned as ``uint32``.

    Splits each word into its four bytes and sums table lookups; this is the
    standard NumPy idiom since there is no native popcount ufunc.
    """
    words = np.asarray(words, dtype=np.uint32)
    b = words.view(np.uint8).reshape(words.shape + (4,))
    return _POPCOUNT_TABLE[b].sum(axis=-1, dtype=np.uint32)


def pack_bytes_to_words(entries: np.ndarray) -> np.ndarray:
    """Pack a ``uint8`` array (length multiple of 4) into little-endian ``uint32`` words.

    Entry ``i`` of the byte array becomes byte ``i % 4`` of word ``i // 4``,
    matching the paper's "4 elements per 32-bit integer" packing.
    """
    entries = np.ascontiguousarray(entries, dtype=np.uint8)
    if entries.size % 4 != 0:
        raise ValueError(
            f"byte array length must be a multiple of 4, got {entries.size}"
        )
    return entries.view("<u4").copy()


def unpack_words_to_bytes(words: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_bytes_to_words`."""
    words = np.ascontiguousarray(words, dtype="<u4")
    return words.view(np.uint8).copy()
