"""Memory-size accounting helpers used by the space model and Fig. 5 harness."""

from __future__ import annotations

import numpy as np


def sizeof_array(arr: np.ndarray) -> int:
    """Return the payload size of a NumPy array in bytes (ignores object overhead)."""
    return int(arr.nbytes)


def human_bytes(n: float) -> str:
    """Format a byte count for logs, e.g. ``human_bytes(3 * 2**20) == '3.00 MiB'``."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.2f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")


#: Suffix multipliers accepted by :func:`parse_memory_size` (binary units —
#: a memory *budget* bounds resident pages, which come in powers of two).
_SIZE_SUFFIXES = {
    "": 1,
    "B": 1,
    "K": 1 << 10,
    "KB": 1 << 10,
    "KIB": 1 << 10,
    "M": 1 << 20,
    "MB": 1 << 20,
    "MIB": 1 << 20,
    "G": 1 << 30,
    "GB": 1 << 30,
    "GIB": 1 << 30,
    "T": 1 << 40,
    "TB": 1 << 40,
    "TIB": 1 << 40,
}


def parse_memory_size(text) -> int:
    """Parse a human memory size (``"64M"``, ``"1.5GiB"``, ``4096``) into bytes.

    Accepts an ``int`` (returned as-is), or a string of a number followed by
    an optional unit suffix (case-insensitive; ``K/M/G/T`` with optional
    ``B``/``iB``).  Raises ``ValueError`` with the offending text on
    anything else, and on non-positive sizes — a zero memory budget can
    never hold a shard.
    """
    if isinstance(text, int):
        size = text
    else:
        s = str(text).strip().upper().replace(" ", "")
        idx = len(s)
        while idx > 0 and not (s[idx - 1].isdigit() or s[idx - 1] == "."):
            idx -= 1
        number, suffix = s[:idx], s[idx:]
        if not number or suffix not in _SIZE_SUFFIXES:
            raise ValueError(f"cannot parse memory size {text!r}")
        try:
            size = int(float(number) * _SIZE_SUFFIXES[suffix])
        except ValueError as exc:
            raise ValueError(f"cannot parse memory size {text!r}") from exc
    if size <= 0:
        raise ValueError(f"memory size must be positive, got {text!r}")
    return size
