"""Memory-size accounting helpers used by the space model and Fig. 5 harness."""

from __future__ import annotations

import numpy as np


def sizeof_array(arr: np.ndarray) -> int:
    """Return the payload size of a NumPy array in bytes (ignores object overhead)."""
    return int(arr.nbytes)


def human_bytes(n: float) -> str:
    """Format a byte count for logs, e.g. ``human_bytes(3 * 2**20) == '3.00 MiB'``."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.2f} {unit}"
        n /= 1024.0
    raise AssertionError("unreachable")
