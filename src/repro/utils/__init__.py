"""Small shared utilities: bit tricks, timers, RNG handling, validation."""

from repro.utils.bits import (
    next_power_of_two,
    is_power_of_two,
    ilog2,
    popcount32,
    popcount_array,
    pack_bytes_to_words,
    unpack_words_to_bytes,
)
from repro.utils.timer import Timer, PhaseTimer
from repro.utils.rng import make_rng, derive_seed
from repro.utils.memory import sizeof_array, human_bytes
from repro.utils.validation import (
    require,
    require_positive,
    require_in_range,
    require_power_of_two,
)

__all__ = [
    "next_power_of_two",
    "is_power_of_two",
    "ilog2",
    "popcount32",
    "popcount_array",
    "pack_bytes_to_words",
    "unpack_words_to_bytes",
    "Timer",
    "PhaseTimer",
    "make_rng",
    "derive_seed",
    "sizeof_array",
    "human_bytes",
    "require",
    "require_positive",
    "require_in_range",
    "require_power_of_two",
]
