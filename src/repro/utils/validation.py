"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from repro.utils.bits import is_power_of_two


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_in_range(value: float, lo: float, hi: float, name: str) -> None:
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def require_power_of_two(value: int, name: str) -> None:
    if not is_power_of_two(value):
        raise ValueError(f"{name} must be a power of two, got {value!r}")
