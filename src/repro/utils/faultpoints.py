"""Named crash/fault hooks for the artifact-lifecycle durability tests.

A *faultpoint* is a named no-op call placed at a write/rename/fsync boundary
of the spill mutation paths (:mod:`repro.core.integrity`,
:mod:`repro.core.sharded`, :mod:`repro.core.compaction`).  In production the
call costs one dict lookup; under test it can be armed to *raise*
(:class:`InjectedFault`, for in-process property tests) or to *hard-exit*
the interpreter (``os._exit``, simulating ``kill -9`` for CLI smoke tests)
at an exact hit count — which is how the crash-recovery suite proves that
every kill point leaves an artifact that re-attaches at exactly the pre- or
post-mutation generation.

Two arming surfaces:

* **Test API** — :func:`arm` / :func:`disarm`, or the :class:`armed` context
  manager.  :class:`recording` captures the ordered list of faultpoints a
  mutation hits, so a property test can enumerate every kill site first and
  then replay the mutation once per site.
* **Environment** — ``REPRO_FAULTPOINT=<name>`` arms a faultpoint for a CLI
  subprocess (read once at import).  ``REPRO_FAULTPOINT_HIT=<k>`` selects
  the k-th hit (default 1) and ``REPRO_FAULTPOINT_MODE=exit|raise``
  (default ``exit``) picks the failure style; ``exit`` terminates with
  :data:`FAULT_EXIT_CODE`.

The registry :data:`KNOWN_FAULTPOINTS` is closed: calling
:func:`faultpoint` with an unregistered name is a programming error, which
keeps the crash test's "every registered faultpoint" enumeration honest.
State is module-global and not thread-safe — arm only in single-threaded
test sections.
"""

from __future__ import annotations

import os

__all__ = [
    "KNOWN_FAULTPOINTS",
    "FAULT_EXIT_CODE",
    "InjectedFault",
    "faultpoint",
    "arm",
    "disarm",
    "armed",
    "recording",
]

#: Every faultpoint name that exists in the codebase, by mutation stage.
#: ``append.*`` / ``delete.*`` / ``compact.*`` sit before the staged writes
#: of their mutation; ``commit.*`` bracket the atomic publish sequence of
#: :class:`repro.core.integrity.AtomicCommit` (fsync pass, per-path rename,
#: the manifest replace that *is* the commit point, and the post-commit
#: garbage sweep).
KNOWN_FAULTPOINTS = (
    "append.shard",         # before one delta shard's arrays are staged
    "append.reinterleave",  # before one existing shard's r0 rewrite is staged
    "delete.tombstones",    # before the new tombstone array is staged
    "compact.merge",        # before one merged shard's arrays are staged
    "commit.fsync",         # before staged files are fsynced
    "commit.rename",        # before each staged path moves into place
    "commit.manifest",      # before the manifest os.replace (the commit point)
    "commit.cleanup",       # after commit, before garbage is swept
)

#: Exit status of a hard-exit (``mode="exit"``) injection; CLI smoke tests
#: assert on it to distinguish an injected kill from a real crash.
FAULT_EXIT_CODE = 42

_KNOWN = frozenset(KNOWN_FAULTPOINTS)


class InjectedFault(RuntimeError):
    """Raised by an armed faultpoint (``mode="raise"``) at its trigger hit."""

    def __init__(self, name: str, hit: int) -> None:
        super().__init__(f"injected fault at {name!r} (hit {hit})")
        self.name = name
        self.hit = hit


class _Trigger:
    __slots__ = ("name", "hit", "mode", "seen")

    def __init__(self, name: str, hit: int, mode: str) -> None:
        self.name = name
        self.hit = int(hit)
        self.mode = mode
        self.seen = 0


_trigger: _Trigger | None = None
_record: list | None = None


def faultpoint(name: str) -> None:
    """Declare one crash boundary; no-op unless armed or recording."""
    if name not in _KNOWN:
        raise ValueError(f"unregistered faultpoint {name!r}; add it to "
                         "repro.utils.faultpoints.KNOWN_FAULTPOINTS")
    if _record is not None:
        _record.append(name)
    trigger = _trigger
    if trigger is None or trigger.name != name:
        return
    trigger.seen += 1
    if trigger.seen != trigger.hit:
        return
    disarm()
    if trigger.mode == "exit":
        os._exit(FAULT_EXIT_CODE)
    raise InjectedFault(name, trigger.hit)


def arm(name: str, *, hit: int = 1, mode: str = "raise") -> None:
    """Arm ``name`` to fail at its ``hit``-th call (one-shot)."""
    global _trigger
    if name not in _KNOWN:
        raise ValueError(f"unregistered faultpoint {name!r}")
    if mode not in ("raise", "exit"):
        raise ValueError(f"mode must be 'raise' or 'exit', got {mode!r}")
    if hit < 1:
        raise ValueError(f"hit must be >= 1, got {hit}")
    _trigger = _Trigger(name, hit, mode)


def disarm() -> None:
    """Remove any armed trigger (idempotent)."""
    global _trigger
    _trigger = None


class armed:
    """Context manager: arm on enter, disarm on exit (even if nothing fired)."""

    def __init__(self, name: str, *, hit: int = 1, mode: str = "raise") -> None:
        self._args = (name, hit, mode)

    def __enter__(self) -> "armed":
        name, hit, mode = self._args
        arm(name, hit=hit, mode=mode)
        return self

    def __exit__(self, *exc_info) -> None:
        disarm()


class recording:
    """Context manager capturing the ordered faultpoint hits of a block.

    ``hits`` is the raw sequence; :meth:`sites` collapses it into
    ``(name, occurrence)`` pairs — the exact arguments :func:`arm` needs to
    kill at each site one at a time.
    """

    def __init__(self) -> None:
        self.hits: list = []

    def __enter__(self) -> "recording":
        global _record
        _record = self.hits
        return self

    def __exit__(self, *exc_info) -> None:
        global _record
        _record = None

    def sites(self) -> list:
        """Every ``(name, k)`` such that the block hit ``name`` k times or more."""
        counts: dict[str, int] = {}
        out = []
        for name in self.hits:
            counts[name] = counts.get(name, 0) + 1
            out.append((name, counts[name]))
        return out


def _arm_from_env() -> None:
    """Arm from ``REPRO_FAULTPOINT`` (CLI subprocess surface); import-time."""
    name = os.environ.get("REPRO_FAULTPOINT")
    if not name:
        return
    if name not in _KNOWN:
        raise ValueError(
            f"REPRO_FAULTPOINT={name!r} is not a registered faultpoint; "
            f"known: {', '.join(KNOWN_FAULTPOINTS)}")
    hit = int(os.environ.get("REPRO_FAULTPOINT_HIT", "1"))
    mode = os.environ.get("REPRO_FAULTPOINT_MODE", "exit")
    arm(name, hit=hit, mode=mode)


_arm_from_env()
