"""Lightweight timers used by the mining pipeline and benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """A simple start/stop wall-clock timer.

    Usage::

        t = Timer()
        with t:
            work()
        print(t.elapsed)
    """

    elapsed: float = 0.0
    _start: float | None = None

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("Timer already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("Timer was not started")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class PhaseTimer:
    """Accumulates wall-clock time per named phase (preprocess / device / postprocess).

    The paper reports pure pair-generation time (Fig. 6) separately from the
    total including pre- and postprocessing (Fig. 7), so the pipeline tracks
    phases explicitly.
    """

    phases: dict[str, float] = field(default_factory=dict)

    def time(self, name: str):
        return _PhaseContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration for phase {name!r}: {seconds}")
        self.phases[name] = self.phases.get(name, 0.0) + seconds

    def get(self, name: str) -> float:
        return self.phases.get(name, 0.0)

    @property
    def total(self) -> float:
        return float(sum(self.phases.values()))

    def as_dict(self) -> dict[str, float]:
        return dict(self.phases)


class _PhaseContext:
    def __init__(self, owner: PhaseTimer, name: str) -> None:
        self._owner = owner
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._owner.add(self._name, time.perf_counter() - self._start)
