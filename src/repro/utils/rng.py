"""Deterministic random-number-generator plumbing.

All stochastic components (hash permutations, data generators, failure
injection) accept either an integer seed or a ``numpy.random.Generator`` and
derive independent child streams, so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

RngLike = int | np.random.Generator | None


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from an int seed, an existing generator or ``None``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(rng: np.random.Generator, *, bits: int = 63) -> int:
    """Draw an independent child seed from ``rng``."""
    if bits <= 0 or bits > 63:
        raise ValueError(f"bits must be in (0, 63], got {bits}")
    return int(rng.integers(0, 1 << bits))
