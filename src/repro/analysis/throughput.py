"""Throughput accounting — the paper's "Throughput computation" paragraph.

The paper derives two figures of merit from the pair-mining experiment with
``n = 4000`` items, instance size ``10^7`` and density 5%:

* **bytes per second** — the combined input to all set intersections is
  ``n^2 * 3 * 2^ceil(log2(2 * avg))`` bytes; dividing by the GPU time gave
  36.2 GB/s, a factor ~4.4 below the card's 159 GB/s peak;
* **elements per second** — the combined number of set elements processed is
  ``n^2 * avg``; dividing by the time gave 3.68e9 elements/s, which is 13-26x
  the single-core merge baseline and ~2.2x its 8-core variant.

The helpers below perform those computations for arbitrary runs so the
benchmark harness can print the same table for the simulator and for the
measured CPU baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bits import next_power_of_two
from repro.utils.validation import require_positive

__all__ = ["ThroughputReport", "pairwise_input_bytes", "pairwise_input_elements",
           "compute_throughput"]


def pairwise_input_bytes(n_sets: int, avg_set_size: float) -> int:
    """Combined batmap input size of all ``n^2`` intersections (paper's formula).

    Each batmap is ``3 * 2^ceil(log2(2 * avg))`` bytes wide; every one of the
    ``n^2`` ordered comparisons reads one batmap from each side, so the total
    input volume is ``n^2`` times one batmap width.
    """
    require_positive(n_sets, "n_sets")
    require_positive(avg_set_size, "avg_set_size")
    width = 3 * next_power_of_two(int(2 * avg_set_size))
    return n_sets * n_sets * width


def pairwise_input_elements(n_sets: int, avg_set_size: float) -> int:
    """Combined number of set elements fed to all ``n^2`` intersections."""
    require_positive(n_sets, "n_sets")
    require_positive(avg_set_size, "avg_set_size")
    return int(n_sets * n_sets * avg_set_size)


@dataclass(frozen=True)
class ThroughputReport:
    """Throughput of one intersection workload."""

    seconds: float
    input_bytes: int
    input_elements: int

    @property
    def gbytes_per_second(self) -> float:
        return self.input_bytes / self.seconds / 1e9 if self.seconds > 0 else float("inf")

    @property
    def elements_per_second(self) -> float:
        return self.input_elements / self.seconds if self.seconds > 0 else float("inf")

    def fraction_of_peak(self, peak_bandwidth_gbps: float) -> float:
        """Achieved bytes/s divided by the device's peak bandwidth."""
        require_positive(peak_bandwidth_gbps, "peak_bandwidth_gbps")
        return self.gbytes_per_second / peak_bandwidth_gbps

    def speedup_over(self, other: "ThroughputReport") -> float:
        """Ratio of element throughputs (how the paper compares GPU vs merge)."""
        if other.elements_per_second == 0:
            return float("inf")
        return self.elements_per_second / other.elements_per_second


def compute_throughput(n_sets: int, avg_set_size: float, seconds: float) -> ThroughputReport:
    """Build a report from workload shape and elapsed (or modelled) time."""
    require_positive(seconds, "seconds")
    return ThroughputReport(
        seconds=seconds,
        input_bytes=pairwise_input_bytes(n_sets, avg_set_size),
        input_elements=pairwise_input_elements(n_sets, avg_set_size),
    )
