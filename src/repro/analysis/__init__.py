"""Analytical models: cuckoo-insertion theory, space usage, throughput accounting."""

from repro.analysis.space import (
    MiningMemoryModel,
    batmap_bytes,
    bitmap_bytes,
    collection_bytes,
    information_theoretic_bits,
    sorted_list_bytes,
)
from repro.analysis.theory import (
    InsertionExperiment,
    expected_moves_bound,
    failure_probability_bound,
    measure_insertion_behaviour,
    recommended_range,
)
from repro.analysis.throughput import (
    ThroughputReport,
    compute_throughput,
    pairwise_input_bytes,
    pairwise_input_elements,
)

__all__ = [
    "failure_probability_bound",
    "expected_moves_bound",
    "recommended_range",
    "InsertionExperiment",
    "measure_insertion_behaviour",
    "information_theoretic_bits",
    "batmap_bytes",
    "bitmap_bytes",
    "sorted_list_bytes",
    "collection_bytes",
    "MiningMemoryModel",
    "ThroughputReport",
    "compute_throughput",
    "pairwise_input_bytes",
    "pairwise_input_elements",
]
