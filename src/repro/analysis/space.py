"""Space models: batmap vs bitmap vs sorted lists vs the information-theoretic minimum.

Two claims of the paper are purely about space:

* the batmap is "within a small factor of the information theoretical
  minimum" for sparse sets (Section I-A), while the uncompressed bitmap of
  the PBI baseline needs ``m`` bits per set regardless of sparsity;
* Apriori's memory is quadratic in the number of distinct items (Figure 5),
  while FP-growth and the batmap pipeline scale linearly.

This module provides closed-form space models for every representation, plus
the Figure 5 model for whole mining runs.  All results are in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.utils.bits import next_power_of_two
from repro.utils.validation import require, require_in_range, require_positive

__all__ = [
    "information_theoretic_bits",
    "batmap_bytes",
    "bitmap_bytes",
    "sorted_list_bytes",
    "collection_bytes",
    "MiningMemoryModel",
]


def information_theoretic_bits(set_size: int, universe_size: int) -> float:
    """``log2(binom(m, s))`` — the minimum number of bits to represent the set.

    Evaluated with log-gamma so it works for the paper's scales
    (``m = 10^7``) without overflow.
    """
    require(0 <= set_size <= universe_size, "need 0 <= set_size <= universe_size")
    if set_size in (0, universe_size):
        return 0.0
    from scipy.special import gammaln
    m, s = float(universe_size), float(set_size)
    return float((gammaln(m + 1) - gammaln(s + 1) - gammaln(m - s + 1)) / np.log(2.0))


def batmap_bytes(set_size: int, universe_size: int,
                 config: BatmapConfig = DEFAULT_CONFIG) -> int:
    """Compressed batmap size: ``3 * r`` bytes with ``r`` from the config rules."""
    require_positive(universe_size, "universe_size")
    r = config.range_for_size(set_size, universe_size)
    return 3 * r


def bitmap_bytes(universe_size: int) -> int:
    """Uncompressed vertical bitmap: ``m`` bits, rounded up to whole 32-bit words."""
    require_positive(universe_size, "universe_size")
    return 4 * ((universe_size + 31) // 32)


def sorted_list_bytes(set_size: int, id_bytes: int = 4) -> int:
    """Sorted tidlist: one integer per element."""
    require(set_size >= 0, "set_size must be >= 0")
    require_positive(id_bytes, "id_bytes")
    return set_size * id_bytes


def collection_bytes(set_sizes, universe_size: int,
                     representation: str = "batmap",
                     config: BatmapConfig = DEFAULT_CONFIG) -> int:
    """Total size of a family of sets under a given representation."""
    sizes = np.asarray(list(set_sizes), dtype=np.int64)
    if representation == "batmap":
        return int(sum(batmap_bytes(int(s), universe_size, config) for s in sizes))
    if representation == "bitmap":
        return int(sizes.size * bitmap_bytes(universe_size))
    if representation == "sorted":
        return int(sum(sorted_list_bytes(int(s)) for s in sizes))
    raise ValueError(f"unknown representation {representation!r}")


@dataclass(frozen=True)
class MiningMemoryModel:
    """Peak-memory model of a frequent pair mining run (the Figure 5 quantity).

    The instance is described the way the paper describes it: total instance
    size (item occurrences), number of distinct items and density.  From
    those, the number of transactions is ``total / (n * p)`` and the average
    tidlist length is ``total / n``.
    """

    total_items: int
    n_items: int
    density: float

    def __post_init__(self) -> None:
        require_positive(self.total_items, "total_items")
        require_positive(self.n_items, "n_items")
        require_in_range(self.density, 1e-9, 1.0, "density")

    @property
    def n_transactions(self) -> int:
        return max(1, int(round(self.total_items / (self.n_items * self.density))))

    @property
    def avg_tidlist_length(self) -> int:
        return max(1, int(round(self.total_items / self.n_items)))

    # ------------------------------------------------------------------ #
    def apriori_bytes(self) -> int:
        """Horizontal data + the quadratic triangle of pair counters (int32 in
        Borgelt's implementation; we model 4 bytes per candidate pair)."""
        data = 4 * self.total_items
        triangle = 4 * self.n_items * (self.n_items - 1) // 2
        return data + triangle

    def fpgrowth_bytes(self) -> int:
        """Horizontal data + FP-tree nodes.

        The FP-tree has at most one node per (transaction, item) occurrence
        but typically far fewer thanks to prefix sharing; we model a 40%
        sharing factor and ~48 bytes per node (item, count, 3 pointers),
        plus the per-item header table."""
        data = 4 * self.total_items
        nodes = int(0.6 * self.total_items) * 48
        header = 16 * self.n_items
        return data + nodes + header

    def batmap_bytes(self, config: BatmapConfig = DEFAULT_CONFIG) -> int:
        """Vertical tidlists (preprocessing input) + the packed batmaps.

        The batmap term is ``3 * r`` bytes per item with
        ``r ≈ 2 * next_pow2(avg tidlist length)`` bounded below by the
        compression floor — linear in ``n`` for fixed instance size."""
        tidlists = 4 * self.total_items
        m = self.n_transactions
        r = max(config.min_range(m),
                2 * next_power_of_two(self.avg_tidlist_length))
        batmaps = 3 * r * self.n_items
        return tidlists + batmaps

    def bitmap_bytes(self) -> int:
        """The PBI layout: n items times m transaction bits."""
        return self.n_items * bitmap_bytes(self.n_transactions)

    def series(self, n_items_values) -> dict[str, list[int]]:
        """Evaluate all models over a sweep of ``n`` (the Figure 5 x-axis)."""
        out = {"apriori": [], "fpgrowth": [], "gpu_batmap": [], "bitmap": []}
        for n in n_items_values:
            model = MiningMemoryModel(self.total_items, int(n), self.density)
            out["apriori"].append(model.apriori_bytes())
            out["fpgrowth"].append(model.fpgrowth_bytes())
            out["gpu_batmap"].append(model.batmap_bytes())
            out["bitmap"].append(model.bitmap_bytes())
        return out
