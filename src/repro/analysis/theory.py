"""Theoretical bounds from Section II-B of the paper.

The cuckoo-style 2-of-3 insertion has two quantities of interest:

* the probability that an insertion *fails* (the transcript revisits an
  element copy twice), bounded by ``sum_k (2n/r)^k k^2 / (n r) = O((eps^3 n r)^{-1})``
  when ``r >= (2 + eps) n``;
* the expected number of element moves per successful insertion, bounded by
  ``sum_{k'} 2 (2n/r)^{k'/3 - 2} = O(1/eps)``.

The functions below evaluate those bounds numerically (they are used by the
analysis notebooks/benchmarks and tested against the empirical behaviour of
the builder), and provide an empirical harness that measures the actual
failure rate and move counts on random sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import place_set
from repro.core.config import BatmapConfig
from repro.core.hashing import HashFamily
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require, require_positive

__all__ = [
    "failure_probability_bound",
    "expected_moves_bound",
    "recommended_range",
    "InsertionExperiment",
    "measure_insertion_behaviour",
]


def failure_probability_bound(n: int, r: int, *, max_terms: int | None = None) -> float:
    """Upper bound on the probability that inserting into a set of size ``n`` fails.

    Evaluates ``sum_{k=1}^{n} (2n/r)^k k^2 / (n r)`` directly (the paper then
    relaxes it to ``O((eps^3 n r)^{-1})``).  Requires ``r > 2n`` for the series
    to be meaningful; returns 1.0 when the bound exceeds one (vacuous).
    """
    require_positive(n, "n")
    require_positive(r, "r")
    if r <= 2 * n:
        return 1.0
    ratio = 2.0 * n / r
    terms = max_terms if max_terms is not None else min(n, 10_000)
    k = np.arange(1, terms + 1, dtype=np.float64)
    total = float(np.sum(ratio ** k * k ** 2) / (n * r))
    return min(1.0, total)


def expected_moves_bound(n: int, r: int, *, max_terms: int = 10_000) -> float:
    """Upper bound on the expected number of moves of one insertion.

    Evaluates ``sum_{k'>=1} 2 (2n/r)^{k'/3 - 2}`` (finite because
    ``2n/r < 1``); the paper states the result as ``O(1/eps)`` for
    ``r >= (2 + eps) n``.
    """
    require_positive(n, "n")
    require_positive(r, "r")
    if r <= 2 * n:
        return float("inf")
    ratio = 2.0 * n / r
    kprime = np.arange(1, max_terms + 1, dtype=np.float64)
    return float(np.sum(2.0 * ratio ** (kprime / 3.0 - 2.0)))


def recommended_range(n: int, eps: float = 0.5) -> int:
    """Smallest power-of-two range satisfying ``r >= (2 + eps) n``."""
    require(eps > 0, f"eps must be positive, got {eps}")
    require_positive(n, "n")
    from repro.utils.bits import next_power_of_two
    return next_power_of_two(int(np.ceil((2.0 + eps) * n)))


@dataclass
class InsertionExperiment:
    """Empirical construction statistics over many random sets."""

    sets_built: int
    elements_inserted: int
    failures: int
    total_moves: int
    max_transcript: int

    @property
    def failure_rate(self) -> float:
        return self.failures / self.elements_inserted if self.elements_inserted else 0.0

    @property
    def moves_per_insert(self) -> float:
        return self.total_moves / self.elements_inserted if self.elements_inserted else 0.0


def measure_insertion_behaviour(
    set_size: int,
    universe_size: int,
    *,
    n_sets: int = 20,
    range_multiplier: float = 2.0,
    rng: RngLike = None,
) -> InsertionExperiment:
    """Build ``n_sets`` random sets and report empirical failure/move statistics.

    Used by the ablation benchmark to confirm the theory's qualitative
    predictions: failures vanish and moves stay O(1) once ``r >= (2+eps)n``.
    """
    require_positive(set_size, "set_size")
    require_positive(universe_size, "universe_size")
    require(set_size <= universe_size, "set_size cannot exceed universe_size")
    rng = make_rng(rng)
    config = BatmapConfig(range_multiplier=max(2.0, range_multiplier))
    shift = config.shift_for_universe(universe_size)
    r = max(config.min_range(universe_size),
            int(2 ** np.ceil(np.log2(max(1.0, range_multiplier * set_size)))))

    failures = 0
    total_moves = 0
    max_transcript = 0
    inserted = 0
    for _ in range(n_sets):
        family = HashFamily.create(universe_size, shift=shift, rng=rng)
        elements = rng.choice(universe_size, size=set_size, replace=False)
        placement = place_set(elements, family, r, config)
        failures += len(placement.failed)
        total_moves += placement.stats.total_moves
        max_transcript = max(max_transcript, placement.stats.max_transcript)
        inserted += set_size
    return InsertionExperiment(
        sets_built=n_sets,
        elements_inserted=inserted,
        failures=failures,
        total_moves=total_moves,
        max_transcript=max_transcript,
    )
