"""Join-project queries as sparse boolean matrix products.

The paper's second motivating application (citing Amossen & Pagh, ICDT 2009):
given relations ``R(a, k)`` and ``S(k, c)``, the *join-project*
``π_{a,c}(R ⋈ S)`` — join on the shared attribute ``k`` followed by a
duplicate-eliminating projection — is exactly sparse boolean matrix
multiplication: the output contains ``(a, c)`` iff the set of ``k`` values
paired with ``a`` in ``R`` intersects the set of ``k`` values paired with
``c`` in ``S``.

This module provides a small relational layer on top of
:mod:`repro.matrix.multiply`, so the batmap engine can answer such queries
directly from tuple lists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matrix.boolean import SparseBooleanMatrix
from repro.matrix.multiply import multiply_batmap, multiply_dense

__all__ = ["Relation", "join_project", "join_project_counting"]


@dataclass(frozen=True)
class Relation:
    """A binary relation given as an array of (left, right) integer pairs."""

    pairs: np.ndarray
    left_domain: int
    right_domain: int

    def __post_init__(self) -> None:
        pairs = np.asarray(self.pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must be an (N, 2) array")
        if pairs.size:
            if pairs[:, 0].min() < 0 or pairs[:, 0].max() >= self.left_domain:
                raise ValueError("left attribute value out of domain")
            if pairs[:, 1].min() < 0 or pairs[:, 1].max() >= self.right_domain:
                raise ValueError("right attribute value out of domain")
        object.__setattr__(self, "pairs", pairs)

    @classmethod
    def from_tuples(cls, tuples, left_domain: int, right_domain: int) -> "Relation":
        return cls(np.asarray(list(tuples), dtype=np.int64).reshape(-1, 2),
                   left_domain, right_domain)

    def to_matrix(self) -> SparseBooleanMatrix:
        """Rows indexed by the left attribute, columns by the right attribute."""
        rows: list[list[int]] = [[] for _ in range(self.left_domain)]
        for left, right in self.pairs.tolist():
            rows[left].append(right)
        return SparseBooleanMatrix(self.left_domain, self.right_domain,
                                   [np.asarray(r, dtype=np.int64) for r in rows])

    @property
    def cardinality(self) -> int:
        return int(np.unique(self.pairs, axis=0).shape[0]) if self.pairs.size else 0


def join_project_counting(
    r: Relation,
    s: Relation,
    *,
    use_batmaps: bool = True,
    rng=None,
) -> np.ndarray:
    """Witness counts of the join-project: entry (a, c) = |{k : (a,k) ∈ R, (k,c) ∈ S}|."""
    if r.right_domain != s.left_domain:
        raise ValueError(
            f"join attribute domains differ: {r.right_domain} vs {s.left_domain}"
        )
    m_r = r.to_matrix()
    m_s = s.to_matrix()
    if use_batmaps:
        return multiply_batmap(m_r, m_s, rng=rng)
    return multiply_dense(m_r, m_s)


def join_project(
    r: Relation,
    s: Relation,
    *,
    use_batmaps: bool = True,
    rng=None,
) -> set[tuple[int, int]]:
    """The join-project result itself: all (a, c) pairs with at least one witness."""
    counts = join_project_counting(r, s, use_batmaps=use_batmaps, rng=rng)
    rows, cols = np.nonzero(counts)
    return {(int(a), int(c)) for a, c in zip(rows, cols)}
