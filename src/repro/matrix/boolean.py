"""Sparse boolean matrices as families of sets.

The paper's introduction lists sparse boolean matrix multiplication and
database join-projects as the other core applications of fast set
intersection: for ``M`` and ``M'``, the product asks for all pairs ``(i, j)``
with ``A_i ∩ B_j ≠ ∅`` where ``A_i`` is the set of non-zero columns of row
``i`` of ``M`` and ``B_j`` the set of non-zero rows of column ``j`` of
``M'``.  This module provides the set-view container those applications use.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require_positive

__all__ = ["SparseBooleanMatrix"]


class SparseBooleanMatrix:
    """A boolean matrix stored as per-row sets of non-zero column indices."""

    def __init__(self, n_rows: int, n_cols: int, rows: list[np.ndarray] | None = None) -> None:
        require_positive(n_rows, "n_rows")
        require_positive(n_cols, "n_cols")
        self.n_rows = n_rows
        self.n_cols = n_cols
        if rows is None:
            rows = [np.array([], dtype=np.int64) for _ in range(n_rows)]
        if len(rows) != n_rows:
            raise ValueError(f"expected {n_rows} rows, got {len(rows)}")
        self.rows: list[np.ndarray] = []
        for r, cols in enumerate(rows):
            arr = np.unique(np.asarray(cols, dtype=np.int64))
            if arr.size and (arr.min() < 0 or arr.max() >= n_cols):
                raise ValueError(f"row {r} has a column index outside [0, {n_cols})")
            self.rows.append(arr)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseBooleanMatrix":
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ValueError("dense matrix must be 2-D")
        rows = [np.nonzero(dense[r])[0].astype(np.int64) for r in range(dense.shape[0])]
        return cls(dense.shape[0], dense.shape[1], rows)

    @classmethod
    def random(cls, n_rows: int, n_cols: int, density: float,
               rng: np.random.Generator | int | None = None) -> "SparseBooleanMatrix":
        from repro.utils.rng import make_rng
        rng = make_rng(rng)
        dense = rng.random((n_rows, n_cols)) < density
        return cls.from_dense(dense)

    def to_dense(self) -> np.ndarray:
        out = np.zeros((self.n_rows, self.n_cols), dtype=bool)
        for r, cols in enumerate(self.rows):
            out[r, cols] = True
        return out

    # ------------------------------------------------------------------ #
    def row(self, r: int) -> np.ndarray:
        return self.rows[r]

    def column_sets(self) -> list[np.ndarray]:
        """For each column, the set of rows with a non-zero entry (the transpose's rows)."""
        cols: list[list[int]] = [[] for _ in range(self.n_cols)]
        for r, row_cols in enumerate(self.rows):
            for c in row_cols.tolist():
                cols[c].append(r)
        return [np.asarray(v, dtype=np.int64) for v in cols]

    def transpose(self) -> "SparseBooleanMatrix":
        return SparseBooleanMatrix(self.n_cols, self.n_rows, self.column_sets())

    @property
    def nnz(self) -> int:
        return int(sum(r.size for r in self.rows))

    @property
    def density(self) -> float:
        return self.nnz / (self.n_rows * self.n_cols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseBooleanMatrix):
            return NotImplemented
        return (self.n_rows == other.n_rows and self.n_cols == other.n_cols
                and all(np.array_equal(a, b) for a, b in zip(self.rows, other.rows)))
