"""Boolean matrix multiplication via batmap set intersection.

For boolean matrices ``M`` (rows as sets ``A_i`` of non-zero columns) and
``M'`` (columns as sets ``B_j`` of non-zero rows), the product has
``(i, j)`` set iff ``A_i ∩ B_j ≠ ∅``; the *witness-counting* variant returns
``|A_i ∩ B_j|`` (the number of k with ``M_{i,k} M'_{k,j} > 0``), which is the
quantity the batmap comparison computes directly.

Three implementations are provided:

* ``multiply_dense`` — NumPy reference (integer matmul of the dense forms);
* ``multiply_merge`` — per-pair sorted-list intersection (CPU baseline);
* ``multiply_batmap`` — build one batmap per row of ``M`` and per column of
  ``M'`` over the shared inner dimension and count all pairs with the
  data-independent comparison (optionally through the GPU-simulator kernel).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.merge import intersection_size_numpy
from repro.core.collection import BatmapCollection
from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.core.intersection import count_common
from repro.core.plan import plan_counts
from repro.gpu.device import DeviceSpec, GTX_285
from repro.kernels.driver import run_batmap_pair_counts
from repro.matrix.boolean import SparseBooleanMatrix
from repro.utils.rng import RngLike
from repro.utils.validation import require

__all__ = [
    "multiply_dense",
    "multiply_merge",
    "multiply_batmap",
    "multiply_batmap_device",
]


def _check_shapes(a: SparseBooleanMatrix, b: SparseBooleanMatrix) -> None:
    if a.n_cols != b.n_rows:
        raise ValueError(
            f"inner dimensions do not match: {a.n_rows}x{a.n_cols} times {b.n_rows}x{b.n_cols}"
        )


def multiply_dense(a: SparseBooleanMatrix, b: SparseBooleanMatrix) -> np.ndarray:
    """Witness-count product via dense integer matmul (ground truth for tests)."""
    _check_shapes(a, b)
    return a.to_dense().astype(np.int64) @ b.to_dense().astype(np.int64)


def multiply_merge(a: SparseBooleanMatrix, b: SparseBooleanMatrix) -> np.ndarray:
    """Witness-count product via per-pair sorted intersection (CPU baseline)."""
    _check_shapes(a, b)
    cols = b.column_sets()
    out = np.zeros((a.n_rows, b.n_cols), dtype=np.int64)
    for i, row in enumerate(a.rows):
        for j, col in enumerate(cols):
            if row.size and col.size:
                out[i, j] = intersection_size_numpy(row, col)
    return out


def _membership_matrix(sets: list[np.ndarray], elements: np.ndarray) -> np.ndarray:
    """``out[i, j]`` — does ``sets[i]`` contain ``elements[j]``? (one vectorised pass).

    ``elements`` must be sorted.  The whole side is answered with a single
    ``np.isin`` over the concatenated sets instead of one Python-level probe
    per (set, element) pair.
    """
    out = np.zeros((len(sets), elements.size), dtype=bool)
    if elements.size == 0 or not sets:
        return out
    lengths = np.array([s.size for s in sets], dtype=np.int64)
    if int(lengths.sum()) == 0:
        return out
    flat = np.concatenate(sets)
    owner = np.repeat(np.arange(len(sets), dtype=np.int64), lengths)
    hit = np.isin(flat, elements)
    if not hit.any():
        return out
    out[owner[hit], np.searchsorted(elements, flat[hit])] = True
    return out


def _iter_repair_increments(
    collection: BatmapCollection,
    a: SparseBooleanMatrix,
    b: SparseBooleanMatrix,
):
    """Yield one boolean increment mask per failed element that matters.

    A failed insertion of inner-dimension element ``k`` into the batmap of a
    row/column set means every cross pair containing that set undercounts
    ``k`` by one if the other side holds it too.

    The membership tests are grouped: one :func:`_membership_matrix` pass per
    side answers "which failed elements does each row/column set contain",
    replacing the former ``O(failures * rows * cols)`` Python triple loop.
    Failed elements that never appear on both sides of the cross block are
    skipped outright — they cannot change any entry (in particular, failures
    recorded against sets the cross block never touches, or elements present
    only in empty-side pairs that :func:`multiply_merge` also skips).
    """
    failures = collection.failed_insertions()
    if not failures:
        return
    failed_elements = np.array(sorted(failures), dtype=np.int64)
    row_has = _membership_matrix(list(a.rows), failed_elements)
    col_has = _membership_matrix(b.column_sets(), failed_elements)
    # Short-circuit: a repair contribution needs the element on *both* sides.
    active = row_has.any(axis=0) & col_has.any(axis=0)
    if not active.any():
        return
    n_rows = a.n_rows
    for f_idx in np.nonzero(active)[0].tolist():
        owners = np.asarray(failures[int(failed_elements[f_idx])], dtype=np.int64)
        row_owner = np.zeros(a.n_rows, dtype=bool)
        row_owner[owners[owners < n_rows]] = True
        col_owner = np.zeros(b.n_cols, dtype=bool)
        col_owner[owners[owners >= n_rows] - n_rows] = True
        yield (
            (row_has[:, f_idx][:, None] & col_has[:, f_idx][None, :])
            & (row_owner[:, None] | col_owner[None, :])
        )


def _repair_cross_product(
    product: np.ndarray,
    collection: BatmapCollection,
    a: SparseBooleanMatrix,
    b: SparseBooleanMatrix,
) -> np.ndarray:
    """Add back the witnesses lost to failed cuckoo insertions (exact repair)."""
    out = None
    for increment in _iter_repair_increments(collection, a, b):
        if out is None:
            out = product.copy()
        out += increment.astype(np.int64)
    return product if out is None else out


def _repair_cross_result(
    result,
    collection: BatmapCollection,
    a: SparseBooleanMatrix,
    b: SparseBooleanMatrix,
):
    """Fold the failed-insertion repair into a sparse cross result as COO entries."""
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for increment in _iter_repair_increments(collection, a, b):
        r, c = np.nonzero(increment)
        rows.append(r)
        cols.append(c)
    if not rows:
        return result
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    return result.add_entries(r, c, np.ones(r.size, dtype=np.int64))


def multiply_batmap(
    a: SparseBooleanMatrix,
    b: SparseBooleanMatrix,
    *,
    config: BatmapConfig = DEFAULT_CONFIG,
    rng: RngLike = None,
    compute: str = "auto",
    workers: int | None = None,
    build_compute: str = "auto",
    build_workers: int | None = None,
    result_format: str = "dense",
    min_support: int = 0,
) -> np.ndarray:
    """Witness-count product using host-side batmap comparisons.

    All row-sets of ``a`` and column-sets of ``b`` live over the same inner
    dimension, so one shared hash family serves both sides.  Backend
    selection goes through the workload planner
    (:func:`~repro.core.plan.plan_counts`): the cross block
    (``a``-rows x ``b``-columns) runs on the vectorised batch engine, fans
    out to the multiprocess executor for large multi-core instances, or
    falls back to the per-pair reference for layouts the packed engines
    cannot represent (``payload_bits > 7``, sub-word ranges).  Failed
    insertions (rare) are repaired exactly in every case.

    ``build_compute`` independently selects the *construction* engine for
    the row/column batmaps (:func:`~repro.core.plan.plan_build`): the bulk
    engines build the whole collection with vectorized round-based cuckoo
    placement instead of one element at a time.

    ``result_format="sparse"`` returns a non-symmetric
    :class:`~repro.core.results.SparseCountResult` over the product's
    coordinates instead of the dense ndarray; a positive ``min_support``
    (only meaningful with sparse) prunes cross tiles whose set-size bounds
    cannot reach the threshold before any SWAR work.  Witness repair is
    folded in as COO entries, so the pruning contract matches the miner's:
    entries at or above ``min_support`` are exact.
    """
    _check_shapes(a, b)
    require(compute in ("auto", "host", "batch", "parallel"),
            f"compute must be 'auto', 'host', 'batch' or 'parallel', got {compute!r}")
    require(result_format in ("dense", "sparse"),
            f"result_format must be 'dense' or 'sparse', got {result_format!r}")
    require(min_support == 0 or result_format == "sparse",
            "min_support pruning needs result_format='sparse' "
            "(the dense product is the unpruned oracle)")
    universe = a.n_cols
    sets = list(a.rows) + b.column_sets()
    collection = BatmapCollection.build(sets, universe, config=config, rng=rng,
                                        build_compute=build_compute,
                                        build_workers=build_workers)
    rows_idx = np.arange(a.n_rows)
    cols_idx = a.n_rows + np.arange(b.n_cols)
    byte_packable = collection.r0 >= 4 and config.entry_storage_bits == 8
    if result_format == "sparse":
        if byte_packable:
            # The pruned streaming path (serial batch engine: the executor
            # has no rectangular sparse shape, and the point of sparse here
            # is the result footprint, not the counting wall clock).
            result = collection.batch_counter().count_cross_result(
                rows_idx, cols_idx, min_support=min_support)
        else:
            from repro.core.results import SparseAccumulator

            acc = SparseAccumulator(a.n_rows, b.n_cols, symmetric=False,
                                    min_support=min_support)
            block = np.empty((1, b.n_cols), dtype=np.int64)
            for i in range(a.n_rows):
                bm_i = collection.batmap(int(rows_idx[i]))
                for j in range(b.n_cols):
                    block[0, j] = count_common(
                        bm_i, collection.batmap(int(cols_idx[j])))
                acc.add_block(rows_idx[i:i + 1], np.arange(b.n_cols), block)
            acc.tiles_total = a.n_rows
            result = acc.finalize()
        return _repair_cross_result(result, collection, a, b)
    plan = plan_counts(collection, requested=compute, workers=workers,
                       n_pairs=a.n_rows * b.n_cols)
    if plan.backend == "parallel" and byte_packable:
        from repro.parallel.executor import ParallelPairCounter

        with ParallelPairCounter(collection, workers=workers) as counter:
            product = counter.count_cross(rows_idx, cols_idx)
    elif plan.backend == "host" or not byte_packable:
        product = np.empty((a.n_rows, b.n_cols), dtype=np.int64)
        for i in range(a.n_rows):
            bm_i = collection.batmap(int(rows_idx[i]))
            for j in range(b.n_cols):
                product[i, j] = count_common(bm_i, collection.batmap(int(cols_idx[j])))
    else:
        product = collection.batch_counter().count_cross(rows_idx, cols_idx)
    return _repair_cross_product(product, collection, a, b)


def multiply_batmap_device(
    a: SparseBooleanMatrix,
    b: SparseBooleanMatrix,
    *,
    config: BatmapConfig = DEFAULT_CONFIG,
    rng: RngLike = None,
    device: DeviceSpec = GTX_285,
    tile_size: int = 2048,
    compute: str = "kernel",
    build_compute: str = "auto",
) -> tuple[np.ndarray, float]:
    """Witness-count product through the simulated GPU kernel.

    Returns ``(product, modelled_device_seconds)``.  The kernel counts *all*
    pairs among the ``a``-rows and ``b``-columns; only the cross block is
    extracted.  (The paper's join-project application has exactly this
    structure.)  ``compute="batch"`` takes the counts from the batch engine
    instead of simulating every launch — see
    :func:`repro.kernels.driver.run_batmap_pair_counts`.
    """
    _check_shapes(a, b)
    universe = a.n_cols
    sets = list(a.rows) + b.column_sets()
    collection = BatmapCollection.build(sets, universe, config=config, rng=rng,
                                        build_compute=build_compute)
    result = run_batmap_pair_counts(collection, device=device, tile_size=tile_size,
                                    compute=compute)
    # reorder device (sorted) counts back to original set indices
    n_total = len(sets)
    order = collection.order
    counts = np.zeros((n_total, n_total), dtype=np.int64)
    counts[np.ix_(order, order)] = result.counts

    product = counts[:a.n_rows, a.n_rows:]
    product = _repair_cross_product(product, collection, a, b)
    return product, result.device_seconds
