"""Boolean matrix multiplication via batmap set intersection.

For boolean matrices ``M`` (rows as sets ``A_i`` of non-zero columns) and
``M'`` (columns as sets ``B_j`` of non-zero rows), the product has
``(i, j)`` set iff ``A_i ∩ B_j ≠ ∅``; the *witness-counting* variant returns
``|A_i ∩ B_j|`` (the number of k with ``M_{i,k} M'_{k,j} > 0``), which is the
quantity the batmap comparison computes directly.

Three implementations are provided:

* ``multiply_dense`` — NumPy reference (integer matmul of the dense forms);
* ``multiply_merge`` — per-pair sorted-list intersection (CPU baseline);
* ``multiply_batmap`` — build one batmap per row of ``M`` and per column of
  ``M'`` over the shared inner dimension and count all pairs with the
  data-independent comparison (optionally through the GPU-simulator kernel).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.merge import intersection_size_numpy
from repro.core.collection import BatmapCollection
from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.gpu.device import DeviceSpec, GTX_285
from repro.kernels.driver import run_batmap_pair_counts
from repro.matrix.boolean import SparseBooleanMatrix
from repro.utils.rng import RngLike

__all__ = [
    "multiply_dense",
    "multiply_merge",
    "multiply_batmap",
    "multiply_batmap_device",
]


def _check_shapes(a: SparseBooleanMatrix, b: SparseBooleanMatrix) -> None:
    if a.n_cols != b.n_rows:
        raise ValueError(
            f"inner dimensions do not match: {a.n_rows}x{a.n_cols} times {b.n_rows}x{b.n_cols}"
        )


def multiply_dense(a: SparseBooleanMatrix, b: SparseBooleanMatrix) -> np.ndarray:
    """Witness-count product via dense integer matmul (ground truth for tests)."""
    _check_shapes(a, b)
    return a.to_dense().astype(np.int64) @ b.to_dense().astype(np.int64)


def multiply_merge(a: SparseBooleanMatrix, b: SparseBooleanMatrix) -> np.ndarray:
    """Witness-count product via per-pair sorted intersection (CPU baseline)."""
    _check_shapes(a, b)
    cols = b.column_sets()
    out = np.zeros((a.n_rows, b.n_cols), dtype=np.int64)
    for i, row in enumerate(a.rows):
        for j, col in enumerate(cols):
            if row.size and col.size:
                out[i, j] = intersection_size_numpy(row, col)
    return out


def _repair_cross_product(
    product: np.ndarray,
    collection: BatmapCollection,
    a: SparseBooleanMatrix,
    b: SparseBooleanMatrix,
) -> np.ndarray:
    """Add back the witnesses lost to failed cuckoo insertions (exact repair).

    A failed insertion of inner-dimension element ``k`` into the batmap of a
    row/column set means every cross pair containing that set undercounts
    ``k`` by one if the other side holds it too.
    """
    failures = collection.failed_insertions()
    if not failures:
        return product
    product = product.copy()
    b_cols = b.column_sets()
    for element, owners in failures.items():
        owners_set = set(owners)
        for i in range(a.n_rows):
            if element not in a.rows[i]:
                continue
            for j in range(b.n_cols):
                if element in b_cols[j] and (i in owners_set or (a.n_rows + j) in owners_set):
                    product[i, j] += 1
    return product


def multiply_batmap(
    a: SparseBooleanMatrix,
    b: SparseBooleanMatrix,
    *,
    config: BatmapConfig = DEFAULT_CONFIG,
    rng: RngLike = None,
) -> np.ndarray:
    """Witness-count product using host-side batmap comparisons.

    All row-sets of ``a`` and column-sets of ``b`` live over the same inner
    dimension, so one shared hash family serves both sides.  The cross block
    (``a``-rows x ``b``-columns) is computed by the vectorised batch engine
    in one pass per width-class pair instead of a per-pair Python loop, and
    failed insertions (rare) are repaired exactly.
    """
    _check_shapes(a, b)
    universe = a.n_cols
    sets = list(a.rows) + b.column_sets()
    collection = BatmapCollection.build(sets, universe, config=config, rng=rng)
    product = collection.batch_counter().count_cross(
        np.arange(a.n_rows), a.n_rows + np.arange(b.n_cols)
    )
    return _repair_cross_product(product, collection, a, b)


def multiply_batmap_device(
    a: SparseBooleanMatrix,
    b: SparseBooleanMatrix,
    *,
    config: BatmapConfig = DEFAULT_CONFIG,
    rng: RngLike = None,
    device: DeviceSpec = GTX_285,
    tile_size: int = 2048,
    compute: str = "kernel",
) -> tuple[np.ndarray, float]:
    """Witness-count product through the simulated GPU kernel.

    Returns ``(product, modelled_device_seconds)``.  The kernel counts *all*
    pairs among the ``a``-rows and ``b``-columns; only the cross block is
    extracted.  (The paper's join-project application has exactly this
    structure.)  ``compute="batch"`` takes the counts from the batch engine
    instead of simulating every launch — see
    :func:`repro.kernels.driver.run_batmap_pair_counts`.
    """
    _check_shapes(a, b)
    universe = a.n_cols
    sets = list(a.rows) + b.column_sets()
    collection = BatmapCollection.build(sets, universe, config=config, rng=rng)
    result = run_batmap_pair_counts(collection, device=device, tile_size=tile_size,
                                    compute=compute)
    # reorder device (sorted) counts back to original set indices
    n_total = len(sets)
    order = collection.order
    counts = np.zeros((n_total, n_total), dtype=np.int64)
    counts[np.ix_(order, order)] = result.counts

    product = counts[:a.n_rows, a.n_rows:]
    product = _repair_cross_product(product, collection, a, b)
    return product, result.device_seconds
