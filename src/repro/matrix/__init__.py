"""Sparse boolean matrix multiplication and join-project applications."""

from repro.matrix.boolean import SparseBooleanMatrix
from repro.matrix.joinproject import Relation, join_project, join_project_counting
from repro.matrix.multiply import (
    multiply_batmap,
    multiply_batmap_device,
    multiply_dense,
    multiply_merge,
)

__all__ = [
    "SparseBooleanMatrix",
    "Relation",
    "join_project",
    "join_project_counting",
    "multiply_dense",
    "multiply_merge",
    "multiply_batmap",
    "multiply_batmap_device",
]
