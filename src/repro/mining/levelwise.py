"""Vectorised level-``k`` candidate support counting over a packed bitmap.

The levelwise phase of :class:`~repro.mining.itemsets.BatmapItemsetMiner`
(levels >= 3, after the batmap pipeline has produced the frequent pairs)
used to count candidate supports by scanning every transaction with a Python
``set.issuperset`` probe per candidate — ``O(transactions * candidates)``
interpreter-level work that dwarfed the vectorised pair phase on any
non-trivial database.

This module replaces that scan:

* :class:`TransactionBitmap` packs the database once into an
  ``(n_items, ceil(n_transactions / 64))`` ``uint64`` matrix — bit ``b`` of
  word ``w`` of row ``i`` is set iff transaction ``64 w + b`` contains item
  ``i`` (the vertical tidlist format, as a bitset);
* the support of a candidate itemset is then the popcount of the AND of its
  item rows, and a whole level of candidates is answered with one broadcast
  AND + popcount pass per item column (:func:`count_candidate_supports`),
  chunked to bound peak memory;
* for large levels the candidate list fans out across a process pool over a
  shared-memory copy of the bitmap — the same zero-copy re-attach discipline
  :mod:`repro.parallel.executor` uses for the pair engine — with the
  batch/parallel choice made by :func:`repro.core.plan.plan_levelwise`.

:func:`scan_supports` keeps the original transaction scan as the correctness
oracle; the property tests assert bit-identity between all three paths.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.plan import plan_levelwise
from repro.datasets.transactions import TransactionDatabase
from repro.utils.bits import popcount_array
from repro.utils.validation import require

__all__ = [
    "TransactionBitmap",
    "count_candidate_supports",
    "scan_supports",
    "LEVELWISE_CHUNK_WORDS",
]

#: Upper bound on the uint64 words one AND/popcount pass materialises; the
#: candidate axis is chunked to stay below it (same cache-residency reasoning
#: as :data:`repro.core.batch.DEFAULT_BLOCK_WORDS`).
LEVELWISE_CHUNK_WORDS = 1 << 17

# NumPy >= 2.0 ships a native popcount ufunc; older versions fall back to
# the shared per-byte lookup helper of repro.utils.bits over a uint32 view.
_BITWISE_COUNT = getattr(np, "bitwise_count", None)


def _popcount_rows(words: np.ndarray) -> np.ndarray:
    """Total popcount per row of a ``(n, w)`` ``uint64`` matrix, as int64."""
    if _BITWISE_COUNT is not None:
        return _BITWISE_COUNT(words).sum(axis=-1, dtype=np.int64)
    as32 = words.reshape(words.shape[0], -1).view(np.uint32)
    return popcount_array(as32).sum(axis=-1, dtype=np.int64)


@dataclass(frozen=True)
class TransactionBitmap:
    """The database as one packed bitset per item (vertical format).

    ``words[i]`` is the transaction bitset of item ``i``; candidate supports
    are AND + popcount over rows.  Built once per mining run and shared by
    every level.
    """

    words: np.ndarray        #: (n_items, n_words) uint64
    n_transactions: int

    def __post_init__(self) -> None:
        require(self.words.ndim == 2, "bitmap words must be 2-D")
        require(self.words.dtype == np.uint64, "bitmap words must be uint64")

    @property
    def n_items(self) -> int:
        return int(self.words.shape[0])

    @property
    def n_words(self) -> int:
        return int(self.words.shape[1])

    @property
    def nbytes(self) -> int:
        return int(self.words.nbytes)

    @classmethod
    def from_database(cls, database: TransactionDatabase) -> "TransactionBitmap":
        n_words = max(1, -(-database.n_transactions // 64))
        words = np.zeros((database.n_items, n_words), dtype=np.uint64)
        for tid, items in enumerate(database.transactions):
            if items.size:
                words[items, tid >> 6] |= np.uint64(1 << (tid & 63))
        return cls(words=words, n_transactions=database.n_transactions)


def _supports_dense(words: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """AND the item rows of each candidate and popcount — one pass per column."""
    acc = words[candidates[:, 0]].copy()
    for col in range(1, candidates.shape[1]):
        acc &= words[candidates[:, col]]
    return _popcount_rows(acc)


def _supports_chunked(words: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    n_words = words.shape[1]
    chunk = max(1, LEVELWISE_CHUNK_WORDS // max(1, n_words))
    out = np.empty(candidates.shape[0], dtype=np.int64)
    for start in range(0, candidates.shape[0], chunk):
        stop = min(candidates.shape[0], start + chunk)
        out[start:stop] = _supports_dense(words, candidates[start:stop])
    return out


# --------------------------------------------------------------------------- #
# Worker side (parallel path)
# --------------------------------------------------------------------------- #
_worker_shm = None
_worker_words = None


def _init_worker(name: str, n_items: int, n_words: int) -> None:
    """Re-attach the shared bitmap zero-copy (same discipline as the executor)."""
    global _worker_shm, _worker_words
    from repro.parallel.executor import _attach_shared_memory

    _worker_shm = _attach_shared_memory(name)
    _worker_words = np.frombuffer(
        _worker_shm.buf, dtype=np.uint64, count=n_items * n_words
    ).reshape(n_items, n_words)


def _supports_task(start: int, candidates: np.ndarray) -> tuple[int, np.ndarray]:
    return start, _supports_chunked(_worker_words, candidates)


def _count_parallel(bitmap: TransactionBitmap, candidates: np.ndarray,
                    workers: int | None) -> np.ndarray:
    from repro.parallel.executor import SharedDeviceBuffer, resolve_worker_count

    n_workers = resolve_worker_count(workers)
    total = candidates.shape[0]
    chunk = max(1, -(-total // (4 * n_workers)))
    out = np.empty(total, dtype=np.int64)
    # The segment API is uint32-based; a contiguous uint64 bitmap reinterprets
    # losslessly (little-endian byte image is shared, workers re-view uint64).
    flat = np.ascontiguousarray(bitmap.words).view(np.uint32).reshape(-1)
    with SharedDeviceBuffer(flat) as shared:
        with ProcessPoolExecutor(
            max_workers=n_workers,
            initializer=_init_worker,
            initargs=(shared.name, bitmap.n_items, bitmap.n_words),
        ) as pool:
            futures = [
                pool.submit(_supports_task, start, candidates[start:start + chunk])
                for start in range(0, total, chunk)
            ]
            try:
                for future in futures:
                    start, counts = future.result()
                    out[start:start + counts.size] = counts
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
    return out


# --------------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------------- #
def count_candidate_supports(
    bitmap: TransactionBitmap,
    candidates,
    *,
    compute: str = "auto",
    workers: int | None = None,
) -> np.ndarray:
    """Support of every candidate itemset, as an ``int64`` array.

    ``candidates`` is array-like of shape ``(n_candidates, k)`` with item
    ids; every candidate of one call must have the same size ``k`` (the
    levelwise driver calls once per level).  ``compute`` is ``"auto"``
    (planner decides), ``"batch"`` (serial vectorised pass) or
    ``"parallel"`` (candidate fan-out over a shared-memory bitmap).
    """
    require(compute in ("auto", "batch", "parallel"),
            f"compute must be 'auto', 'batch' or 'parallel', got {compute!r}")
    candidates = np.asarray(candidates, dtype=np.int64)
    require(candidates.ndim == 2 and candidates.shape[1] >= 1,
            f"candidates must have shape (n, k >= 1), got {candidates.shape}")
    if candidates.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    if candidates.size and (candidates.min() < 0 or candidates.max() >= bitmap.n_items):
        raise ValueError("candidate item id out of range for the bitmap")

    if compute == "auto":
        backend = plan_levelwise(candidates.shape[0], bitmap.n_words,
                                 workers=workers).backend
    else:
        backend = compute
    if backend == "parallel":
        return _count_parallel(bitmap, candidates, workers)
    return _supports_chunked(bitmap.words, candidates)


def scan_supports(transactions, candidates) -> np.ndarray:
    """The per-transaction Python scan the bitmap counter replaced.

    Kept as the correctness oracle: the property tests assert the vectorised
    and parallel paths are bit-identical to this on random databases.
    ``transactions`` may be item-id arrays or prebuilt ``set`` objects —
    callers scanning several levels should prebuild the sets once.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    require(candidates.ndim == 2 and candidates.shape[1] >= 1,
            f"candidates must have shape (n, k >= 1), got {candidates.shape}")
    k = candidates.shape[1]
    tuples = [tuple(c) for c in candidates.tolist()]
    out = np.zeros(len(tuples), dtype=np.int64)
    for t in transactions:
        t_set = t if isinstance(t, (set, frozenset)) else set(np.asarray(t).tolist())
        if len(t_set) < k:
            continue
        for idx, candidate in enumerate(tuples):
            if t_set.issuperset(candidate):
                out[idx] += 1
    return out
