"""General frequent itemset mining driven by the batmap pair engine.

The paper focuses on frequent *pair* mining and notes that "frequent itemset
mining in general ... reduces to efficient set intersection": once the
frequent pairs are known, larger itemsets can be found levelwise with far
smaller candidate sets.  This module provides that driver:

* level 1 and 2 come from the batmap pipeline (device-side pair counting);
* levels >= 3 use Apriori-style candidate generation *restricted to the
  pair-graph* (a candidate is only generated if all of its pairs are
  frequent), with supports counted by the vectorised bitmap engine of
  :mod:`repro.mining.levelwise` — one AND + popcount pass per level over the
  packed transaction bitmap, optionally fanned out across a process pool —
  instead of the per-transaction Python scan the seed shipped (kept there as
  :func:`~repro.mining.levelwise.scan_supports`, the correctness oracle).

Section V of the paper sketches two deeper generalisations of the batmap
itself (d-of-(d+1) layouts and per-item multi-way counting); those are
implemented in :mod:`repro.extensions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.mining.levelwise import (
    TransactionBitmap,
    count_candidate_supports,
    scan_supports,
)
from repro.mining.pair_mining import BatmapPairMiner
from repro.mining.support import MiningReport
from repro.utils.rng import RngLike
from repro.utils.validation import require

__all__ = ["ItemsetMiningResult", "BatmapItemsetMiner"]


@dataclass
class ItemsetMiningResult:
    """Frequent itemsets of every size, plus where their supports came from."""

    itemsets: dict[tuple[int, ...], int] = field(default_factory=dict)
    pair_phase_seconds: float = 0.0
    extension_levels: int = 0
    #: The pair phase's full report (count/build backends, phase timings);
    #: ``None`` only for hand-assembled results.
    pair_report: MiningReport | None = None

    def of_size(self, k: int) -> dict[tuple[int, ...], int]:
        return {key: value for key, value in self.itemsets.items() if len(key) == k}

    def max_size(self) -> int:
        return max((len(k) for k in self.itemsets), default=0)


class BatmapItemsetMiner:
    """Levelwise itemset miner seeded by device-side pair counts.

    Parameters
    ----------
    pair_miner:
        The pair pipeline producing levels 1 and 2 (its ``compute`` knob
        selects the pair-counting backend).
    max_size:
        Largest itemset size to mine; ``None`` mines until no candidates
        survive.
    level_compute:
        Support counter for levels >= 3: ``"auto"`` (the planner picks
        between the serial bitmap pass and the candidate fan-out),
        ``"batch"``, ``"parallel"``, or ``"scan"`` (the legacy
        per-transaction scan, kept as the correctness oracle).
    workers:
        Worker processes for the parallel levelwise path; ``None``
        auto-selects from the core count.
    """

    def __init__(self, pair_miner: BatmapPairMiner | None = None,
                 *, max_size: int | None = None,
                 level_compute: str = "auto",
                 workers: int | None = None) -> None:
        if max_size is not None:
            require(max_size >= 1, f"max_size must be >= 1, got {max_size}")
        require(level_compute in ("auto", "batch", "parallel", "scan"),
                f"level_compute must be 'auto', 'batch', 'parallel' or 'scan', "
                f"got {level_compute!r}")
        self.pair_miner = pair_miner or BatmapPairMiner()
        self.max_size = max_size
        self.level_compute = level_compute
        self.workers = workers

    def mine(
        self,
        database: TransactionDatabase,
        *,
        min_support: int,
        rng: RngLike = None,
    ) -> ItemsetMiningResult:
        require(min_support >= 1, f"min_support must be >= 1, got {min_support}")
        result = ItemsetMiningResult()

        report = self.pair_miner.mine(database, min_support=min_support, rng=rng)
        result.pair_phase_seconds = report.total_seconds
        result.pair_report = report

        # Level 1: item supports live on the diagonal of the repaired matrix.
        supports = report.supports
        for local in range(supports.n_items):
            support = int(supports.counts[local, local])
            if support >= min_support:
                result.itemsets[(int(supports.item_ids[local]),)] = support
        if self.max_size == 1:
            return result

        # Level 2: device-side pair counts.
        pairs = supports.frequent_pairs(min_support)
        result.itemsets.update({k: v for k, v in pairs.items()})
        if self.max_size == 2 or not pairs:
            return result

        # Levels >= 3: candidate join restricted to the frequent-pair graph,
        # supports from the packed transaction bitmap (built once, lazily).
        pair_set = set(pairs)
        current = sorted(pairs)
        k = 3
        bitmap: TransactionBitmap | None = None
        scan_sets: list[set] | None = None
        while current and (self.max_size is None or k <= self.max_size):
            candidates = self._generate_candidates(current, pair_set, k)
            if not candidates:
                break
            candidate_array = np.asarray(candidates, dtype=np.int64)
            if self.level_compute == "scan":
                if scan_sets is None:  # built once, shared by every level
                    scan_sets = [set(t.tolist()) for t in database.transactions]
                counts = scan_supports(scan_sets, candidate_array)
            else:
                if bitmap is None:
                    bitmap = TransactionBitmap.from_database(database)
                counts = count_candidate_supports(
                    bitmap, candidate_array,
                    compute=self.level_compute, workers=self.workers,
                )
            survivors = {c: int(s) for c, s in zip(candidates, counts.tolist())
                         if s >= min_support}
            result.itemsets.update(survivors)
            result.extension_levels += 1
            current = sorted(survivors)
            k += 1
        return result

    @staticmethod
    def _generate_candidates(
        frequent_prev: list[tuple[int, ...]],
        frequent_pairs: set[tuple[int, int]],
        k: int,
    ) -> list[tuple[int, ...]]:
        """Join (k-1)-itemsets sharing a prefix; require every contained pair frequent."""
        prev_set = set(frequent_prev)
        out: list[tuple[int, ...]] = []
        n = len(frequent_prev)
        for a_idx in range(n):
            a = frequent_prev[a_idx]
            for b_idx in range(a_idx + 1, n):
                b = frequent_prev[b_idx]
                if a[:-1] != b[:-1]:
                    break
                candidate = a + (b[-1],)
                if any(candidate[:i] + candidate[i + 1:] not in prev_set for i in range(k)):
                    continue
                if all(tuple(sorted(p)) in frequent_pairs
                       for p in combinations(candidate, 2)):
                    out.append(candidate)
        return out
