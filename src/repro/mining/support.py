"""Result containers for frequent pair mining."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.timer import PhaseTimer

__all__ = ["PairSupports", "MiningReport"]


@dataclass
class PairSupports:
    """Supports of item pairs, indexed by original item ids.

    ``counts`` is either the legacy dense matrix — ``counts[i, j]`` is the
    support of the pair ``{i, j}`` (symmetric), the diagonal holds
    single-item supports — or any square symmetric
    :class:`~repro.core.results.CountResult` (the sparse/pruned shapes the
    engines now produce).  Convenience accessors expose the thresholded
    pair dictionary, top-k queries and comparisons with reference results;
    all of them work off the triplet interface, so a sparse result never
    materialises its dense matrix here.
    """

    counts: object            #: dense ndarray or a square CountResult
    item_ids: np.ndarray      #: original item id of each row/column

    def __post_init__(self) -> None:
        from repro.core.results import CountResult

        if isinstance(self.counts, CountResult):
            if not self.counts.symmetric:
                raise ValueError("pair supports need a symmetric result")
        elif self.counts.ndim != 2 or self.counts.shape[0] != self.counts.shape[1]:
            raise ValueError("counts must be a square matrix")
        if self.item_ids.shape != (self.n_items,):
            raise ValueError("item_ids length must match the count matrix")

    @property
    def result(self):
        """The counts as a :class:`~repro.core.results.CountResult` view."""
        from repro.core.results import as_count_result

        return as_count_result(self.counts)

    @property
    def pruned_floor(self) -> int:
        """The ``min_support`` the counts were pruned under (0 = exact)."""
        from repro.core.results import CountResult

        if isinstance(self.counts, CountResult):
            return self.counts.min_support
        return 0

    @property
    def n_items(self) -> int:
        from repro.core.results import CountResult

        if isinstance(self.counts, CountResult):
            return self.counts.n_sets
        return int(self.counts.shape[0])

    def support(self, i: int, j: int) -> int:
        """Support of the pair of *original* item ids ``{i, j}`` (or of item ``i`` if i == j).

        For a pruned sparse result, pairs whose tiles were skipped report
        their partial (possibly zero) stored value — exact answers below
        the pruning floor require a dense or unpruned result.
        """
        from repro.core.results import CountResult, SparseCountResult

        a = self._local(i)
        b = self._local(j)
        if isinstance(self.counts, SparseCountResult):
            return self._sparse_lookup(min(a, b), max(a, b))
        if isinstance(self.counts, CountResult):
            return int(self.counts.matrix()[a, b])
        return int(self.counts[a, b])

    def _sparse_lookup(self, a: int, b: int) -> int:
        rows, cols = self.counts.rows, self.counts.cols
        lo = int(np.searchsorted(rows, a, side="left"))
        hi = int(np.searchsorted(rows, a, side="right"))
        pos = lo + int(np.searchsorted(cols[lo:hi], b, side="left"))
        if pos < hi and cols[pos] == b:
            return int(self.counts.values[pos])
        return 0

    def _local(self, original_id: int) -> int:
        hits = np.nonzero(self.item_ids == original_id)[0]
        if hits.size == 0:
            raise KeyError(f"item {original_id} is not present in the result")
        return int(hits[0])

    def frequent_pairs(self, min_support: int) -> dict[tuple[int, int], int]:
        """All pairs (original ids, i < j) with support >= min_support.

        Exact for any threshold at or above the counts' pruning floor; a
        sparse result pruned at a higher floor refuses the filter (the
        skipped tiles would make the answer silently wrong).
        """
        from repro.core.results import CountResult

        if isinstance(self.counts, CountResult):
            iu, ju, values = self.counts.frequent_pairs(max(1, min_support))
        else:
            iu, ju = np.triu_indices(self.n_items, k=1)
            values = self.counts[iu, ju]
            keep = values >= min_support
            iu, ju, values = iu[keep], ju[keep], values[keep]
        out: dict[tuple[int, int], int] = {}
        for a, b, v in zip(iu, ju, values):
            i = int(self.item_ids[a])
            j = int(self.item_ids[b])
            key = (i, j) if i < j else (j, i)
            out[key] = int(v)
        return out

    def top_k(self, k: int) -> list[tuple[tuple[int, int], int]]:
        """The ``k`` most supported pairs, descending by support (ties by item ids).

        A pruned result ranks only pairs at or above its floor — identical
        to the dense ranking truncated to that support range.
        """
        pairs = self.frequent_pairs(max(1, self.pruned_floor))
        ranked = sorted(pairs.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def total_pairs_with_support(self, min_support: int) -> int:
        return len(self.frequent_pairs(min_support))


@dataclass
class MiningReport:
    """Full output of a batmap pair-mining run: results, timing, device statistics."""

    supports: PairSupports
    timers: PhaseTimer = field(default_factory=PhaseTimer)
    device_seconds: float = 0.0
    transfer_seconds: float = 0.0
    device_bytes: int = 0
    achieved_bandwidth_gbps: float = 0.0
    coalescing_efficiency: float = 1.0
    batmap_bytes: int = 0
    failed_insertions: int = 0
    tiles: int = 0
    #: Which engine produced the counts: "kernel" (simulated device),
    #: "batch" (serial host engine — also the small-input fallback of
    #: compute="parallel"), "parallel" (multiprocess executor), "host"
    #: (per-pair reference — the fallback for payload widths the packed
    #: engines cannot represent), or "sharded(<inner>)" for the
    #: out-of-core pipeline (mine_stream), naming the engine its
    #: shard-pair rectangles ran on.
    count_backend: str = "kernel"
    #: Which engine built the batmap collection: "host" (serial per-element
    #: inserter), "bulk" (vectorized round-based engine) or "parallel"
    #: (multiprocess bulk builder).
    build_backend: str = "host"

    @property
    def preprocess_seconds(self) -> float:
        return self.timers.get("preprocess")

    @property
    def counting_seconds(self) -> float:
        """Pure pair-generation time (Figure 6's quantity).

        The modelled device phase for ``compute="device"`` runs; the
        wall-clock batch-engine phase for ``compute="host"`` runs (which
        record no device time).
        """
        return self.device_seconds if self.device_seconds > 0 else self.timers.get("count")

    @property
    def postprocess_seconds(self) -> float:
        return self.timers.get("postprocess")

    @property
    def total_seconds(self) -> float:
        """Total including pre- and postprocessing (Figure 7's quantity)."""
        return self.timers.total + self.device_seconds + self.transfer_seconds
