"""Result containers for frequent pair mining."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.timer import PhaseTimer

__all__ = ["PairSupports", "MiningReport"]


@dataclass
class PairSupports:
    """Supports of item pairs, indexed by original item ids.

    ``counts[i, j]`` is the support of the pair ``{i, j}`` (symmetric); the
    diagonal holds single-item supports.  Convenience accessors expose the
    thresholded pair dictionary, top-k queries and comparisons with reference
    results.
    """

    counts: np.ndarray
    item_ids: np.ndarray  #: original item id of each row/column

    def __post_init__(self) -> None:
        if self.counts.ndim != 2 or self.counts.shape[0] != self.counts.shape[1]:
            raise ValueError("counts must be a square matrix")
        if self.item_ids.shape != (self.counts.shape[0],):
            raise ValueError("item_ids length must match the count matrix")

    @property
    def n_items(self) -> int:
        return int(self.counts.shape[0])

    def support(self, i: int, j: int) -> int:
        """Support of the pair of *original* item ids ``{i, j}`` (or of item ``i`` if i == j)."""
        a = self._local(i)
        b = self._local(j)
        return int(self.counts[a, b])

    def _local(self, original_id: int) -> int:
        hits = np.nonzero(self.item_ids == original_id)[0]
        if hits.size == 0:
            raise KeyError(f"item {original_id} is not present in the result")
        return int(hits[0])

    def frequent_pairs(self, min_support: int) -> dict[tuple[int, int], int]:
        """All pairs (original ids, i < j) with support >= min_support."""
        iu, ju = np.triu_indices(self.n_items, k=1)
        values = self.counts[iu, ju]
        keep = values >= min_support
        out: dict[tuple[int, int], int] = {}
        for a, b, v in zip(iu[keep], ju[keep], values[keep]):
            i = int(self.item_ids[a])
            j = int(self.item_ids[b])
            key = (i, j) if i < j else (j, i)
            out[key] = int(v)
        return out

    def top_k(self, k: int) -> list[tuple[tuple[int, int], int]]:
        """The ``k`` most supported pairs, descending by support (ties by item ids)."""
        pairs = self.frequent_pairs(1)
        ranked = sorted(pairs.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def total_pairs_with_support(self, min_support: int) -> int:
        return len(self.frequent_pairs(min_support))


@dataclass
class MiningReport:
    """Full output of a batmap pair-mining run: results, timing, device statistics."""

    supports: PairSupports
    timers: PhaseTimer = field(default_factory=PhaseTimer)
    device_seconds: float = 0.0
    transfer_seconds: float = 0.0
    device_bytes: int = 0
    achieved_bandwidth_gbps: float = 0.0
    coalescing_efficiency: float = 1.0
    batmap_bytes: int = 0
    failed_insertions: int = 0
    tiles: int = 0
    #: Which engine produced the counts: "kernel" (simulated device),
    #: "batch" (serial host engine — also the small-input fallback of
    #: compute="parallel"), "parallel" (multiprocess executor), "host"
    #: (per-pair reference — the fallback for payload widths the packed
    #: engines cannot represent), or "sharded(<inner>)" for the
    #: out-of-core pipeline (mine_stream), naming the engine its
    #: shard-pair rectangles ran on.
    count_backend: str = "kernel"
    #: Which engine built the batmap collection: "host" (serial per-element
    #: inserter), "bulk" (vectorized round-based engine) or "parallel"
    #: (multiprocess bulk builder).
    build_backend: str = "host"

    @property
    def preprocess_seconds(self) -> float:
        return self.timers.get("preprocess")

    @property
    def counting_seconds(self) -> float:
        """Pure pair-generation time (Figure 6's quantity).

        The modelled device phase for ``compute="device"`` runs; the
        wall-clock batch-engine phase for ``compute="host"`` runs (which
        record no device time).
        """
        return self.device_seconds if self.device_seconds > 0 else self.timers.get("count")

    @property
    def postprocess_seconds(self) -> float:
        return self.timers.get("postprocess")

    @property
    def total_seconds(self) -> float:
        """Total including pre- and postprocessing (Figure 7's quantity)."""
        return self.timers.total + self.device_seconds + self.transfer_seconds
