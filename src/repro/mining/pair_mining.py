"""End-to-end frequent pair mining with batmaps on the simulated GPU.

This is the pipeline of Section III of the paper:

* **preprocess** (host): support filtering, vertical conversion, batmap
  construction, width sorting, device-buffer packing;
* **device phase**: the tiled pair-count kernel over all ``n x n`` pairs
  (upper triangle of tiles only);
* **postprocess** (host): reorder the counts to original item order, add the
  repair contributions of failed insertions, and threshold.

The report separates the three phases the way the paper's figures do
(Figure 6 plots the counting phase alone, Figure 7 the total).
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.core.intersection import count_common
from repro.core.plan import PlanFeatures, plan_counts, resolve_result_format
from repro.datasets.streaming import collect_transactions
from repro.datasets.transactions import TransactionDatabase
from repro.gpu.device import DeviceSpec, GTX_285
from repro.kernels.driver import run_batmap_pair_counts
from repro.mining.postprocess import (
    reorder_counts,
    repair_count_result,
    repair_pair_counts,
    repair_pair_counts_from_failures,
)
from repro.mining.preprocess import preprocess, preprocess_streaming
from repro.mining.support import MiningReport, PairSupports
from repro.parallel.executor import ParallelPairCounter
from repro.utils.memory import parse_memory_size
from repro.utils.rng import RngLike
from repro.utils.timer import PhaseTimer
from repro.utils.validation import require

__all__ = ["BatmapPairMiner", "DEFAULT_STREAM_BUDGET"]

#: Resident-set ceiling ``mine_stream`` uses when the caller names none —
#: generous enough that modest instances land in one shard, small enough
#: that a laptop never swaps.
DEFAULT_STREAM_BUDGET = 256 << 20


def _host_counts_sorted(collection) -> np.ndarray:
    """Dense count matrix in width-sorted order via the per-pair reference.

    The fallback counting phase for layouts the packed engines cannot
    represent (``payload_bits > 7``): exact for every configured width.
    """
    batmaps = collection.batmaps_sorted
    n = len(batmaps)
    out = np.zeros((n, n), dtype=np.int64)
    for a in range(n):
        out[a, a] = batmaps[a].stored_count
        for b in range(a + 1, n):
            c = count_common(batmaps[a], batmaps[b])
            out[a, b] = c
            out[b, a] = c
    return out


@dataclass
class BatmapPairMiner:
    """Frequent pair miner built on batmaps and the GPU simulator.

    Parameters
    ----------
    device:
        Device specification used by the simulator (defaults to the paper's
        GTX 285).
    tile_size:
        Side length ``k`` of the device sub-problems (the paper uses 2048;
        smaller values keep individual simulated launches short).
    config:
        Batmap construction parameters.
    compute:
        ``"device"`` (default) runs the tiled pair-count kernel on the GPU
        simulator and reports its modelled timing and traffic statistics;
        ``"host"`` computes the (bit-identical) counts with the vectorised
        batch engine (:mod:`repro.core.batch`) on the host — the fast
        wall-clock serving path, with no device model attached;
        ``"parallel"`` distributes the same tiles across a process pool over
        a shared-memory copy of the packed buffer
        (:class:`~repro.parallel.executor.ParallelPairCounter`), falling back
        to the serial batch engine for small inputs;
        ``"auto"`` defers the batch/parallel choice to the workload planner
        (:func:`repro.core.plan.plan_counts`) — the simulator is never
        auto-selected.
    workers:
        Worker processes for ``compute="parallel"``; ``None`` auto-selects
        from the machine's core count.
    build_compute:
        Construction engine for the preprocessing phase (``"auto"``,
        ``"host"``, ``"bulk"`` or ``"parallel"``), routed through
        :func:`~repro.core.plan.plan_build`.  All engines produce
        collections with identical pair counts; the bulk engines make the
        preprocessing phase — the dominant cost once counting is fast —
        run vectorized instead of one element at a time.
    build_workers:
        Worker processes for ``build_compute="parallel"``; ``None``
        auto-selects (and falls back to ``workers``).
    result_format:
        Shape of the count results: ``"dense"`` (default — the legacy
        ``(n, n)`` matrix, byte-identical to every previous release),
        ``"sparse"`` (COO upper triangle; with the mining ``min_support``
        pushed into the engines as a tile-pruning floor), or ``"auto"``
        (sparse only when the dense matrix would not fit the run's memory
        budget — in-memory :meth:`mine` has no budget, so auto stays
        dense there).
    """

    device: DeviceSpec = GTX_285
    tile_size: int = 2048
    config: BatmapConfig = DEFAULT_CONFIG
    work_group: tuple[int, int] = (16, 16)
    compute: str = "device"
    workers: int | None = None
    build_compute: str = "auto"
    build_workers: int | None = None
    result_format: str = "dense"

    def mine(
        self,
        database: TransactionDatabase,
        *,
        min_support: int = 1,
        rng: RngLike = None,
        filter_items: bool = True,
        result_format: str | None = None,
    ) -> MiningReport:
        """Compute the support of every item pair; return results plus phase timings.

        ``result_format`` overrides the miner-level default for this call.
        The sparse path threads ``min_support`` into the counting engines as
        a tile-pruning floor; ``frequent_pairs(min_support)`` on the result
        is exact (bit-identical to the dense pipeline filtered afterwards).
        """
        require(min_support >= 1, f"min_support must be >= 1, got {min_support}")
        require(self.compute in ("device", "host", "parallel", "auto"),
                f"compute must be 'device', 'host', 'parallel' or 'auto', "
                f"got {self.compute!r}")
        require(self.build_compute in ("auto", "host", "bulk", "parallel"),
                f"build_compute must be 'auto', 'host', 'bulk' or 'parallel', "
                f"got {self.build_compute!r}")
        timers = PhaseTimer()

        with timers.time("preprocess"):
            pre = preprocess(
                database,
                min_support=min_support,
                config=self.config,
                rng=rng,
                filter_items=filter_items,
                build_compute=self.build_compute,
                build_workers=(self.build_workers if self.build_workers is not None
                               else self.workers),
            )

        requested_format = (result_format if result_format is not None
                            else self.result_format)
        # In-memory mining has no spill budget, so "auto" resolves dense —
        # the byte-identical legacy pipeline.
        fmt = resolve_result_format(requested_format, len(pre.collection), None)
        # The mining min_support rides on the plan features: the planner and
        # the engines see the pruning floor the postprocess will apply.
        features = PlanFeatures.from_collection(
            pre.collection, result_format=fmt, min_support=min_support)

        backend = self.compute
        if self.compute == "auto":
            # The planner returns "host" only for layouts the packed engines
            # cannot represent (the miner never asks for point queries).
            backend = plan_counts(features, workers=self.workers).backend
        elif self.compute == "parallel":
            # Small inputs are not worth a pool — drop to the batch engine.
            backend = plan_counts(features, requested="parallel",
                                  workers=self.workers).backend
        elif self.compute == "host":
            backend = "batch"
        # Entries wider than one byte (payload_bits > 7) have no packed word
        # form: both SWAR engines would raise, only the per-pair reference is
        # exact.  (compute="device" keeps raising — a layout the simulated
        # kernel genuinely cannot represent should not be silently softened.)
        if (backend in ("batch", "parallel")
                and pre.collection.config.entry_storage_bits != 8):
            backend = "host"

        sparse_result = None   # CountResult in original index order
        counts_sorted = None
        result = None
        if backend == "parallel":
            # Real multiprocess counting phase, wall-clock timed end to end
            # (shared segment + pool startup included).
            with timers.time("count"):
                with ParallelPairCounter(pre.collection, workers=self.workers) as counter:
                    if fmt == "sparse":
                        sparse_result = counter.count_result(
                            result_format="sparse", min_support=min_support)
                    else:
                        counts_sorted = counter.counts_sorted()
        elif backend == "host":
            # Per-pair reference loop (exact for every payload width).
            with timers.time("count"):
                if fmt == "sparse":
                    sparse_result = pre.collection.count_result(
                        compute="host", result_format="sparse",
                        min_support=min_support)
                else:
                    counts_sorted = _host_counts_sorted(pre.collection)
        elif backend == "batch":
            # Host counting phase: the vectorised batch engine, wall-clock timed.
            with timers.time("count"):
                if fmt == "sparse":
                    sparse_result = pre.collection.batch_counter().count_result(
                        result_format="sparse", min_support=min_support)
                else:
                    counts_sorted = pre.collection.batch_counter().counts_sorted()
        else:
            backend = "kernel"
            # Device phase (timed by the simulator's analytic model, not wall clock).
            result = run_batmap_pair_counts(
                pre.collection,
                device=self.device,
                tile_size=self.tile_size,
                work_group=self.work_group,
                result_format=fmt,
                min_support=min_support if fmt == "sparse" else 0,
            )
            counts_sorted = result.counts
            sparse_result = result.result

        with timers.time("postprocess"):
            if sparse_result is not None:
                # The engines already mapped slots to original ids; repair
                # folds the failed-insertion increments in as COO entries.
                counts = repair_count_result(
                    sparse_result, pre.failed_insertions(),
                    pre.database.transactions)
            else:
                counts = reorder_counts(counts_sorted, pre.collection)
                counts = repair_pair_counts(counts, pre.collection, pre.database)
            supports = PairSupports(counts=counts, item_ids=pre.item_map)

        n_failed = sum(len(v) for v in pre.failed_insertions().values())
        return MiningReport(
            supports=supports,
            timers=timers,
            device_seconds=result.device_seconds if result else 0.0,
            transfer_seconds=result.transfer_seconds if result else 0.0,
            device_bytes=result.total_device_bytes if result else 0,
            achieved_bandwidth_gbps=result.achieved_bandwidth_gbps if result else 0.0,
            coalescing_efficiency=result.coalescing_efficiency if result else 1.0,
            batmap_bytes=pre.batmap_bytes,
            failed_insertions=n_failed,
            tiles=result.tiles if result else 0,
            count_backend=backend,
            build_backend=(pre.collection.build_plan.backend
                           if pre.collection.build_plan else "host"),
        )

    def mine_stream(
        self,
        source,
        *,
        min_support: int = 1,
        rng: RngLike = None,
        filter_items: bool = True,
        memory_budget=None,
        spill_dir=None,
        max_transactions: int | None = None,
        result_format: str | None = None,
    ) -> MiningReport:
        """Mine frequent pairs out-of-core from a FIMI stream on disk.

        The database is never fully resident: preprocessing streams the file
        (:func:`~repro.mining.preprocess.preprocess_streaming`), construction
        spills packed shards sized to ``memory_budget`` (a byte count or a
        string like ``"64M"``; default :data:`DEFAULT_STREAM_BUDGET`), and
        counting streams shard-pair rectangles through the batch/parallel
        engines.  Results are **bit-identical** to :meth:`mine` on the
        in-memory database read from the same file.

        ``spill_dir`` keeps the shard spill at a caller-chosen path (and
        leaves it behind for re-attach); by default a temporary directory
        is used and removed when mining finishes.  ``compute="device"`` is
        rejected — the simulated device models an in-memory buffer.

        ``result_format`` (default: the miner field) controls the count
        result shape.  ``"auto"`` compares the dense matrix footprint
        (``n**2 * 8`` bytes) against ``memory_budget`` once the kept item
        count is known and demotes to sparse when it would not fit — the
        path that lets workloads whose *result* outgrows the budget finish.
        The sparse path prunes shard-pair tiles against the exact item
        supports gathered during preprocessing.
        """
        require(min_support >= 1, f"min_support must be >= 1, got {min_support}")
        require(self.compute in ("host", "parallel", "auto"),
                "streaming mining supports compute 'host', 'parallel' or 'auto'; "
                f"got {self.compute!r} (the simulated device needs the whole "
                "buffer resident)")
        budget = parse_memory_size(
            memory_budget if memory_budget is not None else DEFAULT_STREAM_BUDGET)
        timers = PhaseTimer()
        cleanup = spill_dir is None
        spill = Path(spill_dir) if spill_dir is not None else Path(
            tempfile.mkdtemp(prefix="repro-shards-"))
        try:
            with timers.time("preprocess"):
                pre = preprocess_streaming(
                    source,
                    spill,
                    memory_budget=budget,
                    min_support=min_support,
                    config=self.config,
                    rng=rng,
                    filter_items=filter_items,
                    build_compute=self.build_compute,
                    build_workers=(self.build_workers
                                   if self.build_workers is not None
                                   else self.workers),
                    max_transactions=max_transactions,
                    result_format=(result_format if result_format is not None
                                   else self.result_format),
                )
            from repro.parallel.sharded import ShardedPairCounter

            counter = ShardedPairCounter(
                pre.collection,
                compute=self.compute,
                workers=self.workers,
                memory_budget=budget,
                result_format=pre.result_format,
                min_support=min_support if pre.result_format == "sparse" else 0,
            )
            with timers.time("count"):
                if counter.result_format == "sparse":
                    # Exact per-item supports (known from the streaming pass)
                    # bound every pair's post-repair support — the tightest
                    # sound tile-pruning input.
                    counts = counter.count_result(
                        bounds=pre.item_support_bounds)
                else:
                    counts = counter.counts()

            with timers.time("postprocess"):
                failures = pre.failed_insertions()
                if failures:
                    remap = -np.ones(max(1, pre.stats.n_items), dtype=np.int64)
                    remap[pre.item_map] = np.arange(pre.item_map.size)
                    raw = collect_transactions(pre.source, failures.keys(),
                                               max_transactions=max_transactions)
                    transactions = {}
                    for tid, items in raw.items():
                        mapped = remap[items]
                        transactions[tid] = np.sort(mapped[mapped >= 0])
                    if counter.result_format == "sparse":
                        counts = repair_count_result(counts, failures, transactions)
                    else:
                        counts = repair_pair_counts_from_failures(
                            counts, failures, transactions)
                supports = PairSupports(counts=counts, item_ids=pre.item_map)

            n_failed = sum(len(v) for v in failures.values())
            shards = pre.collection.shards
            return MiningReport(
                supports=supports,
                timers=timers,
                batmap_bytes=pre.batmap_bytes,
                failed_insertions=n_failed,
                count_backend=f"sharded({counter.plan.backend})",
                build_backend=f"sharded({shards[0].build_backend})",
            )
        finally:
            if cleanup:
                shutil.rmtree(spill, ignore_errors=True)

    def mine_pairs(
        self,
        transactions,
        n_items: int,
        min_support: int,
        *,
        rng: RngLike = None,
    ) -> dict[tuple[int, int], int]:
        """Drop-in counterpart of the baselines' ``mine_pairs`` API."""
        db = transactions if isinstance(transactions, TransactionDatabase) else (
            TransactionDatabase(transactions=list(transactions), n_items=n_items)
        )
        report = self.mine(db, min_support=min_support, rng=rng)
        return report.supports.frequent_pairs(min_support)
