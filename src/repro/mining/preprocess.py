"""Host-side preprocessing for batmap frequent pair mining (Section III-C).

Steps, in the order the paper describes them:

1. (optional) drop items below the support threshold and relabel the
   survivors densely — "All existing frequent itemset methods do this";
2. convert the transaction database to the vertical format (one tidlist per
   item);
3. build one batmap per tidlist, all sharing the same hash family, recording
   failed cuckoo insertions;
4. sort the batmaps by increasing width so the 16-wide device work groups
   are not dominated by one long batmap.

The output bundles everything the device phase and the repair phase need.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.collection import BatmapCollection
from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.core.errors import DataFormatError
from repro.core.hashing import ExtensibleHashFamily, HashFamily
from repro.core.sharded import (
    ShardedCollection,
    ShardedCollectionBuilder,
    plan_shard_ranges,
    set_packed_bytes,
    working_budget,
)
from repro.datasets.streaming import (
    DEFAULT_CHUNK_ITEMS,
    DEFAULT_CHUNK_TRANSACTIONS,
    FimiStats,
    iter_fimi_chunks,
    scan_fimi_stats,
)
from repro.datasets.transactions import TransactionDatabase
from repro.utils.memory import parse_memory_size
from repro.utils.rng import RngLike
from repro.utils.validation import require

__all__ = [
    "PreprocessedData",
    "preprocess",
    "StreamedPreprocessedData",
    "preprocess_streaming",
]


@dataclass
class PreprocessedData:
    """Everything produced by the host-side preprocessing phase."""

    collection: BatmapCollection
    database: TransactionDatabase          #: the (possibly filtered/relabelled) database
    item_map: np.ndarray                   #: new item id -> original item id
    min_support: int

    @property
    def n_items(self) -> int:
        return len(self.collection)

    @property
    def universe_size(self) -> int:
        """Number of transactions = the batmap element universe."""
        return self.collection.universe_size

    @property
    def batmap_bytes(self) -> int:
        """Size of the packed batmap buffer shipped to the device."""
        return self.collection.memory_bytes

    def failed_insertions(self) -> dict[int, list[int]]:
        """Transaction id -> item ids whose insertion of that transaction failed (F_b)."""
        return self.collection.failed_insertions()


def preprocess(
    database: TransactionDatabase,
    *,
    min_support: int = 1,
    config: BatmapConfig = DEFAULT_CONFIG,
    rng: RngLike = None,
    filter_items: bool = True,
    build_compute: str = "auto",
    build_workers: int | None = None,
) -> PreprocessedData:
    """Build the batmap collection for a transaction database.

    Parameters
    ----------
    min_support:
        Items with support below this are removed before batmaps are built
        (when ``filter_items`` is true), mirroring the preprocessing every
        competing miner performs.
    build_compute:
        Construction engine for the batmap collection, routed through
        :func:`~repro.core.plan.plan_build`: ``"host"`` (serial per-element
        inserter), ``"bulk"`` (vectorized round-based engine),
        ``"parallel"`` (multiprocess bulk build) or ``"auto"`` (planner
        picks).  Tidlist collections are exactly the Figure 6/7 workload
        whose preprocessing phase the bulk engine accelerates.
    """
    require(min_support >= 1, f"min_support must be >= 1, got {min_support}")
    if filter_items and min_support > 1:
        filtered, kept = database.filter_by_support(min_support)
    else:
        filtered, kept = database, np.arange(database.n_items, dtype=np.int64)
    if filtered.n_transactions == 0:
        raise ValueError("cannot preprocess an empty transaction database")

    tidlists = filtered.tidlists()
    universe = max(1, filtered.n_transactions)
    collection = BatmapCollection.build(
        tidlists,
        universe_size=universe,
        config=config,
        rng=rng,
        build_compute=build_compute,
        build_workers=build_workers,
    )
    return PreprocessedData(
        collection=collection,
        database=filtered,
        item_map=kept,
        min_support=min_support,
    )


# --------------------------------------------------------------------------- #
# Out-of-core streaming preprocessing
# --------------------------------------------------------------------------- #
@dataclass
class StreamedPreprocessedData:
    """The streaming pipeline's counterpart of :class:`PreprocessedData`.

    The collection is sharded and spilled; the database stays on disk (only
    its :class:`~repro.datasets.streaming.FimiStats` are retained, plus the
    source path so the repair phase can extract the few transactions it
    needs in one more bounded pass).
    """

    collection: ShardedCollection
    source: object                         #: the FIMI source (path or line iterable)
    stats: FimiStats
    item_map: np.ndarray                   #: new item id -> original item id
    min_support: int
    max_transactions: int | None = None
    #: the resolved counting result format ("dense" or "sparse"); "auto"
    #: requests are settled during preprocessing, where the kept-item count
    #: and the budget first meet
    result_format: str = "dense"

    @property
    def n_items(self) -> int:
        return len(self.collection)

    @property
    def item_support_bounds(self) -> np.ndarray:
        """Exact per-item set sizes (tidlist lengths), by *physical* set id.

        The tightest sound tile-pruning bound: an item's support bounds its
        pair supports, repair included.
        """
        return np.asarray(self.stats.item_supports, dtype=np.int64)[self.item_map]

    @property
    def universe_size(self) -> int:
        return self.collection.universe_size

    @property
    def batmap_bytes(self) -> int:
        """Total packed bytes across all spilled shards."""
        return self.collection.total_packed_bytes

    def failed_insertions(self) -> dict:
        return self.collection.failed_insertions()


def preprocess_streaming(
    source,
    spill_dir: str | Path,
    *,
    memory_budget: int,
    min_support: int = 1,
    config: BatmapConfig = DEFAULT_CONFIG,
    rng: RngLike = None,
    filter_items: bool = True,
    build_compute: str = "auto",
    build_workers: int | None = None,
    family_kind: str = "eager",
    family_capacity: int | None = None,
    chunk_transactions: int | None = None,
    chunk_items: int | None = None,
    max_transactions: int | None = None,
    result_format: str = "dense",
) -> StreamedPreprocessedData:
    """Out-of-core preprocessing: three bounded-memory passes over the stream.

    1. **Scan** — :func:`~repro.datasets.streaming.scan_fimi_stats` computes
       transaction count, item supports and the instance size; support
       filtering, dense relabelling, the collection-global interleave
       granularity ``r0`` and the shard ranges all derive from it.
    2. **Partition** — occurrences are streamed again as ``(item, tid)``
       pairs and appended to one raw spill file per shard, so each shard's
       vertical tidlists can later be assembled without the others.
    3. **Build** — shard by shard: load the partition, assemble tidlists,
       build through :class:`~repro.core.sharded.ShardedCollectionBuilder`
       (planner-routed engines), spill the packed buffer, free everything.

    The hash family is created exactly as :func:`preprocess` creates it
    (same universe, same ``rng``), and per-set placement is independent of
    sharding — the resulting counts are bit-identical to the in-memory
    path on any workload that fits both.
    """
    require(min_support >= 1, f"min_support must be >= 1, got {min_support}")
    memory_budget = parse_memory_size(memory_budget)
    if not isinstance(source, (str, Path)):
        # The pipeline makes several passes (scan, partition, repair), so a
        # one-shot line iterator would silently parse as empty on the second
        # pass.  Buffer non-path sources up front — a convenience path for
        # tests and small inputs; true out-of-core operation needs a file.
        source = list(source)
    # A parsed transaction costs a few hundred bytes of ndarray object
    # overhead before its data (short transactions) or its item data (long
    # ones); cap chunks on both axes at about a quarter of the budget.
    auto_chunk = chunk_transactions is None
    auto_items = chunk_items is None
    if auto_chunk:
        chunk_transactions = int(min(DEFAULT_CHUNK_TRANSACTIONS,
                                     max(64, memory_budget // (4 * 600))))
    if auto_items:
        # Each chunked occurrence costs ~56 B across the partition pass's
        # simultaneous arrays (parsed chunk, pair blocks, concatenation,
        # shard routing) — ~1/160 of the budget keeps that pass near a
        # third of it.
        chunk_items = int(min(DEFAULT_CHUNK_ITEMS,
                              max(1024, memory_budget // 160)))
    stats = scan_fimi_stats(source, chunk_transactions=chunk_transactions,
                            chunk_items=chunk_items,
                            max_transactions=max_transactions)
    if stats.n_transactions == 0:
        raise DataFormatError(f"{stats.name}: no transactions found in input")

    if filter_items and min_support > 1:
        kept = np.nonzero(stats.item_supports >= min_support)[0]
        if kept.size == 0:
            raise DataFormatError(
                f"{stats.name}: no item reaches min_support={min_support}")
    else:
        kept = np.arange(max(1, stats.n_items), dtype=np.int64)
    sizes = (stats.item_supports[kept] if stats.n_items
             else np.zeros(kept.size, dtype=np.int64))
    remap = -np.ones(max(1, stats.n_items), dtype=np.int64)
    remap[kept] = np.arange(kept.size)

    universe = max(1, stats.n_transactions)
    if family_kind == "lazy":
        # Extensible family: later `repro ingest --append` calls may grow
        # the universe up to the capacity without rehashing.
        capacity = (family_capacity if family_capacity is not None
                    else config.universe_capacity(universe))
        require(capacity >= universe,
                f"family_capacity ({capacity}) must cover the universe "
                f"({universe})")
        family = ExtensibleHashFamily.create(
            universe, capacity=capacity,
            shift=config.shift_for_universe(capacity), rng=rng)
    else:
        require(family_kind == "eager",
                f"family_kind must be 'eager' or 'lazy', got {family_kind!r}")
        shift = config.shift_for_universe(universe)
        family = HashFamily.create(universe, shift=shift, rng=rng)
    range_universe = family.range_universe
    # The budget must also hold the fixed residents (hash family, and — for
    # the dense result format only — the n x n count matrix); what is left
    # governs shard sizing and chunking.  A sparse result keeps just the
    # surviving nonzeros resident, so instances whose dense matrix alone
    # exceeds the budget still preprocess under it.  "auto" resolves here,
    # where the kept-item count is first known; the resolved format travels
    # on the returned data so counting uses the same decision.
    from repro.core.plan import resolve_result_format

    result_format = resolve_result_format(result_format, int(kept.size),
                                          memory_budget)
    available = working_budget(memory_budget, universe, int(kept.size),
                               lazy_family=family_kind == "lazy",
                               result_format=result_format)
    if auto_chunk:
        chunk_transactions = int(min(DEFAULT_CHUNK_TRANSACTIONS,
                                     max(64, available // (4 * 600))))
    if auto_items:
        chunk_items = int(min(DEFAULT_CHUNK_ITEMS,
                              max(1024, available // 160)))
    packed = set_packed_bytes(sizes, range_universe, config)
    ranges = plan_shard_ranges(packed, available)
    bounds = np.array([hi for _, hi in ranges], dtype=np.int64)
    r0 = int(min(
        max(4, config.range_for_size(int(size), range_universe))
        for size in sizes.tolist()
    ))

    spill_dir = Path(spill_dir)
    parts_dir = spill_dir / "tidlists"
    parts_dir.mkdir(parents=True, exist_ok=True)
    handles = {}
    try:
        for chunk in iter_fimi_chunks(source, chunk_transactions=chunk_transactions,
                                      chunk_items=chunk_items,
                                      max_transactions=max_transactions):
            pair_blocks = []
            for offset, items in enumerate(chunk.transactions):
                if items.size == 0:
                    continue
                mapped = remap[items]
                mapped = mapped[mapped >= 0]
                if mapped.size == 0:
                    continue
                block = np.empty((mapped.size, 2), dtype=np.int64)
                block[:, 0] = mapped
                block[:, 1] = chunk.start_tid + offset
                pair_blocks.append(block)
            if not pair_blocks:
                continue
            pairs = np.concatenate(pair_blocks)
            shard_of = np.searchsorted(bounds, pairs[:, 0], side="right")
            for s in np.unique(shard_of).tolist():
                handle = handles.get(s)
                if handle is None:
                    handle = handles[s] = (parts_dir / f"part_{s:04d}.bin").open("ab")
                handle.write(np.ascontiguousarray(pairs[shard_of == s]).tobytes())
    finally:
        for handle in handles.values():
            handle.close()

    builder = ShardedCollectionBuilder(
        spill_dir, universe, r0, family=family, config=config,
        build_compute=build_compute, build_workers=build_workers,
        memory_budget=available,
    )
    for s, (lo, hi) in enumerate(ranges):
        part = parts_dir / f"part_{s:04d}.bin"
        if part.exists():
            data = np.fromfile(part, dtype=np.int64).reshape(-1, 2)
        else:
            data = np.zeros((0, 2), dtype=np.int64)
        local = data[:, 0] - lo
        order = np.argsort(local, kind="stable")  # appends keep tids ascending
        tids_sorted = data[:, 1][order]
        local_sorted = local[order]
        # Free the sort intermediates before any batmap is built — together
        # they are ~5x the tidlist data and would otherwise sit under the
        # build's working set.
        del data, local, order
        cuts = np.searchsorted(local_sorted, np.arange(hi - lo + 1))
        del local_sorted
        tidlists = [tids_sorted[cuts[i]:cuts[i + 1]] for i in range(hi - lo)]
        builder.add_shard(tidlists)
        del tidlists, tids_sorted
        if part.exists():
            part.unlink()
    shutil.rmtree(parts_dir, ignore_errors=True)

    return StreamedPreprocessedData(
        collection=builder.finalize(),
        source=source,
        stats=stats,
        item_map=kept,
        min_support=min_support,
        max_transactions=max_transactions,
        result_format=result_format,
    )
