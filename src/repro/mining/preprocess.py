"""Host-side preprocessing for batmap frequent pair mining (Section III-C).

Steps, in the order the paper describes them:

1. (optional) drop items below the support threshold and relabel the
   survivors densely — "All existing frequent itemset methods do this";
2. convert the transaction database to the vertical format (one tidlist per
   item);
3. build one batmap per tidlist, all sharing the same hash family, recording
   failed cuckoo insertions;
4. sort the batmaps by increasing width so the 16-wide device work groups
   are not dominated by one long batmap.

The output bundles everything the device phase and the repair phase need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.collection import BatmapCollection
from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.datasets.transactions import TransactionDatabase
from repro.utils.rng import RngLike
from repro.utils.validation import require

__all__ = ["PreprocessedData", "preprocess"]


@dataclass
class PreprocessedData:
    """Everything produced by the host-side preprocessing phase."""

    collection: BatmapCollection
    database: TransactionDatabase          #: the (possibly filtered/relabelled) database
    item_map: np.ndarray                   #: new item id -> original item id
    min_support: int

    @property
    def n_items(self) -> int:
        return len(self.collection)

    @property
    def universe_size(self) -> int:
        """Number of transactions = the batmap element universe."""
        return self.collection.universe_size

    @property
    def batmap_bytes(self) -> int:
        """Size of the packed batmap buffer shipped to the device."""
        return self.collection.memory_bytes

    def failed_insertions(self) -> dict[int, list[int]]:
        """Transaction id -> item ids whose insertion of that transaction failed (F_b)."""
        return self.collection.failed_insertions()


def preprocess(
    database: TransactionDatabase,
    *,
    min_support: int = 1,
    config: BatmapConfig = DEFAULT_CONFIG,
    rng: RngLike = None,
    filter_items: bool = True,
    build_compute: str = "auto",
    build_workers: int | None = None,
) -> PreprocessedData:
    """Build the batmap collection for a transaction database.

    Parameters
    ----------
    min_support:
        Items with support below this are removed before batmaps are built
        (when ``filter_items`` is true), mirroring the preprocessing every
        competing miner performs.
    build_compute:
        Construction engine for the batmap collection, routed through
        :func:`~repro.core.plan.plan_build`: ``"host"`` (serial per-element
        inserter), ``"bulk"`` (vectorized round-based engine),
        ``"parallel"`` (multiprocess bulk build) or ``"auto"`` (planner
        picks).  Tidlist collections are exactly the Figure 6/7 workload
        whose preprocessing phase the bulk engine accelerates.
    """
    require(min_support >= 1, f"min_support must be >= 1, got {min_support}")
    if filter_items and min_support > 1:
        filtered, kept = database.filter_by_support(min_support)
    else:
        filtered, kept = database, np.arange(database.n_items, dtype=np.int64)
    if filtered.n_transactions == 0:
        raise ValueError("cannot preprocess an empty transaction database")

    tidlists = filtered.tidlists()
    universe = max(1, filtered.n_transactions)
    collection = BatmapCollection.build(
        tidlists,
        universe_size=universe,
        config=config,
        rng=rng,
        build_compute=build_compute,
        build_workers=build_workers,
    )
    return PreprocessedData(
        collection=collection,
        database=filtered,
        item_map=kept,
        min_support=min_support,
    )
