"""Host-side postprocessing: repair of failed insertions and result assembly.

Section III-C: "Let F_b be the set of items i for which insertion of value b
in batmap B_i failed, and let A_b denote all items in input associated with
b.  For all transactions b, we construct the pairs (min(a,c), max(a,c)) for
which a ∈ F_b and c ∈ A_b ... Whenever a subresult Z_{p,q} is returned from
GPU we extend it with the pairs found in M_{p,q} before reporting."

The device-side counts miss every transaction ``b`` for a pair ``{a, c}``
whenever ``b``'s insertion failed in *either* batmap, so the repair adds one
unit of support per such ``(b, {a, c})`` — taking care to add it exactly once
even when the insertion failed on both sides.
"""

from __future__ import annotations

import numpy as np

from repro.core.collection import BatmapCollection
from repro.datasets.transactions import TransactionDatabase

__all__ = [
    "repair_pair_counts",
    "repair_pair_counts_from_failures",
    "repair_increments",
    "repair_count_result",
    "reorder_counts",
    "upper_triangle_pairs",
]


def reorder_counts(counts_sorted: np.ndarray, collection: BatmapCollection) -> np.ndarray:
    """Convert a count matrix from device (width-sorted) order to original item order."""
    n = len(collection)
    if counts_sorted.shape != (n, n):
        raise ValueError(
            f"count matrix shape {counts_sorted.shape} does not match collection size {n}"
        )
    order = collection.order
    out = np.zeros_like(counts_sorted)
    # counts_sorted[a, b] refers to original items order[a], order[b]
    out[np.ix_(order, order)] = counts_sorted
    return out


def repair_pair_counts(
    counts: np.ndarray,
    collection: BatmapCollection,
    database: TransactionDatabase,
) -> np.ndarray:
    """Add the contributions of failed insertions to an original-order count matrix.

    ``counts`` must be indexed by original item ids (use :func:`reorder_counts`
    first if it came straight from the device driver).  Returns a new matrix;
    the input is not modified.
    """
    n = len(collection)
    if counts.shape != (n, n):
        raise ValueError(
            f"count matrix shape {counts.shape} does not match collection size {n}"
        )
    failures = collection.failed_insertions()   # transaction b -> items F_b
    return repair_pair_counts_from_failures(counts, failures, database.transactions)


def repair_pair_counts_from_failures(
    counts: np.ndarray,
    failures: dict,
    transactions,
) -> np.ndarray:
    """The repair loop itself, decoupled from the collection/database containers.

    ``failures`` maps transaction id ``b`` to the item list ``F_b``;
    ``transactions`` maps ``b`` to its item array — a list for the
    in-memory database, a sparse ``{tid: items}`` dict for the streaming
    pipeline (which extracts only the failed transactions from the file).
    Shared by both paths so the out-of-core repair cannot drift from the
    in-memory one.
    """
    repaired = counts.copy()
    if not failures:
        return repaired
    for b, failed_items in failures.items():
        transaction = transactions[b]
        failed_set = set(failed_items)
        items = transaction.tolist()
        # For each unordered pair {a, c} of items of transaction b with at
        # least one failed insertion, the device missed b's contribution once.
        for ai in range(len(items)):
            a = items[ai]
            for ci in range(ai + 1, len(items)):
                c = items[ci]
                if a in failed_set or c in failed_set:
                    repaired[a, c] += 1
                    repaired[c, a] += 1
        # The diagonal (item supports) also misses b for failed items.
        for a in failed_set:
            repaired[a, a] += 1
    return repaired


def repair_increments(failures: dict, transactions):
    """Failed-insertion repair as COO increments instead of matrix scatters.

    The same pair walk as :func:`repair_pair_counts_from_failures`, but the
    ``+1`` contributions are returned as upper-triangle ``(rows, cols,
    values)`` triplets (``rows <= cols``, diagonal included) so they can be
    folded into a :class:`~repro.core.results.SparseCountResult` without
    ever materialising the dense matrix.  Summing duplicates is the
    consumer's job (``add_entries`` coalesces).
    """
    rows: list[int] = []
    cols: list[int] = []
    for b, failed_items in failures.items():
        transaction = transactions[b]
        failed_set = set(int(a) for a in failed_items)
        items = (transaction.tolist() if isinstance(transaction, np.ndarray)
                 else list(transaction))
        for ai in range(len(items)):
            a = items[ai]
            for ci in range(ai + 1, len(items)):
                c = items[ci]
                if a in failed_set or c in failed_set:
                    rows.append(min(a, c))
                    cols.append(max(a, c))
        for a in failed_set:
            rows.append(a)
            cols.append(a)
    return (np.asarray(rows, dtype=np.int64),
            np.asarray(cols, dtype=np.int64),
            np.ones(len(rows), dtype=np.int64))


def repair_count_result(result, failures: dict, transactions):
    """Apply the failed-insertion repair to any :class:`CountResult`.

    Dense results route through the (oracle) matrix loop; sparse results
    fold :func:`repair_increments` in as COO entries.  Repair only ever
    *adds* support, and a tile skipped during counting had a bound that
    already covered the repaired support — so the pruning contract
    (``frequent_pairs`` exact at or above the floor) survives repair.
    """
    from repro.core.results import DenseCountResult, SparseCountResult

    if not failures:
        return result
    if isinstance(result, SparseCountResult):
        rows, cols, values = repair_increments(failures, transactions)
        return result.add_entries(rows, cols, values)
    if isinstance(result, DenseCountResult):
        result.counts = repair_pair_counts_from_failures(
            result.counts, failures, transactions)
        return result
    raise TypeError(
        f"cannot repair a {type(result).__name__}: top-k results must be "
        "derived after repair (rank order may change)")


def upper_triangle_pairs(counts: np.ndarray, min_support: int) -> dict[tuple[int, int], int]:
    """Extract ``{(i, j): support}`` for ``i < j`` with support >= ``min_support``."""
    if counts.ndim != 2 or counts.shape[0] != counts.shape[1]:
        raise ValueError("counts must be a square matrix")
    iu, ju = np.triu_indices(counts.shape[0], k=1)
    values = counts[iu, ju]
    keep = values >= min_support
    return {
        (int(i), int(j)): int(v)
        for i, j, v in zip(iu[keep], ju[keep], values[keep])
    }
