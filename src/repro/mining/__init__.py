"""The frequent pair / itemset mining pipeline built on batmaps.

* :func:`~repro.mining.preprocess.preprocess` — host-side batmap construction.
* :class:`~repro.mining.pair_mining.BatmapPairMiner` — the end-to-end pipeline
  (preprocess → device pair counting → repair/threshold).
* :class:`~repro.mining.itemsets.BatmapItemsetMiner` — levelwise extension to
  itemsets of arbitrary size.
* :mod:`~repro.mining.levelwise` — vectorised candidate-support counting over
  a packed transaction bitmap (the level >= 3 engine, serial or parallel).
* :mod:`~repro.mining.postprocess` — count reordering and failed-insertion repair.
* :mod:`~repro.mining.support` — result containers with phase timing.
"""

from repro.mining.itemsets import BatmapItemsetMiner, ItemsetMiningResult
from repro.mining.levelwise import (
    TransactionBitmap,
    count_candidate_supports,
    scan_supports,
)
from repro.mining.pair_mining import BatmapPairMiner
from repro.mining.postprocess import (
    reorder_counts,
    repair_pair_counts,
    repair_pair_counts_from_failures,
    upper_triangle_pairs,
)
from repro.mining.preprocess import (
    PreprocessedData,
    StreamedPreprocessedData,
    preprocess,
    preprocess_streaming,
)
from repro.mining.support import MiningReport, PairSupports

__all__ = [
    "BatmapPairMiner",
    "BatmapItemsetMiner",
    "ItemsetMiningResult",
    "TransactionBitmap",
    "count_candidate_supports",
    "scan_supports",
    "PreprocessedData",
    "preprocess",
    "StreamedPreprocessedData",
    "preprocess_streaming",
    "reorder_counts",
    "repair_pair_counts",
    "repair_pair_counts_from_failures",
    "upper_triangle_pairs",
    "MiningReport",
    "PairSupports",
]
