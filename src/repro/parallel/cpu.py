"""CPU-side batmap word comparison and its multi-core throughput model (Figure 11).

The paper's Figure 11 measures the memory throughput of the *CPU* version of
the batmap comparison (the same SWAR counting code, run over two 20 MB
arrays) on 1, 2, 4 and 8 cores, and finds that throughput saturates around 4
cores at ~7.6 GB/s — almost 5x below the 36.2 GB/s the GPU sustains.  The
point is that the comparison is memory-bound, so extra cores stop helping
once the socket's memory bandwidth is exhausted.

This module provides:

* :func:`measure_single_core_throughput` — an actual measurement of the SWAR
  comparison throughput of this Python/NumPy implementation (one core);
* :func:`model_multicore_throughput` — the bandwidth-saturation model
  ``min(cores * single_core, memory_bandwidth)`` used to extend the
  measurement to multiple cores (process-level parallelism would only
  measure the operating system, not the algorithm);
* :func:`cpu_throughput_series` — the Figure 11 series.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.swar import count_matches
from repro.gpu.device import XEON_5462, DeviceSpec
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require_positive

__all__ = [
    "CpuThroughputPoint",
    "measure_single_core_throughput",
    "model_multicore_throughput",
    "cpu_throughput_series",
]

#: bytes touched per word comparison: one 32-bit word from each operand
BYTES_PER_COMPARISON = 8


@dataclass(frozen=True)
class CpuThroughputPoint:
    """Throughput of the CPU batmap comparison at a given core count."""

    cores: int
    gbytes_per_second: float
    seconds: float
    modelled: bool


def measure_single_core_throughput(
    n_words: int = 5_000_000,
    repeats: int = 3,
    *,
    rng: RngLike = None,
) -> CpuThroughputPoint:
    """Measure the SWAR comparison throughput of one core on non-cache-resident data.

    Mirrors the paper's experiment: two arrays of ``n_words`` 32-bit integers
    (5,000,000 words = 20 MB each by default), compared ``repeats`` times.
    """
    require_positive(n_words, "n_words")
    require_positive(repeats, "repeats")
    rng = make_rng(rng)
    x = rng.integers(0, 2**32, size=n_words, dtype=np.uint32)
    y = rng.integers(0, 2**32, size=n_words, dtype=np.uint32)
    count_matches(x, y)  # warm-up (page in the arrays)
    start = time.perf_counter()
    for _ in range(repeats):
        count_matches(x, y)
    elapsed = time.perf_counter() - start
    total_bytes = repeats * n_words * BYTES_PER_COMPARISON
    return CpuThroughputPoint(
        cores=1,
        gbytes_per_second=total_bytes / elapsed / 1e9,
        seconds=elapsed,
        modelled=False,
    )


def model_multicore_throughput(
    single_core_gbps: float,
    cores: int,
    *,
    device: DeviceSpec = XEON_5462,
    parallel_efficiency: float = 0.95,
) -> float:
    """Throughput of ``cores`` cores under the memory-bandwidth saturation model.

    Per-core throughput scales almost linearly until the aggregate demand
    reaches the socket's memory bandwidth; beyond that point, extra cores
    only share the same bandwidth — which is exactly the plateau of Figure 11.
    """
    require_positive(single_core_gbps, "single_core_gbps")
    require_positive(cores, "cores")
    scaled = single_core_gbps * cores * parallel_efficiency ** (cores - 1)
    return float(min(scaled, device.memory_bandwidth_gbps * 0.6))


def cpu_throughput_series(
    core_counts=(1, 2, 4, 8),
    *,
    n_words: int = 2_000_000,
    device: DeviceSpec = XEON_5462,
    rng: RngLike = None,
) -> list[CpuThroughputPoint]:
    """The Figure 11 series: measured single-core point plus modelled multi-core points."""
    base = measure_single_core_throughput(n_words=n_words, rng=rng)
    out: list[CpuThroughputPoint] = []
    for cores in core_counts:
        if cores == 1:
            out.append(base)
            continue
        gbps = model_multicore_throughput(base.gbytes_per_second, cores, device=device)
        seconds = base.seconds * base.gbytes_per_second / gbps
        out.append(CpuThroughputPoint(cores=cores, gbytes_per_second=gbps,
                                      seconds=seconds, modelled=True))
    return out
