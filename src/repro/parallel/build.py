"""Multiprocess bulk construction: set-sharded building over shared memory.

The counterpart of :mod:`repro.parallel.executor` for the *construction*
phase.  Because bulk placement is per-set independent (claims never cross
sets — see :mod:`repro.core.bulk_build`), the collection can be split into
contiguous shards of width-sorted slots and each shard built by a worker
process with the very same round-based engine the in-process path uses; the
results are **bit-identical** to a single-process bulk build regardless of
the sharding.

Data movement mirrors the executor's discipline, reversed: there the parent
shares a read-only packed buffer and workers read; here the parent shares a
writable *entries* buffer — one slice per batmap, at offsets known before
any placement runs (``3 * r_k`` entries per set) — and workers write their
shard's encoded entries straight into it.  Only the input element arrays
(pickled once, with the hash family shipped once per worker through the
pool initializer) and the small per-set failure/stats metadata cross the
process boundary; the bulk of the output never does.

The pay-off floors live in the workload planner
(:func:`repro.core.plan.plan_build`): construction work per element is a
few vector operations, so the pool only wins on large collections; below
the floors the planner demotes to the in-process bulk engine.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.core.bulk_build import BulkBuiltSet, bulk_build_sets
from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.parallel.executor import (
    SharedDeviceBuffer,
    _attach_shared_memory,
    resolve_worker_count,
)
from repro.utils.validation import require

__all__ = ["SharedEntriesBuffer", "parallel_bulk_build_sets"]


class SharedEntriesBuffer(SharedDeviceBuffer):
    """A writable shared segment sized for every batmap's entries.

    Reuses the executor's naming/unlink lifecycle (same ``repro-batmap-``
    prefix, same finalizer safety net) but starts zero-filled instead of
    copying an existing buffer: workers fill their slices, the parent reads
    the result back once.
    """

    def __init__(self, n_items: int, dtype: np.dtype) -> None:
        # Allocate through the parent class with a zero seed array of the
        # right byte size; entry dtypes are 8/16/32-bit unsigned, all of
        # which tile exactly into the uint32 words the base class stores.
        itemsize = np.dtype(dtype).itemsize
        n_words = max(1, -(-n_items * itemsize // 4))
        super().__init__(np.zeros(n_words, dtype=np.uint32))
        self.n_items = int(n_items)
        self.dtype = np.dtype(dtype)

    def view(self) -> np.ndarray:
        return np.frombuffer(self._shm.buf, dtype=self.dtype,
                             count=self.n_items)


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
_build_state = None


def _init_build_worker(name, n_items, dtype_str, family, config) -> None:
    """Attach the shared entries buffer and stash the per-worker context."""
    global _build_state
    shm = _attach_shared_memory(name)
    view = np.frombuffer(shm.buf, dtype=np.dtype(dtype_str), count=n_items)
    _build_state = (shm, view, family, config)


def _build_shard(sets, rs, offsets) -> list:
    """Build one shard of sets; write entries into the shared buffer.

    Returns only the small per-set metadata ``(r, failed, stats)`` — the
    encoded entries travel through shared memory.
    """
    _, view, family, config = _build_state
    built = bulk_build_sets(sets, rs, family, config)
    meta = []
    for b, offset in zip(built, offsets):
        view[int(offset):int(offset) + b.entries.size] = b.entries.reshape(-1)
        meta.append((b.r, b.failed, b.stats))
    return meta


# --------------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------------- #
def _shard_bounds(lengths: np.ndarray, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous slot ranges with roughly equal element totals per shard."""
    total = int(lengths.sum())
    cumulative = np.cumsum(lengths)
    bounds = []
    start = 0
    for shard in range(1, n_shards + 1):
        stop = int(np.searchsorted(cumulative, shard * total / n_shards,
                                   side="right"))
        stop = max(stop, start)
        if shard == n_shards:
            stop = int(lengths.size)
        if stop > start:
            bounds.append((start, stop))
        start = stop
    return bounds or [(0, int(lengths.size))]


def parallel_bulk_build_sets(
    sets: list[np.ndarray],
    rs: list[int],
    family,
    config: BatmapConfig = DEFAULT_CONFIG,
    *,
    workers: int | None = None,
    mp_context=None,
) -> list[BulkBuiltSet]:
    """Build every set with the bulk engine across a process pool.

    ``sets`` are sorted, deduplicated element arrays and ``rs[k]`` the hash
    range of ``sets[k]`` (the same contract as
    :func:`~repro.core.bulk_build.bulk_build_sets`, whose results this
    matches bit for bit).  The pool is torn down and the shared segment
    unlinked before returning, on success and on every error path.
    """
    require(len(sets) == len(rs), "sets and rs must have the same length")
    require(len(sets) > 0, "cannot build an empty collection")
    n_workers = resolve_worker_count(workers)
    entry_counts = np.array([3 * int(r) for r in rs], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(entry_counts)[:-1]]).astype(np.int64)
    total = int(entry_counts.sum())
    lengths = np.array([s.size for s in sets], dtype=np.int64)
    # ~2 shards per worker so an unlucky heavy shard cannot serialise the end.
    bounds = _shard_bounds(lengths, 2 * n_workers)

    dtype = config.entry_dtype
    with SharedEntriesBuffer(total, dtype) as shared:
        ctx = mp_context or multiprocessing.get_context()
        with ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=ctx,
            initializer=_init_build_worker,
            initargs=(shared.name, total, dtype.str, family, config),
        ) as pool:
            futures = [
                pool.submit(_build_shard, sets[lo:hi], rs[lo:hi],
                            offsets[lo:hi])
                for lo, hi in bounds
            ]
            metas: list = []
            try:
                for future in futures:
                    metas.extend(future.result())
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        # One copy out of the segment; per-set entries are views into it.
        all_entries = shared.view().copy()

    built = []
    for k, (r, failed, stats) in enumerate(metas):
        entries = all_entries[int(offsets[k]):int(offsets[k]) + 3 * r]
        built.append(BulkBuiltSet(r=int(r), entries=entries.reshape(3, r),
                                  failed=tuple(failed), stats=stats))
    return built
