"""Shard-aware tile scheduling: stream shard-pair rectangles through the counters.

The multiprocess executor (:mod:`repro.parallel.executor`) fans tiles of one
in-memory packed buffer out over shared memory.  This module is its
out-of-core counterpart for a :class:`~repro.core.sharded.ShardedCollection`:
the ``n x n`` pair space decomposes into shard-pair rectangles (upper
triangle of shard pairs only, by symmetry), each rectangle is tiled, and
every tile is answered by the very same width-class SWAR engine — serially
with at most two shards attached, or across a process pool whose workers
re-attach spilled shards by **memory mapping** (the page cache plays the
role the shared-memory segment plays for the in-memory executor).  Counts
are bit-identical to both in-memory engines on every workload.

Backend choice routes through the workload planner
(:func:`repro.core.plan.plan_counts`): small collections or single-core
hosts stay serial, everything else fans out — the same policy every other
integration point shares.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np

from repro.core.batch import DEFAULT_BLOCK_WORDS, WidthClassIndex
from repro.core.plan import PlanFeatures, plan_counts
from repro.kernels.tiling import TileScheduler
from repro.parallel.executor import DEFAULT_TILE_CAP, resolve_worker_count
from repro.parallel.scaling import merge_part_counts
from repro.utils.validation import require, require_positive

__all__ = [
    "WORKER_SHARD_CACHE",
    "block_words_for_budget",
    "ShardedPairCounter",
]

#: Shards a pool worker keeps attached at once.  Memory-mapped attachments
#: are cheap to reopen (the pages stay in the OS cache), so a small cache
#: only avoids re-parsing the ``.npy`` headers and rebuilding the
#: width-class metadata between consecutive tiles of one rectangle.
WORKER_SHARD_CACHE = 3


def block_words_for_budget(memory_budget=None) -> int:
    """SWAR block budget honouring a resident-set ceiling.

    The broadcast comparison keeps a handful of ``block_words``-sized uint64
    temporaries alive; dividing the budget by 128 keeps their total around a
    quarter of the ceiling.  Without a budget the cache-sized default
    applies unchanged.
    """
    if memory_budget is None:
        return DEFAULT_BLOCK_WORDS
    require_positive(memory_budget, "memory_budget")
    return int(min(DEFAULT_BLOCK_WORDS, max(1 << 12, memory_budget // 128)))


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
_worker_spill_dir = None
_worker_block_words = DEFAULT_BLOCK_WORDS
_worker_indexes: dict = {}


def _init_sharded_worker(spill_dir: str, block_words: int) -> None:
    global _worker_spill_dir, _worker_block_words, _worker_indexes
    _worker_spill_dir = Path(spill_dir)
    _worker_block_words = int(block_words)
    _worker_indexes = {}


def _worker_index_for(shard_dir: str) -> WidthClassIndex:
    """Attach (or reuse) one spilled shard inside a pool worker."""
    index = _worker_indexes.get(shard_dir)
    if index is None:
        directory = _worker_spill_dir / shard_dir
        index = WidthClassIndex(
            np.load(directory / "words.npy", mmap_mode="r"),
            np.load(directory / "offsets.npy"),
            np.load(directory / "widths.npy"),
            block_words=_worker_block_words,
        )
        if len(_worker_indexes) >= WORKER_SHARD_CACHE:
            _worker_indexes.pop(next(iter(_worker_indexes)))
        _worker_indexes[shard_dir] = index
    return index


def _sharded_tile(p, q, dir_p, dir_q, row_lo, row_hi, col_lo, col_hi) -> dict:
    """One tile of the (shard p) x (shard q) rectangle, keyed for the merge."""
    idx_p = _worker_index_for(dir_p)
    rows = np.arange(row_lo, row_hi)
    cols = np.arange(col_lo, col_hi)
    if p == q:
        block = idx_p.cross_slots(rows, cols)
    else:
        block = idx_p.cross_index(_worker_index_for(dir_q), rows, cols)
    return {(p, q, row_lo, col_lo): block}


# --------------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------------- #
class ShardedPairCounter:
    """All-pairs counting over a spilled :class:`ShardedCollection`.

    ``compute`` mirrors the collection API: ``"batch"`` streams shard pairs
    serially with at most two shards attached; ``"parallel"`` fans tiles to
    a process pool (falling back to serial below the pool pay-off floor);
    ``"auto"`` asks the workload planner.  ``memory_budget`` additionally
    shrinks the SWAR block budget so counting temporaries respect the same
    ceiling the shards were sized for.
    """

    def __init__(
        self,
        sharded,
        *,
        compute: str = "auto",
        workers=None,
        tile_size=None,
        memory_budget=None,
        mp_context=None,
    ) -> None:
        require(compute in ("auto", "batch", "host", "parallel"),
                f"compute must be 'auto', 'batch', 'host' or 'parallel', got {compute!r}")
        require(sharded.n_shards > 0, "cannot count an empty sharded collection")
        if tile_size is not None:
            require_positive(tile_size, "tile_size")
        self.sharded = sharded
        self.workers = resolve_worker_count(workers)
        self.tile_size = tile_size
        if memory_budget is not None:
            # The dense result matrix is resident throughout counting; only
            # the remainder bounds the SWAR temporaries.
            memory_budget = max(1, memory_budget - 8 * sharded.n_physical_sets ** 2)
        self.block_words = block_words_for_budget(memory_budget)
        self._mp_context = mp_context
        requested = {"auto": "auto", "host": "batch", "batch": "batch",
                     "parallel": "parallel"}[compute]
        features = PlanFeatures(
            n_sets=sharded.n_physical_sets,
            total_words=sharded.total_words,
            r0=sharded.r0,
            byte_entries=True,
            n_shards=sharded.n_shards,
        )
        self.plan = plan_counts(features, requested=requested, workers=workers)

    # ------------------------------------------------------------------ #
    def _tile_edge(self) -> int:
        if self.tile_size is not None:
            return self.tile_size
        largest = max(shard.n_sets for shard in self.sharded.shards)
        return max(32, min(DEFAULT_TILE_CAP, largest))

    def counts(self) -> np.ndarray:
        """Dense count matrix over the *live* sets, in live index order.

        Tiles are computed in physical (storage) space — tombstones never
        change a stored row, so per-tile work is untouched — and the final
        matrix drops tombstoned rows/columns, matching a from-scratch build
        over only the live sets bit for bit.
        """
        if self.plan.backend == "parallel":
            out = self._counts_parallel()
        else:
            out = self._counts_serial()
        tombstones = getattr(self.sharded, "tombstones", None)
        if tombstones is not None and tombstones.size:
            live = self.sharded.live_ids
            out = out[np.ix_(live, live)]
        return out

    def _counts_serial(self) -> np.ndarray:
        n = self.sharded.n_physical_sets
        shards = self.sharded.shards
        out = np.zeros((n, n), dtype=np.int64)
        for p in range(len(shards)):
            idx_p = self.sharded.attach(p, block_words=self.block_words)
            rows_global = shards[p].global_order
            out[np.ix_(rows_global, rows_global)] = idx_p.all_pairs()
            for q in range(p + 1, len(shards)):
                idx_q = self.sharded.attach(q, block_words=self.block_words)
                rect = idx_p.cross_index(idx_q)
                cols_global = shards[q].global_order
                out[np.ix_(rows_global, cols_global)] = rect
                out[np.ix_(cols_global, rows_global)] = rect.T
                del idx_q
            del idx_p
        return out

    def _counts_parallel(self) -> np.ndarray:
        n = self.sharded.n_physical_sets
        shards = self.sharded.shards
        edge = self._tile_edge()
        tasks = []
        for p in range(len(shards)):
            dir_p = shards[p].directory.name
            for q in range(p, len(shards)):
                dir_q = shards[q].directory.name
                if p == q:
                    for t in TileScheduler(shards[p].n_sets, edge):
                        tasks.append((p, q, dir_p, dir_q, t.row_start, t.row_end,
                                      t.col_start, t.col_end))
                else:
                    for r_lo in range(0, shards[p].n_sets, edge):
                        r_hi = min(r_lo + edge, shards[p].n_sets)
                        for c_lo in range(0, shards[q].n_sets, edge):
                            c_hi = min(c_lo + edge, shards[q].n_sets)
                            tasks.append((p, q, dir_p, dir_q, r_lo, r_hi, c_lo, c_hi))
        ctx = self._mp_context or multiprocessing.get_context()
        with ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=_init_sharded_worker,
            initargs=(str(self.sharded.spill_dir), self.block_words),
        ) as pool:
            futures = [pool.submit(_sharded_tile, *task) for task in tasks]
            try:
                parts = [future.result() for future in futures]
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        merged = merge_part_counts(parts)
        out = np.zeros((n, n), dtype=np.int64)
        for (p, q, row_lo, col_lo), block in merged.items():
            rows_global = shards[p].global_order[row_lo:row_lo + block.shape[0]]
            cols_global = shards[q].global_order[col_lo:col_lo + block.shape[1]]
            out[np.ix_(rows_global, cols_global)] = block
            out[np.ix_(cols_global, rows_global)] = block.T
        return out
