"""Shard-aware tile scheduling: stream shard-pair rectangles through the counters.

The multiprocess executor (:mod:`repro.parallel.executor`) fans tiles of one
in-memory packed buffer out over shared memory.  This module is its
out-of-core counterpart for a :class:`~repro.core.sharded.ShardedCollection`:
the ``n x n`` pair space decomposes into shard-pair rectangles (upper
triangle of shard pairs only, by symmetry), each rectangle is tiled, and
every tile is answered by the very same width-class SWAR engine — serially
with at most two shards attached, or across a process pool whose workers
re-attach spilled shards by **memory mapping** (the page cache plays the
role the shared-memory segment plays for the in-memory executor).  Counts
are bit-identical to both in-memory engines on every workload.

Backend choice routes through the workload planner
(:func:`repro.core.plan.plan_counts`): small collections or single-core
hosts stay serial, everything else fans out — the same policy every other
integration point shares.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np

from repro.core.batch import (
    DEFAULT_BLOCK_WORDS,
    SPARSE_TILE_ENTRIES,
    WidthClassIndex,
    sparse_all_pairs,
    sparse_cross,
    width_slot_bounds,
)
from repro.core.plan import PlanFeatures, plan_counts, resolve_result_format
from repro.core.results import DenseCountResult, SparseAccumulator, TopKAccumulator
from repro.kernels.tiling import TileScheduler
from repro.parallel.executor import DEFAULT_TILE_CAP, resolve_worker_count
from repro.parallel.scaling import merge_part_counts
from repro.utils.validation import require, require_positive

__all__ = [
    "WORKER_SHARD_CACHE",
    "block_words_for_budget",
    "ShardedPairCounter",
]

#: Shards a pool worker keeps attached at once.  Memory-mapped attachments
#: are cheap to reopen (the pages stay in the OS cache), so a small cache
#: only avoids re-parsing the ``.npy`` headers and rebuilding the
#: width-class metadata between consecutive tiles of one rectangle.
WORKER_SHARD_CACHE = 3


def block_words_for_budget(memory_budget=None) -> int:
    """SWAR block budget honouring a resident-set ceiling.

    The broadcast comparison keeps a handful of ``block_words``-sized uint64
    temporaries alive; dividing the budget by 128 keeps their total around a
    quarter of the ceiling.  Without a budget the cache-sized default
    applies unchanged.
    """
    if memory_budget is None:
        return DEFAULT_BLOCK_WORDS
    require_positive(memory_budget, "memory_budget")
    return int(min(DEFAULT_BLOCK_WORDS, max(1 << 12, memory_budget // 128)))


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
_worker_spill_dir = None
_worker_block_words = DEFAULT_BLOCK_WORDS
_worker_indexes: dict = {}


def _init_sharded_worker(spill_dir: str, block_words: int) -> None:
    global _worker_spill_dir, _worker_block_words, _worker_indexes
    _worker_spill_dir = Path(spill_dir)
    _worker_block_words = int(block_words)
    _worker_indexes = {}


def _worker_index_for(shard_dir: str) -> WidthClassIndex:
    """Attach (or reuse) one spilled shard inside a pool worker."""
    index = _worker_indexes.get(shard_dir)
    if index is None:
        directory = _worker_spill_dir / shard_dir
        index = WidthClassIndex(
            np.load(directory / "words.npy", mmap_mode="r"),
            np.load(directory / "offsets.npy"),
            np.load(directory / "widths.npy"),
            block_words=_worker_block_words,
        )
        if len(_worker_indexes) >= WORKER_SHARD_CACHE:
            _worker_indexes.pop(next(iter(_worker_indexes)))
        _worker_indexes[shard_dir] = index
    return index


def _sharded_tile(p, q, dir_p, dir_q, row_lo, row_hi, col_lo, col_hi) -> dict:
    """One tile of the (shard p) x (shard q) rectangle, keyed for the merge."""
    idx_p = _worker_index_for(dir_p)
    rows = np.arange(row_lo, row_hi)
    cols = np.arange(col_lo, col_hi)
    if p == q:
        block = idx_p.cross_slots(rows, cols)
    else:
        block = idx_p.cross_index(_worker_index_for(dir_q), rows, cols)
    return {(p, q, row_lo, col_lo): block}


# --------------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------------- #
class ShardedPairCounter:
    """All-pairs counting over a spilled :class:`ShardedCollection`.

    ``compute`` mirrors the collection API: ``"batch"`` streams shard pairs
    serially with at most two shards attached; ``"parallel"`` fans tiles to
    a process pool (falling back to serial below the pool pay-off floor);
    ``"auto"`` asks the workload planner.  ``memory_budget`` additionally
    shrinks the SWAR block budget so counting temporaries respect the same
    ceiling the shards were sized for.
    """

    def __init__(
        self,
        sharded,
        *,
        compute: str = "auto",
        workers=None,
        tile_size=None,
        memory_budget=None,
        mp_context=None,
        result_format: str = "dense",
        min_support: int = 0,
    ) -> None:
        require(compute in ("auto", "batch", "host", "parallel"),
                f"compute must be 'auto', 'batch', 'host' or 'parallel', got {compute!r}")
        require(sharded.n_shards > 0, "cannot count an empty sharded collection")
        require(min_support >= 0, f"min_support must be >= 0, got {min_support}")
        if tile_size is not None:
            require_positive(tile_size, "tile_size")
        self.sharded = sharded
        self.workers = resolve_worker_count(workers)
        self.tile_size = tile_size
        self.result_format = resolve_result_format(
            result_format, sharded.n_physical_sets, memory_budget)
        self.min_support = int(min_support)
        if memory_budget is not None and self.result_format == "dense":
            # The dense result matrix is resident throughout counting; only
            # the remainder bounds the SWAR temporaries.  A sparse result
            # keeps only surviving nonzeros, so the full budget stays
            # available for counting temporaries.
            memory_budget = max(1, memory_budget - 8 * sharded.n_physical_sets ** 2)
        self.block_words = block_words_for_budget(memory_budget)
        self._mp_context = mp_context
        requested = {"auto": "auto", "host": "batch", "batch": "batch",
                     "parallel": "parallel"}[compute]
        features = PlanFeatures(
            n_sets=sharded.n_physical_sets,
            total_words=sharded.total_words,
            r0=sharded.r0,
            byte_entries=True,
            n_shards=sharded.n_shards,
            result_format=self.result_format,
            min_support=self.min_support,
        )
        self.plan = plan_counts(features, requested=requested, workers=workers)

    # ------------------------------------------------------------------ #
    def _tile_edge(self) -> int:
        if self.tile_size is not None:
            return self.tile_size
        largest = max(shard.n_sets for shard in self.sharded.shards)
        return max(32, min(DEFAULT_TILE_CAP, largest))

    def counts(self) -> np.ndarray:
        """Dense count matrix over the *live* sets, in live index order.

        Tiles are computed in physical (storage) space — tombstones never
        change a stored row, so per-tile work is untouched — and the final
        matrix drops tombstoned rows/columns, matching a from-scratch build
        over only the live sets bit for bit.
        """
        if self.plan.backend == "parallel":
            out = self._counts_parallel()
        else:
            out = self._counts_serial()
        tombstones = getattr(self.sharded, "tombstones", None)
        if tombstones is not None and tombstones.size:
            live = self.sharded.live_ids
            out = out[np.ix_(live, live)]
        return out

    def _counts_serial(self) -> np.ndarray:
        n = self.sharded.n_physical_sets
        shards = self.sharded.shards
        out = np.zeros((n, n), dtype=np.int64)
        for p in range(len(shards)):
            idx_p = self.sharded.attach(p, block_words=self.block_words)
            rows_global = shards[p].global_order
            out[np.ix_(rows_global, rows_global)] = idx_p.all_pairs()
            for q in range(p + 1, len(shards)):
                idx_q = self.sharded.attach(q, block_words=self.block_words)
                rect = idx_p.cross_index(idx_q)
                cols_global = shards[q].global_order
                out[np.ix_(rows_global, cols_global)] = rect
                out[np.ix_(cols_global, rows_global)] = rect.T
                del idx_q
            del idx_p
        return out

    def _counts_parallel(self) -> np.ndarray:
        n = self.sharded.n_physical_sets
        shards = self.sharded.shards
        edge = self._tile_edge()
        tasks = []
        for p in range(len(shards)):
            dir_p = shards[p].directory.name
            for q in range(p, len(shards)):
                dir_q = shards[q].directory.name
                if p == q:
                    for t in TileScheduler(shards[p].n_sets, edge):
                        tasks.append((p, q, dir_p, dir_q, t.row_start, t.row_end,
                                      t.col_start, t.col_end))
                else:
                    for r_lo in range(0, shards[p].n_sets, edge):
                        r_hi = min(r_lo + edge, shards[p].n_sets)
                        for c_lo in range(0, shards[q].n_sets, edge):
                            c_hi = min(c_lo + edge, shards[q].n_sets)
                            tasks.append((p, q, dir_p, dir_q, r_lo, r_hi, c_lo, c_hi))
        ctx = self._mp_context or multiprocessing.get_context()
        with ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=_init_sharded_worker,
            initargs=(str(self.sharded.spill_dir), self.block_words),
        ) as pool:
            futures = [pool.submit(_sharded_tile, *task) for task in tasks]
            try:
                parts = [future.result() for future in futures]
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        merged = merge_part_counts(parts)
        out = np.zeros((n, n), dtype=np.int64)
        for (p, q, row_lo, col_lo), block in merged.items():
            rows_global = shards[p].global_order[row_lo:row_lo + block.shape[0]]
            cols_global = shards[q].global_order[col_lo:col_lo + block.shape[1]]
            out[np.ix_(rows_global, cols_global)] = block
            out[np.ix_(cols_global, rows_global)] = block.T
        return out

    # ------------------------------------------------------------------ #
    # CountResult-producing queries (sparse / pruned / top-k)
    # ------------------------------------------------------------------ #
    def shard_slot_bounds(self, bounds=None) -> list:
        """Per-shard, slot-indexed count upper bounds (tombstoned slots zeroed).

        ``bounds`` — when the caller knows exact post-repair set sizes (the
        miner's item supports) — is indexed by *physical* set id; without it
        the bound falls back to the packed widths plus the per-set failed
        counts (:func:`~repro.core.batch.width_slot_bounds`), which only
        needs the mmap'd layout arrays.  Tombstoned slots get a zero bound:
        their entries are dropped from the result anyway, so zeroing lets
        whole tiles of deleted sets prune away.
        """
        live_pos = self.sharded.live_positions
        per_shard = []
        for shard in self.sharded.shards:
            if bounds is not None:
                b = np.asarray(bounds, dtype=np.int64)[shard.global_order]
            else:
                widths = np.load(shard.directory / "widths.npy")
                failed_local = np.bincount(
                    np.asarray(shard.failed, dtype=np.int64).reshape(-1, 2)[:, 1],
                    minlength=shard.n_sets)
                b = width_slot_bounds(widths, failed_local[shard.order])
            b = b.copy()
            b[live_pos[shard.global_order] < 0] = 0
            per_shard.append(b)
        return per_shard

    def count_result(self, *, min_support=None, top_k=None, bounds=None,
                     tile_entries: int = SPARSE_TILE_ENTRIES):
        """All-pairs counts as a :class:`~repro.core.results.CountResult`.

        The dense format wraps :meth:`counts` unchanged (the oracle path).
        Sparse and top-k results never materialise the ``n x n`` matrix:
        shard-pair rectangles stream through the pruned tile walkers
        (:func:`~repro.core.batch.sparse_all_pairs` within a shard,
        :func:`~repro.core.batch.sparse_cross` across shards) serially, or
        — when the plan says ``parallel`` — tiles below the bound are
        dropped *before* submission to the pool and surviving blocks reduce
        straight into the COO/heap accumulator.  Results are expressed in
        live indices (tombstoned sets dropped), bit-identical to filtering
        :meth:`counts`.
        """
        ms = self.min_support if min_support is None else int(min_support)
        require(ms >= 0, f"min_support must be >= 0, got {ms}")
        if top_k is not None:
            require_positive(top_k, "top_k")
        if top_k is None and self.result_format == "dense":
            return DenseCountResult(self.counts())
        live_pos = self.sharded.live_positions
        n_live = self.sharded.n_sets
        shard_bounds = self.shard_slot_bounds(bounds)

        if top_k is not None:
            acc = TopKAccumulator(top_k)

            def threshold():
                return max(ms, acc.floor)
        else:
            acc = SparseAccumulator(n_live, min_support=ms)

            def threshold():
                return ms

        def consume_factory(row_order, col_order):
            """Tile sink mapping slot axes -> physical -> live indices."""

            def consume(rows, cols, block):
                li = live_pos[row_order[rows]]
                lj = live_pos[col_order[cols]]
                keep_r = li >= 0
                keep_c = lj >= 0
                if not (keep_r.all() and keep_c.all()):
                    block = block[np.ix_(keep_r, keep_c)]
                    li, lj = li[keep_r], lj[keep_c]
                if top_k is None:
                    acc.add_block(li, lj, block)
                    return
                floor = max(1, ms, acc.floor)
                r_l, c_l = np.nonzero(block >= floor)
                if r_l.size == 0:
                    return
                oi, oj = li[r_l], lj[c_l]
                keep = oi != oj
                if not keep.any():
                    return
                acc.push(np.minimum(oi[keep], oj[keep]),
                         np.maximum(oi[keep], oj[keep]),
                         block[r_l, c_l][keep])

            return consume

        stats = {"tiles_total": 0, "tiles_skipped": 0}
        if self.plan.backend == "parallel":
            self._sparse_parallel(consume_factory, shard_bounds,
                                  max(1, ms) if top_k is not None else ms, stats)
        else:
            self._sparse_serial(consume_factory, shard_bounds, threshold,
                                tile_entries, stats)
        if top_k is not None:
            return acc.result(n_live, min_support=ms, stats=stats,
                              fill_zeros=ms <= 1)
        acc.tiles_total = stats["tiles_total"]
        acc.tiles_skipped = stats["tiles_skipped"]
        return acc.finalize()

    def _sparse_serial(self, consume_factory, shard_bounds, threshold,
                       tile_entries, stats) -> None:
        """Stream shard-pair rectangles through the pruned tile walkers."""
        shards = self.sharded.shards
        for p in range(len(shards)):
            idx_p = self.sharded.attach(p, block_words=self.block_words)
            go_p = shards[p].global_order
            part = sparse_all_pairs(
                idx_p, consume=consume_factory(go_p, go_p),
                bounds=shard_bounds[p], threshold=threshold,
                tile_entries=tile_entries)
            stats["tiles_total"] += part["tiles_total"]
            stats["tiles_skipped"] += part["tiles_skipped"]
            for q in range(p + 1, len(shards)):
                idx_q = self.sharded.attach(q, block_words=self.block_words)
                part = sparse_cross(
                    idx_p, idx_q,
                    consume=consume_factory(go_p, shards[q].global_order),
                    row_bounds=shard_bounds[p], col_bounds=shard_bounds[q],
                    threshold=threshold, tile_entries=tile_entries)
                stats["tiles_total"] += part["tiles_total"]
                stats["tiles_skipped"] += part["tiles_skipped"]
                del idx_q
            del idx_p

    def _sparse_parallel(self, consume_factory, shard_bounds, floor,
                         stats) -> None:
        """Fan surviving tiles to the pool; reduce blocks into the sink.

        Pruning happens parent-side against the static ``floor`` (the heap's
        running floor is unknown before any tile returns), so a skipped tile
        costs neither a pickle round-trip nor any worker SWAR.
        """
        shards = self.sharded.shards
        edge = self._tile_edge()
        tasks = []

        def keep(p, q, r_lo, r_hi, c_lo, c_hi) -> bool:
            stats["tiles_total"] += 1
            if floor > 0:
                bound = min(int(shard_bounds[p][r_lo:r_hi].max()),
                            int(shard_bounds[q][c_lo:c_hi].max()))
                if bound < floor:
                    stats["tiles_skipped"] += 1
                    return False
            return True

        for p in range(len(shards)):
            dir_p = shards[p].directory.name
            for q in range(p, len(shards)):
                dir_q = shards[q].directory.name
                if p == q:
                    for t in TileScheduler(shards[p].n_sets, edge):
                        if keep(p, q, t.row_start, t.row_end,
                                t.col_start, t.col_end):
                            tasks.append((p, q, dir_p, dir_q, t.row_start,
                                          t.row_end, t.col_start, t.col_end))
                else:
                    for r_lo in range(0, shards[p].n_sets, edge):
                        r_hi = min(r_lo + edge, shards[p].n_sets)
                        for c_lo in range(0, shards[q].n_sets, edge):
                            c_hi = min(c_lo + edge, shards[q].n_sets)
                            if keep(p, q, r_lo, r_hi, c_lo, c_hi):
                                tasks.append((p, q, dir_p, dir_q,
                                              r_lo, r_hi, c_lo, c_hi))
        if not tasks:
            return
        ctx = self._mp_context or multiprocessing.get_context()
        with ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=_init_sharded_worker,
            initargs=(str(self.sharded.spill_dir), self.block_words),
        ) as pool:
            futures = [pool.submit(_sharded_tile, *task) for task in tasks]
            try:
                parts = [future.result() for future in futures]
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        for part in parts:
            for (p, q, row_lo, col_lo), block in part.items():
                rows = np.arange(row_lo, row_lo + block.shape[0])
                cols = np.arange(col_lo, col_lo + block.shape[1])
                if p == q and row_lo == col_lo:
                    # diagonal tile of a within-shard rectangle: keep the
                    # slot-space upper triangle so each unordered pair
                    # reaches the sink exactly once
                    block = np.where(rows[:, None] <= cols[None, :], block, 0)
                consume_factory(shards[p].global_order,
                                shards[q].global_order)(rows, cols, block)
