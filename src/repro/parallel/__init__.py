"""CPU parallelism: throughput / scaling models and the real multiprocess executor.

Two simulated models reproduce the paper's figures — multi-core SWAR
throughput (Fig. 11) and split scaling (Fig. 9) — while
:mod:`repro.parallel.executor` runs tiled pair counting for real across a
process pool over one shared-memory device buffer.
"""

from repro.parallel.cpu import (
    CpuThroughputPoint,
    cpu_throughput_series,
    measure_single_core_throughput,
    model_multicore_throughput,
)
from repro.parallel.executor import (
    ParallelPairCounter,
    SharedDeviceBuffer,
    auto_tile_edge,
    measure_executor_scaling,
    recommended_backend,
    resolve_worker_count,
)
from repro.parallel.sharded import ShardedPairCounter
from repro.parallel.scaling import (
    ScalingPoint,
    measure_split_scaling,
    merge_part_counts,
    relative_speedups,
)

__all__ = [
    "CpuThroughputPoint",
    "measure_single_core_throughput",
    "model_multicore_throughput",
    "cpu_throughput_series",
    "ScalingPoint",
    "measure_split_scaling",
    "merge_part_counts",
    "relative_speedups",
    "ParallelPairCounter",
    "ShardedPairCounter",
    "SharedDeviceBuffer",
    "auto_tile_edge",
    "measure_executor_scaling",
    "recommended_backend",
    "resolve_worker_count",
]
