"""CPU parallelism models: multi-core SWAR throughput (Fig. 11) and split scaling (Fig. 9)."""

from repro.parallel.cpu import (
    CpuThroughputPoint,
    cpu_throughput_series,
    measure_single_core_throughput,
    model_multicore_throughput,
)
from repro.parallel.scaling import ScalingPoint, measure_split_scaling, relative_speedups

__all__ = [
    "CpuThroughputPoint",
    "measure_single_core_throughput",
    "model_multicore_throughput",
    "cpu_throughput_series",
    "ScalingPoint",
    "measure_split_scaling",
    "relative_speedups",
]
