"""Real multiprocess pair counting over a shared-memory device buffer.

Everything else in :mod:`repro.parallel` *models* parallel execution (the
split-and-max methodology of Figure 9, the bandwidth-saturation model of
Figure 11).  This module actually runs it: the packed ``uint32`` device
buffer a :class:`~repro.core.collection.BatmapCollection` builds for the GPU
simulator is placed in ``multiprocessing.shared_memory``, the ``n x n`` pair
space is partitioned into the same upper-triangle tiles the device schedule
uses (:class:`~repro.kernels.tiling.TileScheduler`), and a pool of worker
processes re-attaches the buffer **zero-copy** and counts one tile per task
with the width-class SWAR engine (:class:`~repro.core.batch.WidthClassIndex`).

Per-task results are *per-tile count dicts* — ``{tile_key: count_block}`` —
and the parent folds them into one table with the same serial reduction the
Figure 9 simulation measures (:func:`~repro.parallel.scaling.merge_part_counts`)
before scattering the blocks into the dense result matrix.  Because every
tile is computed by the very same engine the serial batch path uses, the
parallel counts are bit-identical to ``compute="batch"`` on every workload
(all-pairs, explicit pair lists, cross rectangles).

Lifecycle / safety:

* :class:`ParallelPairCounter` is a context manager; ``close()`` (and hence
  ``__exit__``) shuts the pool down and **unlinks** the shared segment even
  when a worker died or a query raised, so no ``/dev/shm`` residue survives
  a failure;
* a ``weakref.finalize`` safety net unlinks the segment at garbage
  collection / interpreter exit if a caller never closed the counter;
* workers attach without taking ``multiprocessing.resource_tracker``
  ownership (``track=False`` on Python 3.13+), so the parent's ``unlink``
  stays the segment's single owner and no "leaked shared_memory" warnings
  are emitted at shutdown.

Small inputs are not worth a process pool: :func:`recommended_backend`
implements the fallback policy (``"batch"`` below a size floor or when only
one worker is available) that the kernel driver, the miner, the collection
API and the CLI all share.
"""

from __future__ import annotations

import multiprocessing
import os
import secrets
import time
import weakref
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.core.batch import DEFAULT_BLOCK_WORDS, BatchPairCounter, WidthClassIndex
from repro.core.results import DenseCountResult, SparseAccumulator, TopKAccumulator
from repro.kernels.tiling import TileScheduler
from repro.parallel.scaling import ScalingPoint, merge_part_counts
from repro.utils.validation import require, require_positive

__all__ = [
    "SHM_PREFIX",
    "PARALLEL_MIN_SETS",
    "MAX_AUTO_WORKERS",
    "DEFAULT_TILE_CAP",
    "SharedDeviceBuffer",
    "ParallelPairCounter",
    "auto_tile_edge",
    "resolve_worker_count",
    "recommended_backend",
    "measure_executor_scaling",
]

#: Prefix of every shared-memory segment the executor creates; the leak
#: regression tests scan ``/dev/shm`` for it.
SHM_PREFIX = "repro-batmap-"

#: Below this many sets the pool/segment setup dominates the counting work
#: and the serial batch engine wins; :func:`recommended_backend` falls back.
PARALLEL_MIN_SETS = 256

#: Auto-selected worker counts are capped here: the pair-count kernel is
#: memory-bound, so (exactly as Figure 11 measures for the CPU SWAR loop)
#: throughput saturates within a socket long before high core counts.
MAX_AUTO_WORKERS = 8

#: Upper bound on the auto-selected tile edge.  Small tiles keep the
#: broadcast SWAR temporaries cache-resident: on the E12 instance a 128-wide
#: tile counts ~3x faster than a 400-wide one, so auto-tiling never exceeds
#: this even when few workers would allow larger tiles.
DEFAULT_TILE_CAP = 128


def auto_tile_edge(n: int, workers: int) -> int:
    """Auto-selected tile side: ~2 tile rows per worker, cache-capped.

    The single source of the tiling policy — the executor's per-query
    default and the measured-scaling benchmark (which pins one edge across
    worker counts) must agree, or recorded speed-up curves would measure a
    different blocking than production uses.
    """
    return max(32, min(DEFAULT_TILE_CAP, -(-n // (2 * workers))))


def resolve_worker_count(workers=None) -> int:
    """Number of worker processes to use.

    ``None`` auto-selects ``min(os.cpu_count(), MAX_AUTO_WORKERS)``; explicit
    values are validated but honoured even beyond the core count (useful for
    oversubscription experiments).
    """
    if workers is None:
        return max(1, min(os.cpu_count() or 1, MAX_AUTO_WORKERS))
    require_positive(workers, "workers")
    return int(workers)


def recommended_backend(collection, *, workers=None) -> str:
    """``"parallel"`` when a pool would pay off for this collection, else ``"batch"``.

    Kept as the executor-local convenience wrapper; the decision itself lives
    in the workload planner (:func:`repro.core.plan.plan_counts` with
    ``requested="parallel"``), so every integration point — the kernel
    driver, the miner, the collection API, the CLI — shares one policy:
    fall back to the serial batch engine when only one worker is available
    or the collection is below the :data:`PARALLEL_MIN_SETS` floor.
    """
    from repro.core.plan import plan_counts

    return plan_counts(collection, requested="parallel", workers=workers).backend


# --------------------------------------------------------------------------- #
# Shared segment (parent side)
# --------------------------------------------------------------------------- #
def _unlink_quietly(shm: shared_memory.SharedMemory) -> None:
    """Best-effort close + unlink used by error paths and the GC safety net."""
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except Exception:
        pass


class SharedDeviceBuffer:
    """A packed device buffer copied once into a named shared-memory segment.

    Created by the parent; workers re-attach by :attr:`name` and view the
    words zero-copy.  Context-manager exit (or :meth:`unlink`) removes the
    segment; a finalizer removes it at garbage collection as a last resort.
    """

    def __init__(self, words: np.ndarray) -> None:
        words = np.ascontiguousarray(words, dtype=np.uint32)
        require(words.size > 0, "cannot share an empty device buffer")
        self.n_words = int(words.size)
        self._shm = None
        for _ in range(16):
            name = f"{SHM_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
            try:
                self._shm = shared_memory.SharedMemory(
                    create=True, size=words.nbytes, name=name
                )
                break
            except FileExistsError:  # pragma: no cover - 2^32 collision
                continue
        if self._shm is None:  # pragma: no cover
            raise OSError("could not allocate a uniquely named shared-memory segment")
        view = np.frombuffer(self._shm.buf, dtype=np.uint32, count=self.n_words)
        view[:] = words
        del view  # the mmap cannot close while ndarray views are alive
        self._finalizer = weakref.finalize(self, _unlink_quietly, self._shm)

    @property
    def name(self) -> str:
        return self._shm.name

    def unlink(self) -> None:
        """Close the mapping and remove the segment (idempotent)."""
        if self._finalizer.alive:
            self._finalizer()

    def __enter__(self) -> "SharedDeviceBuffer":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
_worker_shm = None
_worker_index = None


def _attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without taking resource-tracker ownership.

    Python < 3.13 registers every attachment with the resource tracker.
    Pool workers share the parent's tracker process, whose cache is a set —
    so the duplicate registration is a harmless no-op and the parent's
    ``unlink()`` remains the single owner.  (A worker must *not* unregister:
    that would steal the parent's entry and make the parent's own unlink
    fail inside the tracker.)  3.13+ skips the registration entirely via
    ``track=False``.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


def _init_worker(name, n_words, offsets, widths, block_words) -> None:
    """Pool initializer: re-attach the buffer and rebuild the SWAR engine.

    The words array is a zero-copy view of the shared mapping; only the
    per-slot offset/width metadata travels by pickle, once per worker.
    """
    global _worker_shm, _worker_index
    _worker_shm = _attach_shared_memory(name)
    words = np.frombuffer(_worker_shm.buf, dtype=np.uint32, count=n_words)
    _worker_index = WidthClassIndex(words, offsets, widths, block_words=block_words)


def _all_pairs_tile(p, q, row_start, row_end, col_start, col_end) -> dict:
    """One upper-triangle tile of the all-pairs matrix, keyed by tile coords."""
    block = _worker_index.cross_slots(
        np.arange(row_start, row_end), np.arange(col_start, col_end)
    )
    return {(p, q): block}


def _cross_tile(p, q, row_slots, col_slots) -> dict:
    """One tile of a cross-rectangle workload, keyed by tile coords."""
    return {(p, q): _worker_index.cross_slots(row_slots, col_slots)}


def _pairwise_chunk(start, a_slots, b_slots) -> dict:
    """One chunk of an explicit pairs-list workload, keyed by output offset."""
    return {start: _worker_index.pairwise_slots(a_slots, b_slots)}


# --------------------------------------------------------------------------- #
# Parent-side executor
# --------------------------------------------------------------------------- #
class ParallelPairCounter:
    """Multiprocess counterpart of :class:`~repro.core.batch.BatchPairCounter`.

    Use as a context manager::

        with ParallelPairCounter(collection, workers=4) as counter:
            counts = counter.count_all_pairs()

    Queries mirror the batch engine (:meth:`counts_sorted`,
    :meth:`count_all_pairs`, :meth:`count_pairs`, :meth:`count_cross`) and
    return bit-identical results; the work is tiled, fanned out to the pool,
    and reduced with :func:`~repro.parallel.scaling.merge_part_counts`.
    """

    def __init__(
        self,
        collection,
        *,
        workers=None,
        tile_size=None,
        block_words: int = DEFAULT_BLOCK_WORDS,
        mp_context=None,
    ) -> None:
        BatchPairCounter._validate(collection)
        if tile_size is not None:
            require_positive(tile_size, "tile_size")
        self.collection = collection
        self.workers = resolve_worker_count(workers)
        self.tile_size = tile_size
        self.block_words = int(block_words)
        self._mp_context = mp_context
        self._buffer = collection.device_buffer()
        self._shared = None
        self._pool = None
        self._counts_sorted = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ParallelPairCounter":
        """Create the shared segment and spin up the pool (idempotent)."""
        if self._pool is not None:
            return self
        self._shared = SharedDeviceBuffer(self._buffer.words)
        try:
            ctx = self._mp_context or multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(
                    self._shared.name,
                    self._shared.n_words,
                    self._buffer.offsets,
                    self._buffer.widths,
                    self.block_words,
                ),
            )
        except BaseException:
            self._shared.unlink()
            self._shared = None
            raise
        return self

    def close(self) -> None:
        """Shut the pool down and unlink the segment (idempotent, error-safe)."""
        pool, self._pool = self._pool, None
        shared, self._shared = self._shared, None
        try:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        finally:
            if shared is not None:
                shared.unlink()

    def __enter__(self) -> "ParallelPairCounter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Fan-out / reduce
    # ------------------------------------------------------------------ #
    def _tile_edge(self, n: int) -> int:
        """Tile side length: explicit, or the shared auto-tiling policy."""
        if self.tile_size is not None:
            return self.tile_size
        return auto_tile_edge(n, self.workers)

    def _map_merge(self, fn, tasks) -> dict:
        """Submit every task, then serially fold the per-tile dicts into one.

        The reduction is the same :func:`merge_part_counts` the Figure 9
        simulation measures as its serial term — here applied to dicts whose
        values are count blocks, so the fold cost is per tile, not per pair.
        """
        self.start()
        futures = [self._pool.submit(fn, *task) for task in tasks]
        try:
            parts = [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return merge_part_counts(parts)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def counts_sorted(self) -> np.ndarray:
        """Dense ``n x n`` count matrix in width-sorted (device) order, cached."""
        if self._counts_sorted is None:
            n = len(self.collection)
            edge = self._tile_edge(n)
            tasks = [
                (t.p, t.q, t.row_start, t.row_end, t.col_start, t.col_end)
                for t in TileScheduler(n, edge)
            ]
            merged = self._map_merge(_all_pairs_tile, tasks)
            out = np.zeros((n, n), dtype=np.int64)
            for (p, q), block in merged.items():
                rows = slice(p * edge, p * edge + block.shape[0])
                cols = slice(q * edge, q * edge + block.shape[1])
                out[rows, cols] = block
                if p != q:
                    out[cols, rows] = block.T
            self._counts_sorted = out
        return self._counts_sorted

    def count_all_pairs(self) -> np.ndarray:
        """Dense ``n x n`` count matrix indexed by *original* set indices."""
        order = self.collection.order
        out = np.empty_like(self.counts_sorted())
        out[np.ix_(order, order)] = self.counts_sorted()
        return out

    def slot_bounds(self) -> np.ndarray:
        """Per-slot count upper bounds from exact set sizes (width-sorted order).

        Same bound as :meth:`BatchPairCounter.slot_bounds`: ``Batmap.set_size``
        counts stored and failed insertions, so it also bounds the post-repair
        support — tile skipping stays sound under the miner's ``min_support``.
        """
        return np.array([bm.set_size for bm in self.collection.batmaps_sorted],
                        dtype=np.int64)

    def count_result(
        self,
        *,
        result_format: str = "dense",
        min_support: int = 0,
        top_k=None,
        bounds=None,
    ):
        """All-pairs counts as a :class:`~repro.core.results.CountResult`.

        The pruning happens on the *parent* side, before fan-out: every
        upper-triangle tile whose count upper bound (from ``bounds``, default
        :meth:`slot_bounds`) falls below the threshold is never submitted to
        the pool, so skipped tiles cost neither a pickle round-trip nor any
        SWAR work.  Surviving tile blocks are reduced into a COO accumulator
        (or a top-k heap) instead of being scattered into a dense matrix, so
        the parent's resident result stays proportional to the nonzeros.
        Counts are bit-identical to :meth:`BatchPairCounter.count_result`.
        """
        require(result_format in ("dense", "sparse"),
                f"result_format must be 'dense' or 'sparse', got {result_format!r}")
        require(min_support >= 0, f"min_support must be >= 0, got {min_support}")
        if top_k is None and result_format == "dense":
            return DenseCountResult(self.count_all_pairs())
        if top_k is not None:
            require_positive(top_k, "top_k")
        order = self.collection.order
        n = len(self.collection)
        bounds = (self.slot_bounds() if bounds is None
                  else np.asarray(bounds, dtype=np.int64))
        edge = self._tile_edge(n)
        # The heap floor is unknown before any tile returns, so parallel
        # submission prunes against the static min_support bound only; the
        # running floor still filters entries at reduce time below.
        floor = max(1, min_support) if top_k is not None else min_support
        tasks = []
        skipped = 0
        tiles_total = 0
        for t in TileScheduler(n, edge):
            tiles_total += 1
            if floor > 0:
                bound = min(int(bounds[t.row_start:t.row_end].max()),
                            int(bounds[t.col_start:t.col_end].max()))
                if bound < floor:
                    skipped += 1
                    continue
            tasks.append((t.p, t.q, t.row_start, t.row_end, t.col_start, t.col_end))
        stats = {"tiles_total": tiles_total, "tiles_skipped": skipped}
        merged = self._map_merge(_all_pairs_tile, tasks) if tasks else {}

        def tile_axes(p, q, block):
            rows = np.arange(p * edge, p * edge + block.shape[0])
            cols = np.arange(q * edge, q * edge + block.shape[1])
            if p == q:
                block = np.where(rows[:, None] <= cols[None, :], block, 0)
            return rows, cols, block

        if top_k is not None:
            acc = TopKAccumulator(top_k)
            for (p, q), block in merged.items():
                rows, cols, block = tile_axes(p, q, block)
                fl = max(1, min_support, acc.floor)
                r_local, c_local = np.nonzero(block >= fl)
                if r_local.size == 0:
                    continue
                oi = order[rows[r_local]]
                oj = order[cols[c_local]]
                keep = oi != oj
                if not keep.any():
                    continue
                values = block[r_local, c_local][keep]
                acc.push(np.minimum(oi[keep], oj[keep]),
                         np.maximum(oi[keep], oj[keep]), values)
            return acc.result(n, min_support=min_support, stats=stats,
                              fill_zeros=min_support <= 1)
        sparse = SparseAccumulator(n, min_support=min_support)
        for (p, q), block in merged.items():
            rows, cols, block = tile_axes(p, q, block)
            sparse.add_block(order[rows], order[cols], block)
        sparse.tiles_total = stats["tiles_total"]
        sparse.tiles_skipped = stats["tiles_skipped"]
        return sparse.finalize()

    def count_pairs(self, pairs) -> np.ndarray:
        """Counts for an explicit list of ``(i, j)`` original-index pairs."""
        pairs = np.asarray(pairs, dtype=np.int64)
        require(pairs.ndim == 2 and pairs.shape[1] == 2,
                f"pairs must have shape (k, 2), got {pairs.shape}")
        total = pairs.shape[0]
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        rank = self.collection.rank
        a = rank[pairs[:, 0]]
        b = rank[pairs[:, 1]]
        chunk = -(-total // (4 * self.workers))
        tasks = [(start, a[start:start + chunk], b[start:start + chunk])
                 for start in range(0, total, chunk)]
        merged = self._map_merge(_pairwise_chunk, tasks)
        out = np.empty(total, dtype=np.int64)
        for start, counts in merged.items():
            out[start:start + counts.size] = counts
        return out

    def count_pair(self, i: int, j: int) -> int:
        """Stored-copy intersection count of original sets ``i`` and ``j``."""
        return int(self.count_pairs(np.array([[i, j]], dtype=np.int64))[0])

    def count_cross(self, rows, cols) -> np.ndarray:
        """Rectangular count matrix between two lists of original indices."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        out = np.zeros((rows.size, cols.size), dtype=np.int64)
        if rows.size == 0 or cols.size == 0:
            return out
        rank = self.collection.rank
        row_slots = rank[rows]
        col_slots = rank[cols]
        edge = self._tile_edge(max(rows.size, cols.size))
        tasks = [
            (p, q, row_slots[p * edge:(p + 1) * edge], col_slots[q * edge:(q + 1) * edge])
            for p in range(-(-rows.size // edge))
            for q in range(-(-cols.size // edge))
        ]
        merged = self._map_merge(_cross_tile, tasks)
        for (p, q), block in merged.items():
            out[p * edge:p * edge + block.shape[0],
                q * edge:q * edge + block.shape[1]] = block
        return out


# --------------------------------------------------------------------------- #
# Measured scaling (the non-simulated Figure 9 counterpart)
# --------------------------------------------------------------------------- #
def measure_executor_scaling(
    collection,
    worker_counts=(1, 2, 4),
    *,
    tile_size=None,
    repeats: int = 1,
) -> list:
    """Wall-clock the executor's all-pairs counting at several worker counts.

    Unlike :func:`~repro.parallel.scaling.measure_split_scaling` — which
    *simulates* parallelism by splitting the instance and taking the max part
    time — every point here is a real end-to-end run: segment creation, pool
    startup, tile fan-out, and the serial merge are all inside the measured
    window.  Returns :class:`~repro.parallel.scaling.ScalingPoint` objects so
    :func:`~repro.parallel.scaling.relative_speedups` applies unchanged.

    The tile size is pinned across worker counts (auto-tiling would shrink
    tiles as workers grow, and tile size alone changes cache behaviour —
    conflating blocking effects with parallel speed-up).  An untimed warm-up
    run precedes the measurements — the first pass over a fresh collection
    pays one-off costs (buffer page-in, allocator growth) that would
    otherwise be billed to whichever worker count happens to run first — and
    with ``repeats > 1`` the repeats are the outer loop, so background-load
    drift hits every worker count alike (the E5 timing discipline).
    """
    require_positive(repeats, "repeats")
    require(len(worker_counts) > 0, "worker_counts must not be empty")
    if tile_size is None:
        tile_size = auto_tile_edge(len(collection), max(worker_counts))

    def run_once(workers) -> float:
        start = time.perf_counter()
        with ParallelPairCounter(
            collection, workers=workers, tile_size=tile_size
        ) as counter:
            counter.counts_sorted()
        return time.perf_counter() - start

    run_once(worker_counts[0])  # warm-up, untimed
    best = {workers: float("inf") for workers in worker_counts}
    for _ in range(repeats):
        for workers in worker_counts:
            best[workers] = min(best[workers], run_once(workers))
    return [
        ScalingPoint(cores=int(workers), seconds=best[workers],
                     part_seconds=(best[workers],), merge_seconds=0.0)
        for workers in worker_counts
    ]
