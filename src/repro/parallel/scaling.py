"""Simulated multi-core scaling of the CPU miners (Figure 9).

The paper simulates parallel execution of Apriori and FP-growth on ``i``
cores by splitting the instance into ``i`` equal parts, running the miner on
each part independently and taking the *maximum* part time as the parallel
execution time.  Neither algorithm benefits noticeably from more than four
cores: per-part fixed costs (Apriori's quadratic candidate structure, tree
construction overheads) do not shrink with the split, and the final merge of
per-part counts is serial.

The simulated makespan therefore has **two** terms::

    seconds = max(part_seconds) + merge_seconds

The parts run concurrently (max), but combining the per-part support counts
into one result is a serial reduction that every parallel run must pay, and
it *grows* with the number of parts.  Modelling only the max — as a naive
reading of the methodology suggests — lets per-part superlinearities (small
FP-trees, cache effects) produce impossible super-linear "speed-ups"; the
measured merge term is what caps the curve below linear, matching the
paper's observation that the serial fraction limits multi-core benefit.

:func:`measure_split_scaling` reproduces that methodology for any miner
callable; :func:`relative_speedups` turns the times into the speedup curve
plotted in the figure.  See EXPERIMENTS.md E5 for the methodology record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.datasets.transactions import TransactionDatabase
from repro.utils.validation import require, require_positive

__all__ = [
    "ScalingPoint",
    "measure_split_scaling",
    "merge_part_counts",
    "relative_speedups",
]

#: A miner callable: (transactions, n_items, min_support) -> anything.
MinerFn = Callable[[list, int, int], object]

#: A merge callable: sequence of per-part miner results -> combined result.
MergeFn = Callable[[Sequence[object]], object]


@dataclass(frozen=True)
class ScalingPoint:
    """Timing of one simulated core count."""

    cores: int
    seconds: float          #: simulated makespan: max part time + serial merge
    part_seconds: tuple[float, ...]
    merge_seconds: float = 0.0

    @property
    def parallel_seconds(self) -> float:
        """The concurrent phase alone: the maximum per-part time."""
        return max(self.part_seconds)

    @property
    def imbalance(self) -> float:
        """Max/mean part time — 1.0 means perfectly balanced parts."""
        mean = sum(self.part_seconds) / len(self.part_seconds)
        return self.parallel_seconds / mean if mean > 0 else 1.0


def _count_items(result: object) -> Iterable[tuple[object, int]]:
    """Extract ``(key, count)`` pairs from one per-part miner result.

    Handles the two shapes the miners produce: plain count dicts
    (``mine_pairs``) and result objects exposing an ``itemsets`` dict
    (:class:`~repro.baselines.apriori.AprioriResult` and friends).  Any other
    type raises: silently merging nothing would zero the serial-merge term
    and quietly reinstate the super-linear-speedup artifact this model
    exists to prevent — callers with exotic result shapes must pass their
    own ``merge`` callable to :func:`measure_split_scaling`.
    """
    if isinstance(result, dict):
        return result.items()
    itemsets = getattr(result, "itemsets", None)
    if isinstance(itemsets, dict):
        return itemsets.items()
    raise TypeError(
        f"cannot extract counts from a miner result of type {type(result).__name__}; "
        "return a count dict / itemsets object or pass merge= explicitly"
    )


def merge_part_counts(results: Sequence[object]) -> dict:
    """Serially reduce per-part support counts into one combined dict.

    This is the work the final (serial) phase of a real split-parallel run
    performs: every key of every part is folded into the global table, so the
    cost grows with the number of parts times the per-part result size.
    """
    merged: dict = {}
    for result in results:
        for key, value in _count_items(result):
            merged[key] = merged.get(key, 0) + value
    return merged


def measure_split_scaling(
    miner: MinerFn,
    database: TransactionDatabase,
    min_support: int,
    core_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    repeats: int = 1,
    merge: MergeFn | None = None,
) -> list[ScalingPoint]:
    """Run ``miner`` on instance splits and report the simulated parallel times.

    Each simulated core count runs the miner once per part (best of
    ``repeats``), then *measures* the serial merge of the per-part results
    (best of ``repeats``); the point's :attr:`~ScalingPoint.seconds` is
    ``max(part_seconds) + merge_seconds``.  Pass ``merge`` to override the
    default count-dict reduction (:func:`merge_part_counts`).

    With ``repeats > 1`` the repeats are the *outer* loop — every core count
    is sampled in every time window — so slow background-load drift hits all
    configurations alike instead of biasing whichever point happened to run
    during a busy stretch (which can fabricate super-linear speed-ups).
    """
    require_positive(min_support, "min_support")
    require_positive(repeats, "repeats")
    require(len(core_counts) > 0, "core_counts must not be empty")
    for cores in core_counts:
        require_positive(cores, "cores")
    merge_fn = merge_part_counts if merge is None else merge

    splits = {cores: database.split(cores) for cores in core_counts}
    best_times: dict[int, list[float]] = {c: [float("inf")] * c for c in core_counts}
    best_results: dict[int, list[object]] = {c: [None] * c for c in core_counts}
    for _ in range(repeats):
        for cores in core_counts:
            for k, part in enumerate(splits[cores]):
                start = time.perf_counter()
                result = miner(part.transactions, part.n_items, min_support)
                elapsed = time.perf_counter() - start
                if elapsed < best_times[cores][k]:
                    best_times[cores][k] = elapsed
                    best_results[cores][k] = result

    points: list[ScalingPoint] = []
    for cores in core_counts:
        merge_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            merge_fn(best_results[cores])
            merge_best = min(merge_best, time.perf_counter() - start)
        points.append(ScalingPoint(
            cores=cores,
            seconds=max(best_times[cores]) + merge_best,
            part_seconds=tuple(best_times[cores]),
            merge_seconds=merge_best,
        ))
    return points


def relative_speedups(points: Sequence[ScalingPoint]) -> dict[int, float]:
    """Speedup of every point relative to the single-core (or smallest) run."""
    require(len(points) > 0, "points must not be empty")
    baseline = min(points, key=lambda p: p.cores)
    return {p.cores: baseline.seconds / p.seconds if p.seconds > 0 else float("inf")
            for p in points}
