"""Simulated multi-core scaling of the CPU miners (Figure 9).

The paper simulates parallel execution of Apriori and FP-growth on ``i``
cores by splitting the instance into ``i`` equal parts, running the miner on
each part independently and taking the *maximum* part time as the parallel
execution time.  Neither algorithm benefits noticeably from more than four
cores: per-part fixed costs (Apriori's quadratic candidate structure, tree
construction overheads) do not shrink with the split, and the final merge of
per-part counts is serial.

:func:`measure_split_scaling` reproduces that methodology for any miner
callable; :func:`relative_speedups` turns the times into the speedup curve
plotted in the figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.datasets.transactions import TransactionDatabase
from repro.utils.validation import require, require_positive

__all__ = ["ScalingPoint", "measure_split_scaling", "relative_speedups"]

#: A miner callable: (transactions, n_items, min_support) -> anything.
MinerFn = Callable[[list, int, int], object]


@dataclass(frozen=True)
class ScalingPoint:
    """Timing of one simulated core count."""

    cores: int
    seconds: float          #: max over the per-part times (the parallel makespan)
    part_seconds: tuple[float, ...]

    @property
    def imbalance(self) -> float:
        """Max/mean part time — 1.0 means perfectly balanced parts."""
        mean = sum(self.part_seconds) / len(self.part_seconds)
        return self.seconds / mean if mean > 0 else 1.0


def measure_split_scaling(
    miner: MinerFn,
    database: TransactionDatabase,
    min_support: int,
    core_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    repeats: int = 1,
) -> list[ScalingPoint]:
    """Run ``miner`` on instance splits and report the simulated parallel times."""
    require_positive(min_support, "min_support")
    require_positive(repeats, "repeats")
    require(len(core_counts) > 0, "core_counts must not be empty")
    points: list[ScalingPoint] = []
    for cores in core_counts:
        require_positive(cores, "cores")
        parts = database.split(cores)
        part_times: list[float] = []
        for part in parts:
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                miner(part.transactions, part.n_items, min_support)
                best = min(best, time.perf_counter() - start)
            part_times.append(best)
        points.append(ScalingPoint(
            cores=cores,
            seconds=max(part_times),
            part_seconds=tuple(part_times),
        ))
    return points


def relative_speedups(points: Sequence[ScalingPoint]) -> dict[int, float]:
    """Speedup of every point relative to the single-core (or smallest) run."""
    require(len(points) > 0, "points must not be empty")
    baseline = min(points, key=lambda p: p.cores)
    return {p.cores: baseline.seconds / p.seconds if p.seconds > 0 else float("inf")
            for p in points}
