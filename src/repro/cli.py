"""Command-line interface for the library.

Installed as the ``repro`` console script (``pip install -e .``); three
subcommands cover the workflows a downstream user actually runs:

``repro mine``
    Mine frequent pairs from a FIMI-format transaction file (or from a
    generated synthetic instance) with a chosen engine, print the top pairs
    and the phase/throughput summary.  ``--compute parallel --workers N``
    counts across a process pool over a shared-memory buffer (small inputs
    fall back to the serial batch engine); ``--compute auto`` defers the
    choice to the workload planner (:mod:`repro.core.plan`).
    ``--max-size k`` with ``k > 2`` extends the batmap engine levelwise to
    itemsets of up to ``k`` items (supports counted by the vectorised
    bitmap engine of :mod:`repro.mining.levelwise`).
    ``--stream --memory-budget B`` mines out-of-core: the file is streamed
    in bounded chunks, batmap shards sized to the budget are spilled to
    disk and counted with memory-mapped re-attach — bit-identical pairs to
    the in-memory run (``--memory-budget`` alone lets the workload planner
    demote to this pipeline only when the packed buffers would not fit).
    ``--pairs-out FILE`` writes every frequent pair in a sorted,
    engine-independent text format for output comparisons.

``repro generate``
    Generate a synthetic dataset (the paper's Bernoulli generator, the Quest
    market-basket generator or the WebDocs surrogate) and write it in FIMI
    format.

``repro intersect``
    Compute the intersection size of two or more sets given as
    whitespace-separated integer files, via batmaps and via sorted-list
    merge, printing both results and the batmap statistics.  More than two
    sets (or ``--multiway``) route through the batched multi-way probe path
    of :mod:`repro.extensions.multiway`.

``repro build-index``
    Run the out-of-core preprocessing pipeline alone: stream a FIMI file,
    build the batmap shards and leave the spill artifact (packed buffers,
    manifest, persisted hash family, item map) at a caller-chosen
    directory — no mining.  The artifact is what ``repro serve`` attaches.
    ``--family lazy`` persists an extensible hash family so later appends
    can grow the universe without rehashing; ``--sets-file`` builds from a
    raw integer-set file (one whitespace-separated set per line) instead of
    FIMI transactions.

``repro ingest``
    Append new sets to an existing spill artifact as delta shards
    (``--append`` is required; it is the only mode).  Placement of the
    existing sets is never recomputed, so counts over the grown collection
    are bit-identical to a from-scratch build of the same final dataset.

``repro delete``
    Tombstone sets by live index.  Deletes are metadata-only until a
    compaction purges the rows; every query path skips tombstoned sets
    immediately.

``repro compact``
    Merge small shards (LSM-style size tiers, or everything with
    ``--full``) and purge tombstoned rows, under an optional
    ``--memory-budget``.  A live server picks up the new generation via the
    ``reload`` operation without restarting.

``repro verify``
    Cross-check a spill artifact's manifest against its on-disk files:
    content checksums (manifest version 3), structural invariants and
    leftover garbage from interrupted mutations.  Damage is reported as
    errors and exits 1; sweepable leftovers are warnings.  ``--json``
    prints the structured report.

``repro repair``
    Roll a spill artifact back to its last committed generation: sweep
    staging directories and orphaned files no generation references.
    Always safe — the atomic-commit protocol never lets garbage share a
    name with live state.  Exits 1 if damage remains after the sweep
    (content damage needs a rebuild).

``repro serve``
    Serve membership, pairwise/multiway intersection and top-k-similarity
    queries over a spill artifact on a long-lived TCP socket
    (line-delimited JSON; see :mod:`repro.serve` and ``docs/serving.md``).

``repro query``
    One-shot client: send a single JSON request to a running server and
    print the response line.

All subcommands are also exposed through ``python -m repro.cli <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.baselines.apriori import AprioriMiner
from repro.baselines.eclat import EclatMiner
from repro.baselines.fpgrowth import FPGrowthMiner
from repro.baselines.merge import intersection_size_numpy
from repro.core.batmap import build_batmap
from repro.core.collection import BatmapCollection
from repro.core.config import BatmapConfig
from repro.core.hashing import HashFamily
from repro.core.errors import DataFormatError, DatasetError
from repro.core.intersection import count_common
from repro.core.plan import plan_counts
from repro.parallel.executor import recommended_backend
from repro.datasets.fimi_io import read_fimi, write_fimi
from repro.datasets.ibm_quest import QuestParameters, generate_quest_dataset
from repro.datasets.synthetic import generate_density_instance
from repro.datasets.webdocs import generate_webdocs_like
from repro.extensions.multiway import multiway_intersection
from repro.mining.itemsets import BatmapItemsetMiner
from repro.mining.pair_mining import BatmapPairMiner
from repro.serve.server import (
    DEFAULT_CACHE_ENTRIES,
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_QUEUE,
    DEFAULT_REQUEST_TIMEOUT,
)

__all__ = ["main", "build_parser", "subcommand_parsers"]


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level ``repro`` argument parser with every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BATMAP set intersection / frequent pair mining toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mine = sub.add_parser("mine", help="mine frequent pairs from a FIMI file")
    mine.add_argument("input", type=Path, help="FIMI-format transaction file")
    mine.add_argument("--min-support", type=int, default=2)
    mine.add_argument("--engine", choices=["batmap", "apriori", "fpgrowth", "eclat"],
                      default="batmap")
    mine.add_argument("--top", type=int, default=10, help="number of pairs to print")
    mine.add_argument("--max-transactions", type=int, default=None)
    mine.add_argument("--seed", type=int, default=0)
    mine.add_argument("--compute", choices=["device", "host", "parallel", "auto"],
                      default="device",
                      help="batmap counting backend: simulated device kernel, "
                           "serial host batch engine, multiprocess executor "
                           "(small inputs fall back to the batch engine), or "
                           "auto (the workload planner picks)")
    mine.add_argument("--workers", type=int, default=None,
                      help="worker processes for --compute parallel "
                           "(default: auto from the core count)")
    mine.add_argument("--build-compute",
                      choices=["auto", "host", "bulk", "parallel"],
                      default="auto",
                      help="batmap construction backend: serial per-element "
                           "inserter, vectorized round-based bulk engine, "
                           "multiprocess bulk build over set shards, or auto "
                           "(the workload planner picks)")
    mine.add_argument("--build-workers", type=int, default=None,
                      help="worker processes for --build-compute parallel "
                           "(default: auto from the core count)")
    mine.add_argument("--max-size", type=int, default=2,
                      help="largest itemset size to mine (batmap engine only); "
                           "sizes > 2 run the levelwise bitmap extension")
    mine.add_argument("--stream", action="store_true",
                      help="mine out-of-core: stream the file, build batmap "
                           "shards sized to --memory-budget, spill them to "
                           "disk and count shard pairs with bounded resident "
                           "memory (batmap pairs only; --compute device is "
                           "treated as auto)")
    mine.add_argument("--result-format",
                      choices=["auto", "dense", "sparse"], default="dense",
                      help="count result shape: 'dense' is the legacy full "
                           "matrix (the oracle), 'sparse' stores only nonzero "
                           "pairs and prunes tiles below --min-support inside "
                           "the engines, 'auto' picks sparse when the dense "
                           "matrix would not fit --memory-budget "
                           "(batmap engine only)")
    mine.add_argument("--memory-budget", default=None, metavar="SIZE",
                      help="resident-set ceiling, e.g. 64M or 2G.  With "
                           "--stream it sizes the shards (default 256M); "
                           "without it the workload planner demotes to the "
                           "sharded pipeline when the packed buffers would "
                           "not fit")
    mine.add_argument("--pairs-out", type=Path, default=None, metavar="FILE",
                      help="also write every frequent pair as 'i j support' "
                           "lines (sorted; engine-independent format for "
                           "output comparisons)")

    gen = sub.add_parser("generate", help="generate a synthetic dataset in FIMI format")
    gen.add_argument("output", type=Path)
    gen.add_argument("--kind", choices=["density", "quest", "webdocs"], default="density")
    gen.add_argument("--items", type=int, default=1000)
    gen.add_argument("--density", type=float, default=0.05)
    gen.add_argument("--total-items", type=int, default=100_000)
    gen.add_argument("--transactions", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)

    inter = sub.add_parser("intersect", help="intersect two or more integer-set files")
    inter.add_argument("sets", type=Path, nargs="+",
                       help="two or more whitespace-separated integer-set files")
    inter.add_argument("--universe", type=int, default=None,
                       help="universe size (default: max id + 1)")
    inter.add_argument("--seed", type=int, default=0)
    inter.add_argument("--compute", choices=["host", "parallel", "auto"],
                       default="host",
                       help="count on the host directly, through the "
                            "multiprocess executor path (two sets always fall "
                            "back to the batch engine), or let the workload "
                            "planner pick")
    inter.add_argument("--workers", type=int, default=None,
                       help="worker processes for --compute parallel")
    inter.add_argument("--build-compute",
                       choices=["auto", "host", "bulk", "parallel"],
                       default="auto",
                       help="batmap construction backend "
                            "(see `repro mine --help`)")
    inter.add_argument("--multiway", action="store_true",
                       help="force the multi-way batmap probe path "
                            "(implied when more than two sets are given)")

    build = sub.add_parser(
        "build-index",
        help="build a servable spill artifact from a FIMI file (no mining)")
    build.add_argument("input", type=Path, help="FIMI-format transaction file")
    build.add_argument("spill_dir", type=Path,
                       help="output directory for the spill artifact")
    build.add_argument("--min-support", type=int, default=1,
                       help="drop items below this support before building "
                            "(default 1: keep everything servable)")
    build.add_argument("--memory-budget", default="256M", metavar="SIZE",
                       help="resident-set ceiling while building, e.g. 64M "
                            "or 2G (sizes the spilled shards; default 256M)")
    build.add_argument("--seed", type=int, default=0,
                       help="hash-family seed (recorded in the artifact)")
    build.add_argument("--build-compute",
                       choices=["auto", "host", "bulk", "parallel"],
                       default="auto",
                       help="batmap construction backend "
                            "(see `repro mine --help`)")
    build.add_argument("--build-workers", type=int, default=None,
                       help="worker processes for --build-compute parallel")
    build.add_argument("--max-transactions", type=int, default=None)
    build.add_argument("--family", choices=["eager", "lazy"], default="eager",
                       help="hash family kind: eager (fixed universe) or "
                            "lazy/extensible (later `repro ingest` may grow "
                            "the universe up to the capacity without "
                            "rehashing)")
    build.add_argument("--capacity", type=int, default=None,
                       help="universe capacity reserved by --family lazy "
                            "(default: the current shift plateau)")
    build.add_argument("--sets-file", action="store_true",
                       help="treat INPUT as a raw integer-set file (one "
                            "whitespace-separated set per line, ids already "
                            "dense) instead of FIMI transactions")
    build.add_argument("--universe", type=int, default=None,
                       help="universe size for --sets-file "
                            "(default: max id + 1)")

    ingest = sub.add_parser(
        "ingest", help="append new sets to an existing spill artifact")
    ingest.add_argument("spill_dir", type=Path,
                        help="existing spill artifact directory")
    ingest.add_argument("input", type=Path,
                        help="raw integer-set file: one whitespace-separated "
                             "set per line")
    ingest.add_argument("--append", action="store_true", required=True,
                        help="required: appends are the only ingest mode "
                             "(new sets become delta shards; existing "
                             "placement is never recomputed)")
    ingest.add_argument("--universe", type=int, default=None,
                        help="grow the universe to this size (lazy-family "
                             "artifacts only; default: grown to fit the "
                             "appended elements)")
    ingest.add_argument("--memory-budget", default=None, metavar="SIZE",
                        help="resident-set ceiling while building the delta "
                             "shards, e.g. 64M or 2G (default: one shard)")

    delete = sub.add_parser(
        "delete", help="tombstone sets of a spill artifact by live index")
    delete.add_argument("spill_dir", type=Path,
                        help="existing spill artifact directory")
    delete.add_argument("--sets", type=int, nargs="+", required=True,
                        metavar="ID",
                        help="live set indices to tombstone (the dense index "
                             "space queries see; compaction purges the rows)")

    compact = sub.add_parser(
        "compact",
        help="merge shards and purge tombstones (LSM-style compaction)")
    compact.add_argument("spill_dir", type=Path,
                         help="existing spill artifact directory")
    compact.add_argument("--full", action="store_true",
                         help="merge everything into the fewest shards the "
                              "budget allows (default: size-tiered policy "
                              "merges only runs of similar-size shards)")
    compact.add_argument("--memory-budget", default=None, metavar="SIZE",
                         help="resident-set ceiling for merged shards, e.g. "
                              "64M or 2G (bounds each merged shard's size)")

    verify = sub.add_parser(
        "verify",
        help="check a spill artifact (checksums, cross-checks, garbage)")
    verify.add_argument("spill_dir", type=Path,
                        help="spill artifact directory to check")
    verify.add_argument("--json", action="store_true",
                        help="print the structured report as one JSON object")

    repair = sub.add_parser(
        "repair",
        help="roll a spill artifact back to its last committed generation")
    repair.add_argument("spill_dir", type=Path,
                        help="spill artifact directory to repair")
    repair.add_argument("--json", action="store_true",
                        help="print the repair actions and post-repair "
                             "report as one JSON object")

    serve = sub.add_parser(
        "serve", help="serve queries over a spill artifact (JSON over TCP)")
    serve.add_argument("spill_dir", type=Path,
                       help="spill artifact directory (from `repro build-index` "
                            "or `repro mine --stream` with a kept spill)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0: bind an ephemeral port and "
                            "print it)")
    serve.add_argument("--max-batch", type=int, default=DEFAULT_MAX_BATCH,
                       help="most requests coalesced into one vectorized "
                            "engine call (1 disables batching)")
    serve.add_argument("--max-queue", type=int, default=DEFAULT_MAX_QUEUE,
                       help="bounded request-queue capacity; a full queue "
                            "answers 'overloaded' instead of blocking")
    serve.add_argument("--timeout", type=float, default=DEFAULT_REQUEST_TIMEOUT,
                       help="per-request deadline in seconds")
    serve.add_argument("--cache-entries", type=int, default=DEFAULT_CACHE_ENTRIES,
                       help="LRU result-cache capacity (0 disables caching)")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="shut down after this many request lines "
                            "(finite sessions for smoke tests)")
    serve.add_argument("--result-format", choices=["dense", "sparse"],
                       default="dense",
                       help="top-k serving strategy: 'dense' materialises "
                            "full count rows, 'sparse' streams shard "
                            "rectangles through a pruned heap accumulator "
                            "(identical answers)")

    query = sub.add_parser(
        "query", help="send one JSON request to a running server")
    query.add_argument("address", help="server address as HOST:PORT")
    query.add_argument("request",
                       help="one request as JSON, e.g. "
                            "'{\"op\": \"count\", \"pairs\": [[0, 1]]}'")
    query.add_argument("--timeout", type=float, default=60.0,
                       help="socket timeout in seconds")
    return parser


def subcommand_parsers() -> dict:
    """Map each subcommand name to its :class:`argparse.ArgumentParser`.

    The CLI help snapshot tests render every subparser's ``format_help()``
    through this accessor instead of spawning one process per subcommand.
    """
    parser = build_parser()
    actions = [a for a in parser._actions
               if isinstance(a, argparse._SubParsersAction)]
    return dict(actions[0].choices)


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_mine(args: argparse.Namespace, out) -> int:
    if args.max_size < 1:
        print(f"--max-size must be >= 1, got {args.max_size}", file=out)
        return 2
    if args.max_size != 2 and args.engine != "batmap":
        print(f"--max-size other than 2 requires the batmap engine, "
              f"got {args.engine!r}", file=out)
        return 2
    if args.result_format != "dense" and (args.engine != "batmap"
                                          or args.max_size != 2):
        print("--result-format other than 'dense' requires the batmap engine "
              "with --max-size 2", file=out)
        return 2
    if args.stream or args.memory_budget is not None:
        if args.engine != "batmap" or args.max_size != 2:
            print("--stream/--memory-budget require the batmap engine with "
                  "--max-size 2", file=out)
            return 2
        try:
            if args.stream or _budget_demotes_to_stream(args, out):
                return _mine_stream(args, out)
        except ValueError as exc:
            # Unparseable --memory-budget, or one too small for the fixed
            # residents: a configuration error, not a crash.
            print(f"error: {exc}", file=out)
            return 2
    db = read_fimi(args.input, max_transactions=args.max_transactions)
    print(f"loaded {db.n_transactions} transactions, {db.n_items} items, "
          f"{db.total_items} occurrences (density {db.density:.4f})", file=out)

    if args.max_size != 2:
        # Sizes 1 and >= 3 both run the itemset driver (a bare --max-size 1
        # must restrict the output to singletons, not silently mine pairs).
        return _mine_itemsets(args, db, out)

    start = time.perf_counter()
    if args.engine == "batmap":
        miner = BatmapPairMiner(compute=args.compute, workers=args.workers,
                                build_compute=args.build_compute,
                                build_workers=args.build_workers,
                                result_format=args.result_format)
        report = miner.mine(db, min_support=args.min_support, rng=args.seed)
        pairs = report.supports.frequent_pairs(args.min_support)
        _maybe_print_result_format(report, out)
        timing = "modelled" if report.count_backend == "kernel" else "wall clock"
        print(f"phases: preprocess {report.preprocess_seconds:.3f}s, "
              f"count {report.counting_seconds:.5f}s ({timing}), "
              f"postprocess {report.postprocess_seconds:.3f}s, "
              f"failed insertions {report.failed_insertions}", file=out)
        backend = f"count backend: {report.count_backend}"
        if args.compute == "parallel" and report.count_backend == "batch":
            backend += " (parallel fell back: input below the pool pay-off floor)"
        print(backend, file=out)
        print(_build_backend_line(report.build_backend, args.build_compute),
              file=out)
    elif args.engine == "apriori":
        pairs = AprioriMiner().mine_pairs(db.transactions, db.n_items, args.min_support)
    elif args.engine == "fpgrowth":
        pairs = FPGrowthMiner().mine_pairs(db.transactions, db.n_items, args.min_support)
    else:
        pairs = EclatMiner().mine_pairs(db.transactions, db.n_items, args.min_support)
    elapsed = time.perf_counter() - start

    _report_pairs(pairs, args, out, elapsed, args.engine)
    return 0


def _report_pairs(pairs, args: argparse.Namespace, out, elapsed: float,
                  engine_tag: str) -> None:
    """Shared result tail of every mine path: summary, top-N, pairs file.

    One implementation for the in-memory and streaming paths — the CI
    streaming smoke compares their ``--pairs-out`` files byte for byte.
    """
    print(f"{len(pairs)} frequent pairs (support >= {args.min_support}) "
          f"in {elapsed:.3f}s wall clock [{engine_tag}]", file=out)
    ranked = sorted(pairs.items(), key=lambda kv: (-kv[1], kv[0]))[:args.top]
    for (i, j), support in ranked:
        print(f"  ({i}, {j})  support={support}", file=out)
    _maybe_write_pairs(pairs, args.pairs_out, out)


def _maybe_print_result_format(report, out) -> None:
    """One telemetry line when the counts came back as a sparse result."""
    from repro.core.results import SparseCountResult

    counts = report.supports.counts
    if isinstance(counts, SparseCountResult):
        stats = counts.stats or {}
        print(f"result format: sparse ({counts.nnz} nonzero pairs, "
              f"{stats.get('tiles_skipped', 0)}/{stats.get('tiles_total', 0)} "
              f"tiles pruned, {counts.result_bytes} result bytes)", file=out)


def _maybe_write_pairs(pairs, path, out) -> None:
    """Write every frequent pair as sorted ``i j support`` lines (optional)."""
    if path is None:
        return
    lines = [f"{i} {j} {support}" for (i, j), support in sorted(pairs.items())]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    print(f"wrote {len(lines)} pairs to {path}", file=out)


def _budget_demotes_to_stream(args: argparse.Namespace, out) -> bool:
    """Planner routing for ``--memory-budget`` without ``--stream``.

    One cheap statistics pass projects the packed-buffer size; the build
    planner demotes to the sharded pipeline only when it would not fit
    under the budget — otherwise the ordinary in-memory path runs.
    """
    from repro.core.config import DEFAULT_CONFIG
    from repro.core.plan import plan_build
    from repro.core.sharded import set_packed_bytes
    from repro.datasets.streaming import scan_fimi_stats
    from repro.utils.memory import parse_memory_size

    budget = parse_memory_size(args.memory_budget)
    stats = scan_fimi_stats(args.input, max_transactions=args.max_transactions)
    supports = stats.item_supports
    if args.min_support > 1:
        supports = supports[supports >= args.min_support]
    if supports.size == 0 or stats.n_transactions == 0:
        return False  # let the in-memory path report the empty result/error
    packed = int(set_packed_bytes(supports, max(1, stats.n_transactions),
                                  DEFAULT_CONFIG).sum())
    plan = plan_build(supports.size, int(supports.sum()),
                      requested=args.build_compute, memory_budget=budget,
                      packed_bytes=packed)
    if args.build_compute == "auto" and plan.backend == "sharded":
        print(f"plan: {plan.reason}; demoting to the sharded pipeline", file=out)
        return True
    return False


def _mine_stream(args: argparse.Namespace, out) -> int:
    """Out-of-core mining (``--stream`` / planner-demoted ``--memory-budget``)."""
    budget = args.memory_budget if args.memory_budget is not None else "256M"
    compute = "auto" if args.compute == "device" else args.compute
    miner = BatmapPairMiner(compute=compute, workers=args.workers,
                            build_compute=args.build_compute,
                            build_workers=args.build_workers,
                            result_format=args.result_format)
    start = time.perf_counter()
    report = miner.mine_stream(
        args.input,
        min_support=args.min_support,
        rng=args.seed,
        memory_budget=budget,
        max_transactions=args.max_transactions,
    )
    pairs = report.supports.frequent_pairs(args.min_support)
    _maybe_print_result_format(report, out)
    elapsed = time.perf_counter() - start
    print(f"streamed {args.input} out-of-core "
          f"(memory budget {budget}, {report.batmap_bytes} packed bytes spilled)",
          file=out)
    print(f"phases: preprocess {report.preprocess_seconds:.3f}s, "
          f"count {report.counting_seconds:.5f}s (wall clock), "
          f"postprocess {report.postprocess_seconds:.3f}s, "
          f"failed insertions {report.failed_insertions}", file=out)
    print(f"count backend: {report.count_backend}", file=out)
    print(f"build backend: {report.build_backend}", file=out)
    _report_pairs(pairs, args, out, elapsed, "batmap, sharded")
    return 0


def _build_backend_line(build_backend: str, requested: str) -> str:
    """The ``build backend:`` output line, with the demotion notice."""
    line = f"build backend: {build_backend}"
    if requested == "parallel" and build_backend == "bulk":
        line += " (parallel fell back: input below the build pool pay-off floor)"
    return line


def _mine_itemsets(args: argparse.Namespace, db, out) -> int:
    """Levelwise itemset mining (``--max-size > 2``) through the bitmap engine."""
    start = time.perf_counter()
    pair_miner = BatmapPairMiner(compute=args.compute, workers=args.workers,
                                 build_compute=args.build_compute,
                                 build_workers=args.build_workers)
    miner = BatmapItemsetMiner(pair_miner, max_size=args.max_size,
                               workers=args.workers)
    result = miner.mine(db, min_support=args.min_support, rng=args.seed)
    elapsed = time.perf_counter() - start
    if result.pair_report is not None:
        print(_build_backend_line(result.pair_report.build_backend,
                                  args.build_compute), file=out)

    print(f"{len(result.itemsets)} frequent itemsets up to size "
          f"{result.max_size()} (support >= {args.min_support}) "
          f"in {elapsed:.3f}s wall clock "
          f"[batmap + levelwise, {result.extension_levels} extension level(s)]",
          file=out)
    for k in range(1, result.max_size() + 1):
        level = result.of_size(k)
        if level:
            print(f"  size {k}: {len(level)} itemsets", file=out)
    ranked = sorted(result.itemsets.items(),
                    key=lambda kv: (-len(kv[0]), -kv[1], kv[0]))[:args.top]
    for itemset, support in ranked:
        print(f"  {tuple(itemset)}  support={support}", file=out)
    return 0


def _cmd_generate(args: argparse.Namespace, out) -> int:
    if args.kind == "density":
        db = generate_density_instance(args.items, args.density, args.total_items,
                                       rng=args.seed)
    elif args.kind == "quest":
        db = generate_quest_dataset(
            QuestParameters(n_items=args.items, n_transactions=args.transactions),
            rng=args.seed)
    else:
        db = generate_webdocs_like(args.transactions, vocabulary_size=args.items,
                                   rng=args.seed)
    write_fimi(db, args.output)
    print(f"wrote {db.n_transactions} transactions, {db.n_items} items, "
          f"{db.total_items} occurrences to {args.output}", file=out)
    return 0


def _read_id_file(path: Path) -> np.ndarray:
    tokens = path.read_text().split()
    try:
        return np.unique(np.array([int(t) for t in tokens], dtype=np.int64))
    except ValueError as exc:
        raise DataFormatError(f"{path}: non-integer token in set file") from exc


def _cmd_intersect_multiway(args: argparse.Namespace, sets, universe, out) -> int:
    """Intersect three or more sets through the batched multi-way probe path."""
    config = BatmapConfig()
    family = HashFamily.create(universe, shift=config.shift_for_universe(universe),
                               rng=args.seed)
    collection = BatmapCollection.build(sets, universe, config=config,
                                        family=family, sort_by_size=False,
                                        build_compute=args.build_compute)
    result = multiway_intersection(collection, list(range(len(sets))))
    exact = sets[0]
    for s in sets[1:]:
        exact = np.intersect1d(exact, s, assume_unique=True)
    sizes = ", ".join(str(s.size) for s in sets)
    print(f"{len(sets)} sets of sizes [{sizes}], universe = {universe}", file=out)
    print("count backend: host (batched multiway probes)", file=out)
    print(_build_backend_line(collection.build_plan.backend,
                              args.build_compute), file=out)
    print(f"intersection size (batmap): {result.size}", file=out)
    print(f"intersection size (merge) : {exact.size}", file=out)
    total_bytes = sum(collection.batmap(i).memory_bytes for i in range(len(sets)))
    n_failed = sum(len(collection.batmap(i).failed) for i in range(len(sets)))
    print(f"batmap sizes: {total_bytes} B total ({n_failed} failed insertions)",
          file=out)
    return 0


def _cmd_intersect(args: argparse.Namespace, out) -> int:
    if len(args.sets) < 2:
        print("intersect needs at least two set files", file=out)
        return 2
    sets = [_read_id_file(p) for p in args.sets]
    if any(s.size == 0 for s in sets):
        print("intersection size: 0 (one of the sets is empty)", file=out)
        return 0
    universe = args.universe or int(max(int(s.max()) for s in sets)) + 1
    if len(sets) > 2 or args.multiway:
        return _cmd_intersect_multiway(args, sets, universe, out)

    set_a, set_b = sets
    config = BatmapConfig()
    family = HashFamily.create(universe, shift=config.shift_for_universe(universe),
                               rng=args.seed)
    if args.compute in ("parallel", "auto"):
        # One build: the printed stats must describe the same batmaps that
        # produced the count (the collection path clamps r >= 4).
        collection = BatmapCollection.build([set_a, set_b], universe,
                                            config=config, family=family,
                                            sort_by_size=False,
                                            build_compute=args.build_compute)
        print(_build_backend_line(collection.build_plan.backend,
                                  args.build_compute), file=out)
        bm_a, bm_b = collection.batmap(0), collection.batmap(1)
        if args.compute == "auto":
            plan = plan_counts(collection, workers=args.workers, n_pairs=1)
            print(f"count backend: {plan.backend} ({plan.reason})", file=out)
            if plan.backend == "parallel":
                counts = collection.count_all_pairs(parallel=True,
                                                    workers=args.workers)
                batmap_count = int(counts[0, 1])
            else:
                batmap_count = collection.count_pair(0, 1)
        else:
            backend = recommended_backend(collection, workers=args.workers)
            counts = collection.count_all_pairs(parallel=True, workers=args.workers)
            batmap_count = int(counts[0, 1])
            note = (" (parallel fell back: input below the pool pay-off floor)"
                    if backend == "batch" else "")
            print(f"count backend: {backend}{note}", file=out)
    else:
        bm_a = build_batmap(set_a, universe, family=family, config=config)
        bm_b = build_batmap(set_b, universe, family=family, config=config)
        batmap_count = count_common(bm_a, bm_b)
    merge_count = intersection_size_numpy(set_a, set_b)
    print(f"|A| = {set_a.size}, |B| = {set_b.size}, universe = {universe}", file=out)
    print(f"intersection size (batmap): {batmap_count}", file=out)
    print(f"intersection size (merge) : {merge_count}", file=out)
    print(f"batmap sizes: {bm_a.memory_bytes} B and {bm_b.memory_bytes} B "
          f"({len(bm_a.failed) + len(bm_b.failed)} failed insertions)", file=out)
    return 0


def _read_sets_file(path: Path) -> list:
    """Read a raw sets file: one whitespace-separated integer set per line.

    Blank lines are skipped, so the line order defines the dense set index
    space — the same format ``repro ingest`` appends from.
    """
    sets = []
    for line_no, line in enumerate(path.read_text().splitlines(), start=1):
        tokens = line.split()
        if not tokens:
            continue
        try:
            sets.append(np.unique(np.array([int(t) for t in tokens],
                                           dtype=np.int64)))
        except ValueError as exc:
            raise DataFormatError(
                f"{path}:{line_no}: non-integer token in set line") from exc
    if not sets:
        raise DataFormatError(f"{path}: no sets found in input")
    return sets


def _build_index_sets_file(args: argparse.Namespace, budget: int, out) -> int:
    """The ``build-index --sets-file`` arm: raw sets, no FIMI preprocessing."""
    from repro.core.sharded import ShardedCollection

    sets = _read_sets_file(args.input)
    universe = args.universe or int(max(int(s.max()) for s in sets)) + 1
    start = time.perf_counter()
    collection = ShardedCollection.build(
        sets, universe, args.spill_dir,
        memory_budget=budget,
        rng=args.seed,
        family_kind=args.family,
        family_capacity=args.capacity,
        build_compute=args.build_compute,
        build_workers=args.build_workers,
    )
    np.save(Path(args.spill_dir) / "item_map.npy",
            np.arange(len(sets), dtype=np.int64))
    elapsed = time.perf_counter() - start
    print(f"indexed {len(collection)} sets over universe "
          f"{collection.universe_size} in {elapsed:.3f}s wall clock", file=out)
    print(f"spill artifact: {args.spill_dir} ({collection.n_shards} shard(s), "
          f"{collection.total_packed_bytes} packed bytes, "
          f"{args.family} family, generation {collection.generation})",
          file=out)
    print(f"serve it with: repro serve {args.spill_dir}", file=out)
    return 0


def _cmd_build_index(args: argparse.Namespace, out) -> int:
    """Build a servable spill artifact from a FIMI file, without mining."""
    from repro.mining.preprocess import preprocess_streaming
    from repro.utils.memory import parse_memory_size

    try:
        budget = parse_memory_size(args.memory_budget)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.capacity is not None and args.family != "lazy":
        print("error: --capacity requires --family lazy", file=out)
        return 2
    if args.universe is not None and not args.sets_file:
        print("error: --universe requires --sets-file", file=out)
        return 2
    try:
        if args.sets_file:
            return _build_index_sets_file(args, budget, out)
        start = time.perf_counter()
        pre = preprocess_streaming(
            args.input,
            args.spill_dir,
            memory_budget=budget,
            min_support=args.min_support,
            rng=args.seed,
            build_compute=args.build_compute,
            build_workers=args.build_workers,
            family_kind=args.family,
            family_capacity=args.capacity,
            max_transactions=args.max_transactions,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    np.save(Path(args.spill_dir) / "item_map.npy", pre.item_map)
    elapsed = time.perf_counter() - start
    collection = pre.collection
    print(f"indexed {len(collection)} sets over universe "
          f"{collection.universe_size} in {elapsed:.3f}s wall clock", file=out)
    print(f"spill artifact: {args.spill_dir} ({collection.n_shards} shard(s), "
          f"{collection.total_packed_bytes} packed bytes, "
          f"{args.family} family, generation {collection.generation})",
          file=out)
    print(f"serve it with: repro serve {args.spill_dir}", file=out)
    return 0


def _cmd_ingest(args: argparse.Namespace, out) -> int:
    """Append new sets to an existing spill artifact as delta shards."""
    from repro.core.sharded import ShardedCollection
    from repro.utils.memory import parse_memory_size

    try:
        budget = (parse_memory_size(args.memory_budget)
                  if args.memory_budget is not None else None)
        sets = _read_sets_file(args.input)
        collection = ShardedCollection.from_spill(args.spill_dir)
        before = collection.n_sets
        start = time.perf_counter()
        collection.append(sets, universe_size=args.universe,
                          memory_budget=budget)
        elapsed = time.perf_counter() - start
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    print(f"appended {len(sets)} sets ({before} -> {collection.n_sets}) "
          f"in {elapsed:.3f}s wall clock", file=out)
    print(f"generation {collection.generation}: {collection.n_shards} "
          f"shard(s), universe {collection.universe_size}, "
          f"{collection.total_packed_bytes} packed bytes", file=out)
    if collection.n_shards >= 8:
        print(f"hint: {collection.n_shards} shards amplify counting work; "
              f"run `repro compact {args.spill_dir}`", file=out)
    return 0


def _cmd_delete(args: argparse.Namespace, out) -> int:
    """Tombstone live sets of a spill artifact."""
    from repro.core.sharded import ShardedCollection

    try:
        collection = ShardedCollection.from_spill(args.spill_dir)
        before = collection.n_sets
        collection.delete(args.sets)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    print(f"tombstoned {before - collection.n_sets} set(s) "
          f"({before} -> {collection.n_sets} live)", file=out)
    print(f"generation {collection.generation}: "
          f"{int(collection.tombstones.size)} tombstone(s) pending "
          f"compaction", file=out)
    return 0


def _cmd_compact(args: argparse.Namespace, out) -> int:
    """Merge shards and purge tombstones under an optional budget."""
    from repro.core.sharded import ShardedCollection
    from repro.utils.memory import parse_memory_size

    try:
        budget = (parse_memory_size(args.memory_budget)
                  if args.memory_budget is not None else None)
        collection = ShardedCollection.from_spill(args.spill_dir)
        before_shards = collection.n_shards
        before_tombstones = int(collection.tombstones.size)
        before_generation = collection.generation
        start = time.perf_counter()
        collection.compact(memory_budget=budget, full=args.full)
        elapsed = time.perf_counter() - start
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    if collection.generation == before_generation:
        print(f"nothing to compact: {before_shards} shard(s), "
              f"{before_tombstones} tombstone(s)", file=out)
        return 0
    purged = before_tombstones - int(collection.tombstones.size)
    print(f"compacted {before_shards} -> {collection.n_shards} shard(s), "
          f"purged {purged} tombstoned row(s) in {elapsed:.3f}s wall clock",
          file=out)
    print(f"generation {collection.generation}: "
          f"{collection.total_packed_bytes} packed bytes", file=out)
    print("a live server picks this up with: "
          "repro query HOST:PORT '{\"op\": \"reload\"}'", file=out)
    return 0


def _cmd_verify(args: argparse.Namespace, out) -> int:
    """Verify a spill artifact; exit 1 on damage, 0 when clean."""
    import json

    from repro.core.integrity import verify_spill

    report = verify_spill(args.spill_dir)
    if args.json:
        print(json.dumps(report.to_dict(), separators=(",", ":")), file=out)
    else:
        print(report.render(), file=out)
    return 0 if report.ok else 1


def _cmd_repair(args: argparse.Namespace, out) -> int:
    """Sweep crash leftovers; exit 1 if damage remains after the sweep."""
    import json

    from repro.core.integrity import repair_spill

    result = repair_spill(args.spill_dir)
    if args.json:
        print(json.dumps(result.to_dict(), separators=(",", ":")), file=out)
        return 0 if result.report.ok else 1
    if result.actions:
        for action in result.actions:
            print(action, file=out)
    else:
        print("nothing to sweep: no crash leftovers found", file=out)
    print(result.report.render(), file=out)
    if not result.report.ok:
        print("damage remains after repair; rebuild the artifact with "
              "`repro build-index`", file=out)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    """Attach a spill artifact and serve queries until interrupted."""
    import asyncio

    from repro.serve.server import BatmapServer

    server = BatmapServer(
        args.spill_dir,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        request_timeout=args.timeout,
        cache_entries=args.cache_entries,
        max_requests=args.max_requests,
        result_format=args.result_format,
    )

    async def _run() -> dict:
        host, port = await server.start()
        stats = server.engine.stats()
        print(f"attached {stats['n_sets']} sets "
              f"({stats['n_shards']} shard(s), "
              f"{stats['total_packed_bytes']} packed bytes) from {args.spill_dir}",
              file=out, flush=True)
        print(f"serving on {host}:{port}", file=out, flush=True)
        await server.serve_until_shutdown()
        return server.metrics.snapshot()

    try:
        snapshot = asyncio.run(_run())
    except KeyboardInterrupt:
        snapshot = server.metrics.snapshot()
    n_errors = sum(snapshot["errors_by_code"].values())
    print(f"served {snapshot['requests_total'] + n_errors} requests "
          f"({n_errors} errors)", file=out, flush=True)
    return 0


def _cmd_query(args: argparse.Namespace, out) -> int:
    """Send one JSON request line to a running server and print the reply."""
    import json

    from repro.serve.client import ServeClient, ServeError

    host, sep, port_text = args.address.rpartition(":")
    if not sep or not port_text.isdigit():
        print(f"error: address must be HOST:PORT, got {args.address!r}",
              file=out)
        return 2
    try:
        request = json.loads(args.request)
    except json.JSONDecodeError as exc:
        print(f"error: request is not valid JSON: {exc}", file=out)
        return 2
    if not isinstance(request, dict) or not isinstance(request.get("op"), str):
        print("error: request must be a JSON object with an \"op\" key",
              file=out)
        return 2
    op = request.pop("op")
    request.pop("id", None)  # the client assigns its own ids
    try:
        with ServeClient(host, int(port_text), timeout=args.timeout) as client:
            result = client.request(op, **request)
    except ServeError as exc:
        print(f"error [{exc.code}]: {exc.message}", file=out)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach {args.address}: {exc}", file=out)
        return 2
    print(json.dumps(result, separators=(",", ":")), file=out)
    return 0


# --------------------------------------------------------------------------- #
def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code.

    Malformed input surfaces as one ``error:`` line and exit code 2 — the
    dataset readers raise :class:`~repro.core.errors.DatasetError` with the
    source and line, never a bare ``ValueError`` traceback.
    """
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "mine":
            return _cmd_mine(args, out)
        if args.command == "generate":
            return _cmd_generate(args, out)
        if args.command == "intersect":
            return _cmd_intersect(args, out)
        if args.command == "build-index":
            return _cmd_build_index(args, out)
        if args.command == "ingest":
            return _cmd_ingest(args, out)
        if args.command == "delete":
            return _cmd_delete(args, out)
        if args.command == "compact":
            return _cmd_compact(args, out)
        if args.command == "verify":
            return _cmd_verify(args, out)
        if args.command == "repair":
            return _cmd_repair(args, out)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "query":
            return _cmd_query(args, out)
    except DatasetError as exc:
        print(f"error: {exc}", file=out)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
