"""Command-line interface for the library.

Installed as the ``repro`` console script (``pip install -e .``); three
subcommands cover the workflows a downstream user actually runs:

``repro mine``
    Mine frequent pairs from a FIMI-format transaction file (or from a
    generated synthetic instance) with a chosen engine, print the top pairs
    and the phase/throughput summary.  ``--compute parallel --workers N``
    counts across a process pool over a shared-memory buffer (small inputs
    fall back to the serial batch engine).

``repro generate``
    Generate a synthetic dataset (the paper's Bernoulli generator, the Quest
    market-basket generator or the WebDocs surrogate) and write it in FIMI
    format.

``repro intersect``
    Compute the intersection size of two sets given as whitespace-separated
    integer files, via batmaps and via sorted-list merge, printing both
    results and the batmap statistics.

All three are also exposed through ``python -m repro.cli <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

from repro.baselines.apriori import AprioriMiner
from repro.baselines.eclat import EclatMiner
from repro.baselines.fpgrowth import FPGrowthMiner
from repro.baselines.merge import intersection_size_numpy
from repro.core.batmap import build_batmap
from repro.core.collection import BatmapCollection
from repro.core.config import BatmapConfig
from repro.core.hashing import HashFamily
from repro.core.intersection import count_common
from repro.parallel.executor import recommended_backend
from repro.datasets.fimi_io import read_fimi, write_fimi
from repro.datasets.ibm_quest import QuestParameters, generate_quest_dataset
from repro.datasets.synthetic import generate_density_instance
from repro.datasets.webdocs import generate_webdocs_like
from repro.mining.pair_mining import BatmapPairMiner

__all__ = ["main", "build_parser"]


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BATMAP set intersection / frequent pair mining toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mine = sub.add_parser("mine", help="mine frequent pairs from a FIMI file")
    mine.add_argument("input", type=Path, help="FIMI-format transaction file")
    mine.add_argument("--min-support", type=int, default=2)
    mine.add_argument("--engine", choices=["batmap", "apriori", "fpgrowth", "eclat"],
                      default="batmap")
    mine.add_argument("--top", type=int, default=10, help="number of pairs to print")
    mine.add_argument("--max-transactions", type=int, default=None)
    mine.add_argument("--seed", type=int, default=0)
    mine.add_argument("--compute", choices=["device", "host", "parallel"],
                      default="device",
                      help="batmap counting backend: simulated device kernel, "
                           "serial host batch engine, or multiprocess executor "
                           "(small inputs fall back to the batch engine)")
    mine.add_argument("--workers", type=int, default=None,
                      help="worker processes for --compute parallel "
                           "(default: auto from the core count)")

    gen = sub.add_parser("generate", help="generate a synthetic dataset in FIMI format")
    gen.add_argument("output", type=Path)
    gen.add_argument("--kind", choices=["density", "quest", "webdocs"], default="density")
    gen.add_argument("--items", type=int, default=1000)
    gen.add_argument("--density", type=float, default=0.05)
    gen.add_argument("--total-items", type=int, default=100_000)
    gen.add_argument("--transactions", type=int, default=1000)
    gen.add_argument("--seed", type=int, default=0)

    inter = sub.add_parser("intersect", help="intersect two integer-set files")
    inter.add_argument("set_a", type=Path)
    inter.add_argument("set_b", type=Path)
    inter.add_argument("--universe", type=int, default=None,
                       help="universe size (default: max id + 1)")
    inter.add_argument("--seed", type=int, default=0)
    inter.add_argument("--compute", choices=["host", "parallel"], default="host",
                       help="count on the host directly or through the "
                            "multiprocess executor path (two sets always fall "
                            "back to the batch engine)")
    inter.add_argument("--workers", type=int, default=None,
                       help="worker processes for --compute parallel")
    return parser


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_mine(args: argparse.Namespace, out) -> int:
    db = read_fimi(args.input, max_transactions=args.max_transactions)
    print(f"loaded {db.n_transactions} transactions, {db.n_items} items, "
          f"{db.total_items} occurrences (density {db.density:.4f})", file=out)

    start = time.perf_counter()
    if args.engine == "batmap":
        miner = BatmapPairMiner(compute=args.compute, workers=args.workers)
        report = miner.mine(db, min_support=args.min_support, rng=args.seed)
        pairs = report.supports.frequent_pairs(args.min_support)
        timing = "modelled" if report.count_backend == "kernel" else "wall clock"
        print(f"phases: preprocess {report.preprocess_seconds:.3f}s, "
              f"count {report.counting_seconds:.5f}s ({timing}), "
              f"postprocess {report.postprocess_seconds:.3f}s, "
              f"failed insertions {report.failed_insertions}", file=out)
        backend = f"count backend: {report.count_backend}"
        if args.compute == "parallel" and report.count_backend == "batch":
            backend += " (parallel fell back: input below the pool pay-off floor)"
        print(backend, file=out)
    elif args.engine == "apriori":
        pairs = AprioriMiner().mine_pairs(db.transactions, db.n_items, args.min_support)
    elif args.engine == "fpgrowth":
        pairs = FPGrowthMiner().mine_pairs(db.transactions, db.n_items, args.min_support)
    else:
        pairs = EclatMiner().mine_pairs(db.transactions, db.n_items, args.min_support)
    elapsed = time.perf_counter() - start

    print(f"{len(pairs)} frequent pairs (support >= {args.min_support}) "
          f"in {elapsed:.3f}s wall clock [{args.engine}]", file=out)
    ranked = sorted(pairs.items(), key=lambda kv: (-kv[1], kv[0]))[:args.top]
    for (i, j), support in ranked:
        print(f"  ({i}, {j})  support={support}", file=out)
    return 0


def _cmd_generate(args: argparse.Namespace, out) -> int:
    if args.kind == "density":
        db = generate_density_instance(args.items, args.density, args.total_items,
                                       rng=args.seed)
    elif args.kind == "quest":
        db = generate_quest_dataset(
            QuestParameters(n_items=args.items, n_transactions=args.transactions),
            rng=args.seed)
    else:
        db = generate_webdocs_like(args.transactions, vocabulary_size=args.items,
                                   rng=args.seed)
    write_fimi(db, args.output)
    print(f"wrote {db.n_transactions} transactions, {db.n_items} items, "
          f"{db.total_items} occurrences to {args.output}", file=out)
    return 0


def _read_id_file(path: Path) -> np.ndarray:
    tokens = path.read_text().split()
    return np.unique(np.array([int(t) for t in tokens], dtype=np.int64))


def _cmd_intersect(args: argparse.Namespace, out) -> int:
    set_a = _read_id_file(args.set_a)
    set_b = _read_id_file(args.set_b)
    if set_a.size == 0 or set_b.size == 0:
        print("intersection size: 0 (one of the sets is empty)", file=out)
        return 0
    universe = args.universe or int(max(set_a.max(), set_b.max())) + 1
    config = BatmapConfig()
    family = HashFamily.create(universe, shift=config.shift_for_universe(universe),
                               rng=args.seed)
    if args.compute == "parallel":
        # One build: the printed stats must describe the same batmaps that
        # produced the count (the collection path clamps r >= 4).
        collection = BatmapCollection.build([set_a, set_b], universe,
                                            config=config, family=family,
                                            sort_by_size=False)
        bm_a, bm_b = collection.batmap(0), collection.batmap(1)
        backend = recommended_backend(collection, workers=args.workers)
        counts = collection.count_all_pairs(parallel=True, workers=args.workers)
        batmap_count = int(counts[0, 1])
        note = (" (parallel fell back: input below the pool pay-off floor)"
                if backend == "batch" else "")
        print(f"count backend: {backend}{note}", file=out)
    else:
        bm_a = build_batmap(set_a, universe, family=family, config=config)
        bm_b = build_batmap(set_b, universe, family=family, config=config)
        batmap_count = count_common(bm_a, bm_b)
    merge_count = intersection_size_numpy(set_a, set_b)
    print(f"|A| = {set_a.size}, |B| = {set_b.size}, universe = {universe}", file=out)
    print(f"intersection size (batmap): {batmap_count}", file=out)
    print(f"intersection size (merge) : {merge_count}", file=out)
    print(f"batmap sizes: {bm_a.memory_bytes} B and {bm_b.memory_bytes} B "
          f"({len(bm_a.failed) + len(bm_b.failed)} failed insertions)", file=out)
    return 0


# --------------------------------------------------------------------------- #
def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "mine":
        return _cmd_mine(args, out)
    if args.command == "generate":
        return _cmd_generate(args, out)
    if args.command == "intersect":
        return _cmd_intersect(args, out)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
