"""Dataset containers and generators used by the experiments.

* :class:`~repro.datasets.transactions.TransactionDatabase` — horizontal
  transaction container with vertical conversion and statistics.
* :func:`~repro.datasets.synthetic.generate_density_instance` — the paper's
  Bernoulli(p) generator (fixed total instance size).
* :func:`~repro.datasets.ibm_quest.generate_quest_dataset` — IBM Quest-style
  market baskets (T40I10D100K surrogate).
* :func:`~repro.datasets.webdocs.generate_webdocs_like` — WebDocs surrogate
  with Zipfian vocabulary growth.
* :mod:`~repro.datasets.fimi_io` — FIMI text format I/O.
* :mod:`~repro.datasets.streaming` — bounded-memory chunked readers for the
  out-of-core pipeline.
"""

from repro.datasets.fimi_io import parse_fimi_line, parse_fimi_lines, read_fimi, write_fimi
from repro.datasets.streaming import (
    FimiChunk,
    FimiStats,
    collect_transactions,
    iter_fimi_chunks,
    scan_fimi_stats,
)
from repro.datasets.ibm_quest import QuestParameters, generate_quest_dataset, generate_t40i10
from repro.datasets.synthetic import generate_density_instance, generate_fixed_transactions
from repro.datasets.transactions import TransactionDatabase
from repro.datasets.webdocs import generate_webdocs_like, vocabulary_growth

__all__ = [
    "TransactionDatabase",
    "generate_density_instance",
    "generate_fixed_transactions",
    "QuestParameters",
    "generate_quest_dataset",
    "generate_t40i10",
    "generate_webdocs_like",
    "vocabulary_growth",
    "read_fimi",
    "write_fimi",
    "parse_fimi_line",
    "parse_fimi_lines",
    "FimiChunk",
    "FimiStats",
    "iter_fimi_chunks",
    "scan_fimi_stats",
    "collect_transactions",
]
