"""A WebDocs-like synthetic dataset (surrogate for the FIMI WebDocs instance).

Figure 10 of the paper runs the miners on growing prefixes of WebDocs, a
document/word incidence dataset from the FIMI repository whose defining
difficulty is that "the number of distinct items in this instance increases
rapidly" with the prefix length.  The real dataset (~1.4 GB) is not
redistributable here, so this module generates a surrogate with the same
structural properties:

* word frequencies follow a Zipf law (a small core of extremely common words
  plus a long tail of rare ones);
* each document draws its words from the Zipf distribution, so longer
  prefixes keep discovering new vocabulary — the distinct-item count grows
  roughly like a power law of the prefix size;
* document lengths are log-normal, as in real text collections.

The substitution is documented in DESIGN.md; the Figure 10 harness only
relies on the vocabulary-growth property, which the surrogate reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require_positive

__all__ = ["generate_webdocs_like", "vocabulary_growth"]


def generate_webdocs_like(
    n_documents: int,
    *,
    vocabulary_size: int = 50_000,
    zipf_exponent: float = 1.05,
    mean_length: float = 120.0,
    sigma_length: float = 0.8,
    rng: RngLike = None,
    name: str | None = None,
) -> TransactionDatabase:
    """Generate ``n_documents`` word-set transactions with Zipfian vocabulary.

    Parameters default to values that give WebDocs-like behaviour at small
    scale: a few hundred documents already touch thousands of distinct words,
    and the vocabulary keeps growing with every additional prefix block.
    """
    require_positive(n_documents, "n_documents")
    require_positive(vocabulary_size, "vocabulary_size")
    require_positive(mean_length, "mean_length")
    rng = make_rng(rng)

    ranks = np.arange(1, vocabulary_size + 1, dtype=np.float64)
    weights = ranks ** (-zipf_exponent)
    weights /= weights.sum()

    lengths = np.maximum(
        1, rng.lognormal(mean=np.log(mean_length), sigma=sigma_length, size=n_documents)
    ).astype(np.int64)
    lengths = np.minimum(lengths, vocabulary_size)

    transactions: list[np.ndarray] = []
    for length in lengths.tolist():
        # Sampling with replacement then deduplicating mimics word repetition
        # inside a document collapsing into a set of distinct words.
        words = rng.choice(vocabulary_size, size=length, replace=True, p=weights)
        transactions.append(np.unique(words.astype(np.int64)))
    return TransactionDatabase(
        transactions=transactions,
        n_items=vocabulary_size,
        name=name or f"webdocs_like(D={n_documents},V={vocabulary_size})",
    )


def vocabulary_growth(db: TransactionDatabase, prefix_sizes) -> list[tuple[int, int]]:
    """Distinct-item counts of growing prefixes — the quantity that drives Figure 10.

    Returns ``[(prefix_size, distinct_items), ...]`` for each requested prefix.
    """
    out: list[tuple[int, int]] = []
    seen: set[int] = set()
    cursor = 0
    for size in sorted(int(s) for s in prefix_sizes):
        size = min(size, db.n_transactions)
        while cursor < size:
            seen.update(db.transactions[cursor].tolist())
            cursor += 1
        out.append((size, len(seen)))
    return out
