"""Bounded-memory chunked readers over FIMI transaction streams.

The in-memory reader (:func:`repro.datasets.fimi_io.read_fimi`) materialises
every transaction before anything downstream runs — fine for the paper's
figures, a hard ceiling for the out-of-core pipeline, whose whole point is
that the database never fits.  This module streams the same format with a
resident set bounded by one chunk:

* :func:`iter_fimi_chunks` — yields :class:`FimiChunk` batches of parsed
  transactions (at most ``chunk_transactions`` per chunk), preserving the
  global transaction ids;
* :func:`scan_fimi_stats` — one streaming pass computing exactly the
  aggregates the mining planner needs before any batmap exists
  (transaction count, item-id range, occurrence total, per-item supports);
* :func:`collect_transactions` — one streaming pass extracting a *sparse*
  subset of transactions by id (the repair phase needs the handful of
  transactions whose cuckoo insertions failed, not the whole database).

Line semantics (blank lines, ``#`` comments, error reporting) are shared
with the in-memory reader through
:func:`~repro.datasets.fimi_io.parse_fimi_line`, so a file parses to the
same transactions on both paths — the foundation of the sharded pipeline's
bit-identity guarantee.  Malformed lines raise
:class:`~repro.core.errors.DataFormatError` (a ``DatasetError``) naming the
file and line.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.datasets.fimi_io import parse_fimi_line
from repro.utils.validation import require_positive

__all__ = [
    "DEFAULT_CHUNK_TRANSACTIONS",
    "DEFAULT_CHUNK_ITEMS",
    "FimiChunk",
    "FimiStats",
    "iter_fimi_chunks",
    "scan_fimi_stats",
    "collect_transactions",
]

#: Default transactions per chunk: small enough that a chunk of short
#: transactions (whose cost is ndarray object overhead) stays around a
#: megabyte, large enough that per-chunk Python overhead is negligible.
DEFAULT_CHUNK_TRANSACTIONS = 8192

#: Occurrence cap per chunk — the binding limit for *long* transactions,
#: whose cost is item data rather than per-array overhead.  A chunk flushes
#: when either cap is reached.
DEFAULT_CHUNK_ITEMS = 1 << 16


@dataclass(frozen=True)
class FimiChunk:
    """A contiguous batch of parsed transactions from one stream.

    ``transactions[k]`` is the sorted duplicate-free item array of global
    transaction id ``start_tid + k`` — ids are global to the stream, so a
    consumer can partition occurrences without ever seeing the whole file.
    """

    start_tid: int
    transactions: list

    @property
    def n_transactions(self) -> int:
        return len(self.transactions)

    @property
    def end_tid(self) -> int:
        """One past the last transaction id in this chunk."""
        return self.start_tid + len(self.transactions)

    def tids(self) -> np.ndarray:
        return np.arange(self.start_tid, self.end_tid, dtype=np.int64)


def _iter_lines(source) -> Iterator[str]:
    if isinstance(source, (str, Path)):
        with Path(source).open("r", encoding="utf-8") as handle:
            yield from handle
    else:
        yield from source


def _source_name(source) -> str:
    if isinstance(source, (str, Path)):
        return Path(source).stem
    return "fimi"


def iter_fimi_chunks(
    source: str | Path | Iterable[str],
    *,
    chunk_transactions: int = DEFAULT_CHUNK_TRANSACTIONS,
    chunk_items: int = DEFAULT_CHUNK_ITEMS,
    max_transactions: int | None = None,
    name: str | None = None,
) -> Iterator[FimiChunk]:
    """Stream a FIMI file (or iterable of lines) as :class:`FimiChunk` batches.

    A chunk flushes at ``chunk_transactions`` parsed transactions or
    ``chunk_items`` total occurrences, whichever comes first — the two caps
    bound resident memory for overhead-dominated (short) and data-dominated
    (long) transactions alike.  Blank lines and comments are skipped without
    consuming a transaction id, exactly as the in-memory reader does.  An
    empty input yields no chunks (the *consumer* decides whether that is an
    error — aggregation passes want to distinguish "empty file" from "short
    file").
    """
    require_positive(chunk_transactions, "chunk_transactions")
    require_positive(chunk_items, "chunk_items")
    name = name if name is not None else _source_name(source)
    batch: list[np.ndarray] = []
    batch_items = 0
    start_tid = 0
    produced = 0
    for lineno, line in enumerate(_iter_lines(source), start=1):
        if max_transactions is not None and produced >= max_transactions:
            break
        items = parse_fimi_line(line, lineno, name)
        if items is None:
            continue
        batch.append(items)
        batch_items += items.size
        produced += 1
        if len(batch) >= chunk_transactions or batch_items >= chunk_items:
            yield FimiChunk(start_tid=start_tid, transactions=batch)
            start_tid += len(batch)
            batch = []
            batch_items = 0
    if batch:
        yield FimiChunk(start_tid=start_tid, transactions=batch)


@dataclass
class FimiStats:
    """Aggregates of one streaming pass — the planner's view of a dataset.

    Everything the out-of-core pipeline must know *before* building any
    batmap: the element universe (``n_transactions``), the item-id range,
    the instance size, and per-item supports (each item's tidlist length —
    which fixes its hash range and therefore its packed width).
    """

    name: str
    n_transactions: int
    n_items: int                 #: max item id + 1 (0 for an empty stream)
    total_items: int             #: occurrence count — the paper's instance size
    item_supports: np.ndarray    #: shape (n_items,) tidlist length per item

    @property
    def density(self) -> float:
        cells = self.n_transactions * self.n_items
        return self.total_items / cells if cells else 0.0


def scan_fimi_stats(
    source: str | Path | Iterable[str],
    *,
    chunk_transactions: int = DEFAULT_CHUNK_TRANSACTIONS,
    chunk_items: int = DEFAULT_CHUNK_ITEMS,
    max_transactions: int | None = None,
    name: str | None = None,
) -> FimiStats:
    """One bounded-memory pass computing :class:`FimiStats` for a stream.

    Resident memory is one chunk plus one ``int64`` array of length
    ``max_item_id + 1`` (grown geometrically as larger ids appear).
    """
    name = name if name is not None else _source_name(source)
    supports = np.zeros(1024, dtype=np.int64)
    max_id = -1
    n_transactions = 0
    total_items = 0
    for chunk in iter_fimi_chunks(
        source,
        chunk_transactions=chunk_transactions,
        chunk_items=chunk_items,
        max_transactions=max_transactions,
        name=name,
    ):
        n_transactions = chunk.end_tid
        for items in chunk.transactions:
            if items.size == 0:
                continue
            top = int(items[-1])
            if top > max_id:
                max_id = top
                if max_id >= supports.size:
                    grown = np.zeros(
                        max(max_id + 1, 2 * supports.size), dtype=np.int64
                    )
                    grown[: supports.size] = supports
                    supports = grown
            total_items += items.size
            supports[items] += 1
    n_items = max_id + 1
    return FimiStats(
        name=name,
        n_transactions=n_transactions,
        n_items=n_items,
        total_items=total_items,
        item_supports=supports[:n_items].copy(),
    )


def collect_transactions(
    source: str | Path | Iterable[str],
    tids,
    *,
    chunk_transactions: int = DEFAULT_CHUNK_TRANSACTIONS,
    chunk_items: int = DEFAULT_CHUNK_ITEMS,
    max_transactions: int | None = None,
    name: str | None = None,
) -> dict:
    """Extract the transactions with the given global ids in one streaming pass.

    Returns ``{tid: sorted item array}``; memory is bounded by one chunk
    plus the requested transactions (the repair phase requests only the few
    tids with failed insertions).  Missing tids are simply absent from the
    result.
    """
    wanted = {int(t) for t in tids}
    out: dict[int, np.ndarray] = {}
    if not wanted:
        return out
    last = max(wanted)
    for chunk in iter_fimi_chunks(
        source,
        chunk_transactions=chunk_transactions,
        chunk_items=chunk_items,
        max_transactions=max_transactions,
        name=name,
    ):
        if chunk.start_tid > last:
            break
        for offset, items in enumerate(chunk.transactions):
            tid = chunk.start_tid + offset
            if tid in wanted:
                out[tid] = items
    return out
