"""Reading and writing the FIMI repository's transaction text format.

The Frequent Itemset Mining Implementations repository (fimi.cs.helsinki.fi),
from which the paper takes WebDocs, stores one transaction per line as
whitespace-separated integer item ids.  This module reads and writes that
format so users can run the pipeline on real FIMI datasets when they have
them locally.

All readers raise :class:`~repro.core.errors.DataFormatError` (a
:class:`~repro.core.errors.DatasetError`) with the source name and line
number on malformed input — a bare ``ValueError`` traceback out of ``int()``
never escapes to the caller.  The line-level parser is shared with the
bounded-memory chunked readers of :mod:`repro.datasets.streaming`, so the
two paths cannot drift apart on comment/blank-line/error semantics.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

from repro.core.errors import DataFormatError
from repro.datasets.transactions import TransactionDatabase

__all__ = ["read_fimi", "write_fimi", "parse_fimi_lines", "parse_fimi_line"]


def parse_fimi_line(line: str, lineno: int, source: str = "fimi") -> np.ndarray | None:
    """Parse one FIMI line into a sorted duplicate-free ``int64`` array.

    Returns ``None`` for blank lines and ``#`` comments.  Raises
    :class:`~repro.core.errors.DataFormatError` naming ``source`` and the
    1-based ``lineno`` on non-integer tokens or negative ids.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    try:
        items = np.array([int(tok) for tok in stripped.split()], dtype=np.int64)
    except ValueError as exc:
        raise DataFormatError(
            f"{source}: line {lineno}: non-integer token in {stripped!r}"
        ) from exc
    if items.size and items.min() < 0:
        raise DataFormatError(f"{source}: line {lineno}: negative item id")
    return np.unique(items)


def parse_fimi_lines(
    lines: Iterable[str],
    *,
    n_items: int | None = None,
    max_transactions: int | None = None,
    name: str = "fimi",
) -> TransactionDatabase:
    """Parse an iterable of FIMI lines into a :class:`TransactionDatabase`.

    Item ids are used verbatim (FIMI datasets are 0- or 1-based depending on
    the source); ``n_items`` defaults to ``max_id + 1``.
    """
    transactions: list[np.ndarray] = []
    max_id = -1
    for lineno, line in enumerate(lines, start=1):
        if max_transactions is not None and len(transactions) >= max_transactions:
            break
        items = parse_fimi_line(line, lineno, name)
        if items is None:
            continue
        if items.size:
            max_id = max(max_id, int(items[-1]))
        transactions.append(items)
    if not transactions:
        raise DataFormatError(f"{name}: no transactions found in input")
    inferred = max_id + 1 if max_id >= 0 else 1
    if n_items is None:
        n_items = inferred
    elif n_items < inferred:
        raise DataFormatError(
            f"n_items={n_items} is smaller than the largest item id + 1 ({inferred})"
        )
    return TransactionDatabase(transactions=transactions, n_items=n_items, name=name)


def read_fimi(
    path: str | Path,
    *,
    n_items: int | None = None,
    max_transactions: int | None = None,
) -> TransactionDatabase:
    """Read a FIMI-format file (optionally only its first ``max_transactions`` lines)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return parse_fimi_lines(
            handle,
            n_items=n_items,
            max_transactions=max_transactions,
            name=path.stem,
        )


def write_fimi(db: TransactionDatabase, path_or_handle: str | Path | TextIO) -> None:
    """Write a database in FIMI format (one transaction per line)."""
    def _write(handle: TextIO) -> None:
        for t in db.transactions:
            handle.write(" ".join(str(int(x)) for x in t.tolist()))
            handle.write("\n")

    if hasattr(path_or_handle, "write"):
        _write(path_or_handle)  # type: ignore[arg-type]
    else:
        with Path(path_or_handle).open("w", encoding="utf-8") as handle:
            _write(handle)
