"""Transaction database container shared by generators, miners and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import DataFormatError

__all__ = ["TransactionDatabase"]


@dataclass
class TransactionDatabase:
    """A horizontal transaction database over items ``{0..n_items-1}``.

    ``transactions[t]`` is a sorted, duplicate-free ``int64`` array of item
    ids present in transaction ``t``.  The class offers the conversions and
    statistics that every component of the pipeline needs: vertical tidlists,
    density, prefixes (for the WebDocs experiment), and item-support
    filtering (the preprocessing step all miners share).
    """

    transactions: list[np.ndarray]
    n_items: int
    name: str = "unnamed"
    _tidlists: list[np.ndarray] | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.n_items <= 0:
            raise DataFormatError(f"n_items must be positive, got {self.n_items}")
        cleaned = []
        for idx, t in enumerate(self.transactions):
            arr = np.unique(np.asarray(t, dtype=np.int64))
            if arr.size and (arr.min() < 0 or arr.max() >= self.n_items):
                raise DataFormatError(
                    f"transaction {idx} contains an item outside [0, {self.n_items})"
                )
            cleaned.append(arr)
        self.transactions = cleaned

    # ------------------------------------------------------------------ #
    # Basic statistics
    # ------------------------------------------------------------------ #
    @property
    def n_transactions(self) -> int:
        return len(self.transactions)

    @property
    def total_items(self) -> int:
        """Total number of (transaction, item) occurrences — the paper's "instance size"."""
        return int(sum(t.size for t in self.transactions))

    @property
    def density(self) -> float:
        """Fraction of the ``n_transactions x n_items`` matrix that is populated."""
        cells = self.n_transactions * self.n_items
        return self.total_items / cells if cells else 0.0

    def item_supports(self) -> np.ndarray:
        """Support (number of containing transactions) of every item."""
        counts = np.zeros(self.n_items, dtype=np.int64)
        for t in self.transactions:
            counts[t] += 1
        return counts

    def distinct_items_used(self) -> int:
        """Number of items with non-zero support (the WebDocs experiment's x-axis driver)."""
        return int(np.count_nonzero(self.item_supports()))

    @property
    def average_transaction_length(self) -> float:
        return self.total_items / self.n_transactions if self.n_transactions else 0.0

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def tidlists(self) -> list[np.ndarray]:
        """Vertical format: for each item, the sorted array of transaction ids (cached)."""
        if self._tidlists is None:
            lists: list[list[int]] = [[] for _ in range(self.n_items)]
            for tid, t in enumerate(self.transactions):
                for item in t.tolist():
                    lists[item].append(tid)
            self._tidlists = [np.asarray(v, dtype=np.int64) for v in lists]
        return self._tidlists

    def prefix(self, n_transactions: int, name: str | None = None) -> "TransactionDatabase":
        """The database restricted to its first ``n_transactions`` transactions."""
        n_transactions = min(n_transactions, self.n_transactions)
        return TransactionDatabase(
            transactions=[t.copy() for t in self.transactions[:n_transactions]],
            n_items=self.n_items,
            name=name or f"{self.name}[:{n_transactions}]",
        )

    def filter_by_support(self, min_support: int) -> tuple["TransactionDatabase", np.ndarray]:
        """Drop infrequent items and relabel the survivors densely.

        Returns the filtered database and the array mapping new item ids to
        the original ids.  This is the preprocessing step the paper assumes
        every method performs ("the interesting comparison is for the case
        where there are only frequent items", Section I-B2).
        """
        supports = self.item_supports()
        kept = np.nonzero(supports >= min_support)[0]
        remap = -np.ones(self.n_items, dtype=np.int64)
        remap[kept] = np.arange(kept.size)
        new_transactions = []
        for t in self.transactions:
            mapped = remap[t]
            new_transactions.append(np.sort(mapped[mapped >= 0]))
        filtered = TransactionDatabase(
            transactions=new_transactions,
            n_items=max(1, int(kept.size)),
            name=f"{self.name}|minsup={min_support}",
        )
        return filtered, kept

    def split(self, parts: int) -> list["TransactionDatabase"]:
        """Split into ``parts`` databases of (nearly) equal transaction count.

        Used by the Figure 9 experiment, which simulates multi-core execution
        of Apriori / FP-growth by running each part independently.
        """
        if parts <= 0:
            raise ValueError(f"parts must be positive, got {parts}")
        out = []
        bounds = np.linspace(0, self.n_transactions, parts + 1).astype(int)
        for p in range(parts):
            out.append(TransactionDatabase(
                transactions=[t.copy() for t in self.transactions[bounds[p]:bounds[p + 1]]],
                n_items=self.n_items,
                name=f"{self.name}#part{p}",
            ))
        return out

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.n_transactions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransactionDatabase(name={self.name!r}, transactions={self.n_transactions}, "
            f"items={self.n_items}, total={self.total_items}, density={self.density:.4f})"
        )
