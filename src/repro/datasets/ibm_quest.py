"""IBM Quest-style synthetic market-basket generator (T??I??D??? datasets).

The paper cites throughput numbers of Fang et al. on ``T40I10D100K`` — a
dataset family produced by the IBM Quest generator, parameterised by the
average transaction length ``T``, the average size of maximal potentially
frequent itemsets ``I`` and the number of transactions ``D``.  The original
generator is not redistributable, so this module implements the published
algorithm (Agrawal & Srikant, VLDB 1994, Section 4.1):

1. draw a pool of "potentially frequent" itemsets whose sizes are Poisson
   with mean ``I``, with items picked with a Zipf-like skew and partial
   overlap between consecutive itemsets;
2. assign each pool itemset a weight (exponential) and a corruption level;
3. build each transaction by sampling pool itemsets until the Poisson-drawn
   transaction length is filled, dropping items according to the corruption
   level.

The result has the clustered co-occurrence structure real market-basket data
shows, unlike the independent Bernoulli generator of
:mod:`repro.datasets.synthetic`.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.transactions import TransactionDatabase
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require_positive

__all__ = ["QuestParameters", "generate_quest_dataset", "generate_t40i10"]

from dataclasses import dataclass


@dataclass(frozen=True)
class QuestParameters:
    """Knobs of the Quest generator, named after the original paper."""

    n_items: int = 1000
    n_transactions: int = 10_000
    avg_transaction_length: float = 10.0   # T
    avg_pattern_length: float = 4.0        # I
    n_patterns: int = 200                  # |L|, size of the pool of potential itemsets
    correlation: float = 0.5               # fraction of items reused from previous pattern
    corruption_mean: float = 0.5           # mean corruption level

    def __post_init__(self) -> None:
        require_positive(self.n_items, "n_items")
        require_positive(self.n_transactions, "n_transactions")
        require_positive(self.avg_transaction_length, "avg_transaction_length")
        require_positive(self.avg_pattern_length, "avg_pattern_length")
        require_positive(self.n_patterns, "n_patterns")


def _draw_patterns(params: QuestParameters, rng: np.random.Generator) -> list[np.ndarray]:
    """Draw the pool of potentially frequent itemsets."""
    patterns: list[np.ndarray] = []
    # Zipf-ish item popularity so some items are much more frequent than others.
    weights = 1.0 / np.arange(1, params.n_items + 1) ** 0.75
    weights /= weights.sum()
    previous: np.ndarray | None = None
    for _ in range(params.n_patterns):
        size = max(1, int(rng.poisson(params.avg_pattern_length)))
        size = min(size, params.n_items)
        items: list[int] = []
        if previous is not None and previous.size:
            n_reuse = int(round(params.correlation * min(size, previous.size)))
            if n_reuse:
                items.extend(rng.choice(previous, size=n_reuse, replace=False).tolist())
        while len(items) < size:
            candidate = int(rng.choice(params.n_items, p=weights))
            if candidate not in items:
                items.append(candidate)
        pattern = np.unique(np.asarray(items, dtype=np.int64))
        patterns.append(pattern)
        previous = pattern
    return patterns


def generate_quest_dataset(
    params: QuestParameters = QuestParameters(),
    *,
    rng: RngLike = None,
    name: str | None = None,
) -> TransactionDatabase:
    """Generate a Quest-style dataset with the given parameters."""
    rng = make_rng(rng)
    patterns = _draw_patterns(params, rng)
    pattern_weights = rng.exponential(1.0, size=len(patterns))
    pattern_weights /= pattern_weights.sum()
    corruption = np.clip(rng.normal(params.corruption_mean, 0.1, size=len(patterns)), 0.0, 0.95)

    transactions: list[np.ndarray] = []
    for _ in range(params.n_transactions):
        target_len = max(1, int(rng.poisson(params.avg_transaction_length)))
        chosen: set[int] = set()
        guard = 0
        while len(chosen) < target_len and guard < 50:
            guard += 1
            k = int(rng.choice(len(patterns), p=pattern_weights))
            pattern = patterns[k]
            keep = rng.random(pattern.size) >= corruption[k]
            for item in pattern[keep].tolist():
                if len(chosen) >= target_len:
                    break
                chosen.add(int(item))
        transactions.append(np.array(sorted(chosen), dtype=np.int64))
    return TransactionDatabase(
        transactions=transactions,
        n_items=params.n_items,
        name=name or (
            f"quest(T{params.avg_transaction_length:g}"
            f"I{params.avg_pattern_length:g}D{params.n_transactions})"
        ),
    )


def generate_t40i10(
    n_transactions: int = 1000,
    n_items: int = 1000,
    *,
    rng: RngLike = None,
) -> TransactionDatabase:
    """A scaled-down surrogate of ``T40I10D100K`` (Fang et al.'s 4%-density dataset)."""
    params = QuestParameters(
        n_items=n_items,
        n_transactions=n_transactions,
        avg_transaction_length=40.0,
        avg_pattern_length=10.0,
        n_patterns=max(50, n_items // 10),
    )
    return generate_quest_dataset(params, rng=rng, name=f"T40I10D{n_transactions}")
