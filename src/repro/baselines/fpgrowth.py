"""FP-growth frequent itemset mining (Han, Pei, Yin & Mao, DMKD 2004).

FP-growth compresses the transaction database into a prefix tree (the
FP-tree) whose nodes are threaded per item through a header table, and then
mines frequent itemsets recursively from *conditional* FP-trees without
generating candidates.  It is the strongest CPU competitor in the paper's
experiments: linear scaling in the number of distinct items (Figures 5-7) but
sensitive to density (Figure 8).

The implementation is a faithful, single-threaded Python version:

* items inside a transaction are reordered by decreasing global frequency
  (ties broken by item id) before insertion — the standard FP-tree trick that
  maximises prefix sharing;
* mining walks the header table from the least frequent item upwards,
  building conditional pattern bases and recursing;
* an optional ``max_size`` restricts the output (``max_size=2`` gives
  frequent pair mining, the paper's case study).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import require, require_positive

__all__ = ["FPNode", "FPTree", "FPGrowthMiner"]


@dataclass
class FPNode:
    """One node of an FP-tree: an item, its count and tree/sibling links."""

    item: int
    count: int = 0
    parent: "FPNode | None" = None
    children: dict[int, "FPNode"] = field(default_factory=dict)
    next_same_item: "FPNode | None" = None  # header-table thread


class FPTree:
    """An FP-tree with its header table.

    ``item_order`` maps item -> rank (0 = most frequent); transactions are
    inserted with items sorted by rank so common prefixes share nodes.
    """

    def __init__(self, item_order: dict[int, int]) -> None:
        self.root = FPNode(item=-1)
        self.item_order = item_order
        self.header: dict[int, FPNode] = {}
        self.header_tail: dict[int, FPNode] = {}
        self.node_count = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_transactions(cls, transactions, min_support: int) -> tuple["FPTree", dict[int, int]]:
        """Build the global FP-tree; returns the tree and the item support map."""
        require_positive(min_support, "min_support")
        supports: dict[int, int] = {}
        cached = []
        for t in transactions:
            items = np.unique(np.asarray(t, dtype=np.int64)).tolist()
            cached.append(items)
            for item in items:
                supports[item] = supports.get(item, 0) + 1
        frequent = {i: s for i, s in supports.items() if s >= min_support}
        # rank: most frequent first, ties by item id for determinism
        ranked = sorted(frequent, key=lambda i: (-frequent[i], i))
        item_order = {item: rank for rank, item in enumerate(ranked)}
        tree = cls(item_order)
        for items in cached:
            filtered = [i for i in items if i in item_order]
            filtered.sort(key=lambda i: item_order[i])
            if filtered:
                tree.insert(filtered, 1)
        return tree, frequent

    def insert(self, ordered_items: list[int], count: int) -> None:
        """Insert one (already rank-ordered) transaction with multiplicity ``count``."""
        node = self.root
        for item in ordered_items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item=item, parent=node)
                node.children[item] = child
                self.node_count += 1
                # thread into the header list
                if item not in self.header:
                    self.header[item] = child
                else:
                    self.header_tail[item].next_same_item = child
                self.header_tail[item] = child
            child.count += count
            node = child

    # ------------------------------------------------------------------ #
    def prefix_paths(self, item: int) -> list[tuple[list[int], int]]:
        """Conditional pattern base of ``item``: (path items, count) per occurrence."""
        paths: list[tuple[list[int], int]] = []
        node = self.header.get(item)
        while node is not None:
            path: list[int] = []
            parent = node.parent
            while parent is not None and parent.item != -1:
                path.append(parent.item)
                parent = parent.parent
            if path:
                path.reverse()
                paths.append((path, node.count))
            node = node.next_same_item
        return paths

    def is_empty(self) -> bool:
        return not self.root.children

    def single_path(self) -> list[tuple[int, int]] | None:
        """If the tree is a single chain, return its (item, count) list, else None."""
        path = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            node = next(iter(node.children.values()))
            path.append((node.item, node.count))
        return path

    @property
    def memory_bytes(self) -> int:
        """Rough footprint model: ~90 bytes per node (Python object overhead excluded,
        this models a C implementation's node of pointers + counters)."""
        return 90 * self.node_count


class FPGrowthMiner:
    """Recursive FP-growth miner."""

    def __init__(self, *, max_size: int | None = None) -> None:
        if max_size is not None:
            require(max_size >= 1, f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self.peak_memory_bytes = 0

    # ------------------------------------------------------------------ #
    def mine(self, transactions, n_items: int, min_support: int) -> dict[tuple[int, ...], int]:
        """Return every frequent itemset (as a sorted tuple) with its support."""
        require_positive(n_items, "n_items")
        tree, item_supports = FPTree.from_transactions(transactions, min_support)
        if item_supports and max(item_supports) >= n_items:
            raise ValueError("item id out of range")
        self.peak_memory_bytes = tree.memory_bytes
        out: dict[tuple[int, ...], int] = {}
        for item, support in item_supports.items():
            out[(int(item),)] = int(support)
        self._grow(tree, [], min_support, out)
        return out

    def mine_pairs(self, transactions, n_items: int,
                   min_support: int) -> dict[tuple[int, int], int]:
        """Frequent pair mining only."""
        miner = FPGrowthMiner(max_size=2)
        result = miner.mine(transactions, n_items, min_support)
        self.peak_memory_bytes = miner.peak_memory_bytes
        return {k: v for k, v in result.items() if len(k) == 2}

    # ------------------------------------------------------------------ #
    def _grow(
        self,
        tree: FPTree,
        suffix: list[int],
        min_support: int,
        out: dict[tuple[int, ...], int],
    ) -> None:
        if self.max_size is not None and len(suffix) >= self.max_size:
            return
        # Single-path shortcut: every combination of the path is frequent.
        chain = tree.single_path()
        if chain is not None:
            self._emit_chain_combinations(chain, suffix, min_support, out)
            return
        # Walk items from least to most frequent (reverse rank order).
        items = sorted(tree.header, key=lambda i: tree.item_order[i], reverse=True)
        for item in items:
            support = 0
            node = tree.header[item]
            while node is not None:
                support += node.count
                node = node.next_same_item
            if support < min_support:
                continue
            new_suffix = sorted(suffix + [item])
            if len(new_suffix) > 1:
                out[tuple(int(x) for x in new_suffix)] = int(support)
            if self.max_size is not None and len(new_suffix) >= self.max_size:
                continue
            # Build the conditional tree for this item.
            paths = tree.prefix_paths(item)
            cond_supports: dict[int, int] = {}
            for path, count in paths:
                for p in path:
                    cond_supports[p] = cond_supports.get(p, 0) + count
            cond_frequent = {i for i, s in cond_supports.items() if s >= min_support}
            if not cond_frequent:
                continue
            ranked = sorted(cond_frequent, key=lambda i: (-cond_supports[i], i))
            cond_tree = FPTree({it: rk for rk, it in enumerate(ranked)})
            for path, count in paths:
                filtered = [p for p in path if p in cond_frequent]
                filtered.sort(key=lambda p: cond_tree.item_order[p])
                if filtered:
                    cond_tree.insert(filtered, count)
            self.peak_memory_bytes = max(self.peak_memory_bytes,
                                         tree.memory_bytes + cond_tree.memory_bytes)
            self._grow(cond_tree, new_suffix, min_support, out)

    def _emit_chain_combinations(
        self,
        chain: list[tuple[int, int]],
        suffix: list[int],
        min_support: int,
        out: dict[tuple[int, ...], int],
    ) -> None:
        """Emit all combinations of a single-path tree (support = min count on the path).

        Only combinations of size up to ``max_size - len(suffix)`` are
        enumerated, so pair mining over a long chain stays linear/quadratic in
        the chain length rather than exponential.
        """
        from itertools import combinations

        frequent_chain = [(item, count) for item, count in chain if count >= min_support]
        n = len(frequent_chain)
        max_extra = n if self.max_size is None else max(0, self.max_size - len(suffix))
        for size in range(1, min(n, max_extra) + 1):
            for combo in combinations(frequent_chain, size):
                support = min(count for _, count in combo)
                itemset = sorted(suffix + [item for item, _ in combo])
                if len(itemset) > 1:
                    out[tuple(int(x) for x in itemset)] = int(support)
