"""Hash-table (linear probing) set intersection.

Section II of the paper motivates batmaps by first considering plain hashing:
"If we organize the sets in hash tables (say, using linear probing or perfect
hashing) it is indeed fast to determine the common elements of two sets
S_i, S_j as we simply look up all elements from S_i in S_j ... However, the
memory access pattern of hash table lookups remains random and highly
irregular."  This module implements that strawman so the benchmarks can
quantify the comparison.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bits import next_power_of_two
from repro.utils.validation import require

__all__ = ["HashSet", "intersection_size_hash"]

_EMPTY = -1
# Knuth's multiplicative constant for 64-bit mixing.
_MULT = np.uint64(0x9E3779B97F4A7C15)


def _mix(values: np.ndarray) -> np.ndarray:
    v = values.astype(np.uint64) * _MULT
    v ^= v >> np.uint64(29)
    v *= np.uint64(0xBF58476D1CE4E5B9)
    v ^= v >> np.uint64(32)
    return v


class HashSet:
    """An open-addressing (linear probing) hash set of non-negative integers."""

    def __init__(self, elements, *, load_factor: float = 0.5) -> None:
        require(0.1 <= load_factor <= 0.9, f"load_factor must be in [0.1, 0.9], got {load_factor}")
        elements = np.unique(np.asarray(list(elements), dtype=np.int64))
        if elements.size and elements.min() < 0:
            raise ValueError("elements must be non-negative")
        self.size = int(elements.size)
        capacity = next_power_of_two(max(4, int(self.size / load_factor) + 1))
        self._mask = capacity - 1
        self._table = np.full(capacity, _EMPTY, dtype=np.int64)
        self._probe_stats = 0
        for x in elements.tolist():
            self._insert(int(x))

    @property
    def capacity(self) -> int:
        return self._table.size

    @property
    def total_probes(self) -> int:
        """Number of slots inspected so far (insertions + lookups) — a proxy
        for the irregular memory traffic the paper criticises."""
        return self._probe_stats

    def _slot(self, x: int) -> int:
        return int(_mix(np.array([x], dtype=np.int64))[0]) & self._mask

    def _insert(self, x: int) -> None:
        idx = self._slot(x)
        while True:
            self._probe_stats += 1
            if self._table[idx] == _EMPTY:
                self._table[idx] = x
                return
            if self._table[idx] == x:
                return
            idx = (idx + 1) & self._mask

    def __contains__(self, x: int) -> bool:
        idx = self._slot(int(x))
        while True:
            self._probe_stats += 1
            v = self._table[idx]
            if v == _EMPTY:
                return False
            if v == x:
                return True
            idx = (idx + 1) & self._mask

    def __len__(self) -> int:
        return self.size

    def intersection_size(self, other: "HashSet") -> int:
        """Count common elements by probing the larger table with the smaller set."""
        small, large = (self, other) if self.size <= other.size else (other, self)
        count = 0
        for x in small._table[small._table != _EMPTY].tolist():
            if x in large:
                count += 1
        return count


def intersection_size_hash(a, b) -> int:
    """Convenience wrapper: build two hash sets and count their overlap."""
    return HashSet(a).intersection_size(HashSet(b))
