"""Horizontal pair counting with a triangular count array.

This is the "count occurrences of all pairs while scanning transactions"
strategy discussed in the paper's introduction: time proportional to the
*support* of each pair rather than to tidlist lengths, but space quadratic in
the number of frequent items — exactly the behaviour that makes Apriori blow
up in Figure 5.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.utils.validation import require, require_positive

__all__ = ["triangle_size", "triangle_index", "count_pairs_horizontal", "PairCounter"]


def triangle_size(n_items: int) -> int:
    """Number of unordered item pairs ``{i, j}`` with ``i < j < n_items``."""
    require(n_items >= 0, f"n_items must be >= 0, got {n_items}")
    return n_items * (n_items - 1) // 2


def triangle_index(i: int, j: int, n_items: int) -> int:
    """Flat index of pair ``(i, j)`` (``i < j``) in the upper-triangle layout.

    Row-major over rows ``i``, i.e. pairs are ordered
    ``(0,1), (0,2), ..., (0,n-1), (1,2), ...``.
    """
    require(0 <= i < j < n_items, f"need 0 <= i < j < n_items, got ({i}, {j}, {n_items})")
    return i * (2 * n_items - i - 1) // 2 + (j - i - 1)


class PairCounter:
    """Dense triangular array of pair counts over ``n_items`` items.

    The memory cost is ``4 * n(n-1)/2`` bytes, which for ``n = 64,000`` items
    is already ~8 GB — the quadratic wall the paper's Figure 5 shows Apriori
    hitting on a 6 GB machine.
    """

    def __init__(self, n_items: int) -> None:
        require_positive(n_items, "n_items")
        self.n_items = n_items
        self.counts = np.zeros(triangle_size(n_items), dtype=np.int64)

    def add_transaction(self, items) -> None:
        """Increment the count of every item pair present in one transaction."""
        items = np.unique(np.asarray(list(items), dtype=np.int64))
        if items.size and (items.min() < 0 or items.max() >= self.n_items):
            raise ValueError("item id out of range")
        if items.size < 2:
            return
        idx = [triangle_index(int(a), int(b), self.n_items)
               for a, b in combinations(items.tolist(), 2)]
        np.add.at(self.counts, np.asarray(idx, dtype=np.int64), 1)

    def get(self, i: int, j: int) -> int:
        if i == j:
            raise ValueError("pair counts are defined for distinct items")
        a, b = (i, j) if i < j else (j, i)
        return int(self.counts[triangle_index(a, b, self.n_items)])

    def frequent_pairs(self, min_support: int) -> list[tuple[int, int, int]]:
        """All pairs with count >= min_support, as ``(i, j, support)`` with ``i < j``."""
        out: list[tuple[int, int, int]] = []
        hot = np.nonzero(self.counts >= min_support)[0]
        for flat in hot.tolist():
            i, j = self._unflatten(flat)
            out.append((i, j, int(self.counts[flat])))
        return out

    def _unflatten(self, flat: int) -> tuple[int, int]:
        """Inverse of :func:`triangle_index`."""
        n = self.n_items
        i = 0
        offset = flat
        row_len = n - 1
        while offset >= row_len:
            offset -= row_len
            i += 1
            row_len -= 1
        return i, i + 1 + offset

    @property
    def memory_bytes(self) -> int:
        return int(self.counts.nbytes)


def count_pairs_horizontal(transactions, n_items: int,
                           min_support: int = 1) -> list[tuple[int, int, int]]:
    """Count all item pairs in a horizontal transaction list and filter by support."""
    counter = PairCounter(n_items)
    for t in transactions:
        counter.add_transaction(t)
    return counter.frequent_pairs(min_support)
