"""Eclat frequent itemset mining (Zaki et al., KDD 1997).

Eclat works on the *vertical* data format: for every item it keeps the tidlist
(set of transaction ids containing the item) and computes supports of larger
itemsets by intersecting tidlists during a depth-first traversal of the
itemset lattice.  This makes it the closest CPU relative of the batmap
approach — both intersect tidlists — the difference being that Eclat uses
sorted-list/merge-style intersection with irregular control flow, while
batmaps use the fixed element-wise comparison.

The paper mentions testing Borgelt's Eclat and finding it slower than Apriori
and FP-growth in their setting; it is included here for completeness and as
an extra series in the benchmark harnesses.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require, require_positive

__all__ = ["EclatMiner"]


class EclatMiner:
    """Depth-first vertical miner using NumPy tidlist intersections."""

    def __init__(self, *, max_size: int | None = None) -> None:
        if max_size is not None:
            require(max_size >= 1, f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size
        self.intersections_performed = 0

    # ------------------------------------------------------------------ #
    def mine(self, transactions, n_items: int, min_support: int) -> dict[tuple[int, ...], int]:
        """Return all frequent itemsets (sorted tuples) with their supports."""
        require_positive(n_items, "n_items")
        require_positive(min_support, "min_support")
        tidlists = self._vertical(transactions, n_items)
        out: dict[tuple[int, ...], int] = {}
        frequent_items = [
            (item, tids) for item, tids in enumerate(tidlists)
            if tids.size >= min_support
        ]
        for item, tids in frequent_items:
            out[(item,)] = int(tids.size)
        if self.max_size == 1:
            return out
        self._dfs([(item, tids) for item, tids in frequent_items], [], min_support, out)
        return out

    def mine_pairs(self, transactions, n_items: int,
                   min_support: int) -> dict[tuple[int, int], int]:
        miner = EclatMiner(max_size=2)
        result = miner.mine(transactions, n_items, min_support)
        self.intersections_performed = miner.intersections_performed
        return {k: v for k, v in result.items() if len(k) == 2}

    # ------------------------------------------------------------------ #
    def _vertical(self, transactions, n_items: int) -> list[np.ndarray]:
        """Convert horizontal transactions to per-item sorted tidlists."""
        lists: list[list[int]] = [[] for _ in range(n_items)]
        for tid, t in enumerate(transactions):
            items = np.unique(np.asarray(t, dtype=np.int64))
            if items.size and (items.min() < 0 or items.max() >= n_items):
                raise ValueError("item id out of range")
            for item in items.tolist():
                lists[item].append(tid)
        return [np.asarray(v, dtype=np.int64) for v in lists]

    def _dfs(
        self,
        prefix_classes: list[tuple[int, np.ndarray]],
        prefix: list[int],
        min_support: int,
        out: dict[tuple[int, ...], int],
    ) -> None:
        """Recursively extend each itemset in the current equivalence class."""
        if self.max_size is not None and len(prefix) + 1 >= self.max_size + 1:
            return
        for idx, (item, tids) in enumerate(prefix_classes):
            new_prefix = prefix + [item]
            extensions: list[tuple[int, np.ndarray]] = []
            for other_item, other_tids in prefix_classes[idx + 1:]:
                self.intersections_performed += 1
                common = np.intersect1d(tids, other_tids, assume_unique=True)
                if common.size >= min_support:
                    extensions.append((other_item, common))
                    itemset = tuple(sorted(new_prefix + [other_item]))
                    out[itemset] = int(common.size)
            if extensions and (self.max_size is None or len(new_prefix) + 1 < self.max_size):
                self._dfs(extensions, new_prefix, min_support, out)
