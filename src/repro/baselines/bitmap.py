"""Uncompressed vertical bitmaps — the layout of the PBI-GPU baseline.

Fang et al. [11] store, for each item, a bitmap with one bit per transaction;
the support of an item pair is the popcount of the bitwise AND of the two
bitmaps.  This layout is perfectly regular (great for GPUs) but needs
``m`` bits per item regardless of how sparse the item is — the space blow-up
the paper's BATMAP avoids.  We implement it both as a baseline intersection
algorithm and as the memory model behind experiment E9.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bits import popcount_array
from repro.utils.validation import require_positive

__all__ = ["BitmapIndex", "bitmap_intersection_size"]


class BitmapIndex:
    """Vertical bitmap representation of a family of sets over ``{0..m-1}``.

    ``words[i]`` holds the 32-bit packed bitmap of set ``i``; all bitmaps
    have identical width ``ceil(m / 32)`` words.
    """

    WORD_BITS = 32

    def __init__(self, universe_size: int, n_sets: int) -> None:
        require_positive(universe_size, "universe_size")
        require_positive(n_sets, "n_sets")
        self.universe_size = universe_size
        self.n_sets = n_sets
        self.words_per_set = (universe_size + self.WORD_BITS - 1) // self.WORD_BITS
        self.words = np.zeros((n_sets, self.words_per_set), dtype=np.uint32)

    @classmethod
    def from_sets(cls, sets, universe_size: int) -> "BitmapIndex":
        index = cls(universe_size, len(sets))
        for i, s in enumerate(sets):
            index.set_elements(i, s)
        return index

    def set_elements(self, set_index: int, elements) -> None:
        """Populate the bitmap of one set (replaces any previous contents)."""
        elements = np.unique(np.asarray(list(elements), dtype=np.int64))
        if elements.size and (elements.min() < 0 or elements.max() >= self.universe_size):
            raise ValueError("element out of range for the bitmap universe")
        row = np.zeros(self.words_per_set, dtype=np.uint32)
        if elements.size:
            word_idx = elements // self.WORD_BITS
            bit_idx = elements % self.WORD_BITS
            np.bitwise_or.at(row, word_idx, np.uint32(1) << bit_idx.astype(np.uint32))
        self.words[set_index] = row

    def contains(self, set_index: int, element: int) -> bool:
        if element < 0 or element >= self.universe_size:
            return False
        word = int(self.words[set_index, element // self.WORD_BITS])
        return bool((word >> (element % self.WORD_BITS)) & 1)

    def set_size(self, set_index: int) -> int:
        return int(popcount_array(self.words[set_index]).sum())

    def intersection_size(self, i: int, j: int) -> int:
        """Support of the pair ``{i, j}``: popcount of the bitwise AND."""
        return int(popcount_array(self.words[i] & self.words[j]).sum())

    def pairwise_counts(self) -> np.ndarray:
        """Dense matrix of all pairwise intersection sizes (AND + popcount)."""
        n = self.n_sets
        out = np.zeros((n, n), dtype=np.int64)
        for i in range(n):
            ands = self.words[i][None, :] & self.words[i:]
            counts = popcount_array(ands).sum(axis=1)
            out[i, i:] = counts
            out[i:, i] = counts
        return out

    @property
    def memory_bytes(self) -> int:
        """Total space: ``n * m`` bits, the quantity the paper contrasts with
        the information-theoretic ``~ mb log(n/b)`` bits of sparse data."""
        return int(self.words.nbytes)


def bitmap_intersection_size(a, b, universe_size: int) -> int:
    """One-off pair intersection through the bitmap layout."""
    index = BitmapIndex(universe_size, 2)
    index.set_elements(0, a)
    index.set_elements(1, b)
    return index.intersection_size(0, 1)
