"""CPU baseline algorithms the paper compares against.

* :mod:`repro.baselines.merge` — sorted-list merge intersection (Section IV-B).
* :mod:`repro.baselines.hash_intersect` — hash-table lookup intersection
  (the "initial idea" discussed in Section II).
* :mod:`repro.baselines.bitmap` — uncompressed vertical bitmaps, the layout
  used by the PBI-GPU algorithm of Fang et al. that the paper improves on.
* :mod:`repro.baselines.counting` — horizontal pair counting with a
  triangular count array (the memory-hungry approach Apriori relies on).
* :mod:`repro.baselines.apriori` — levelwise Apriori frequent itemset mining.
* :mod:`repro.baselines.fpgrowth` — FP-growth frequent itemset mining.
* :mod:`repro.baselines.eclat` — Eclat vertical-format DFS mining.
"""

from repro.baselines.merge import (
    intersect_sorted,
    intersect_sorted_galloping,
    intersection_size_sorted,
)
from repro.baselines.hash_intersect import HashSet, intersection_size_hash
from repro.baselines.bitmap import BitmapIndex, bitmap_intersection_size
from repro.baselines.counting import count_pairs_horizontal, triangle_index, triangle_size
from repro.baselines.apriori import AprioriMiner, AprioriResult
from repro.baselines.fpgrowth import FPGrowthMiner, FPTree
from repro.baselines.eclat import EclatMiner

__all__ = [
    "intersect_sorted",
    "intersect_sorted_galloping",
    "intersection_size_sorted",
    "HashSet",
    "intersection_size_hash",
    "BitmapIndex",
    "bitmap_intersection_size",
    "count_pairs_horizontal",
    "triangle_index",
    "triangle_size",
    "AprioriMiner",
    "AprioriResult",
    "FPGrowthMiner",
    "FPTree",
    "EclatMiner",
]
