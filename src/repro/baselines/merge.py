"""Sorted-list merge intersection — the classical CPU baseline.

Section IV-B of the paper compares batmaps on GPU against "a simple for-loop
[that] can be used to report all common elements, by scanning both lists",
noting that it runs slowly on modern CPUs because of branch mispredictions.
We provide the classical two-pointer merge, a galloping (exponential search)
variant that is advantageous for very skewed size ratios, and a vectorised
NumPy path used when raw Python looping would drown the measurement in
interpreter overhead.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "intersect_sorted",
    "intersect_sorted_galloping",
    "intersection_size_sorted",
    "intersection_size_numpy",
]


def _as_sorted_array(values) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("expected a 1-D array of element ids")
    if arr.size > 1 and np.any(np.diff(arr) < 0):
        raise ValueError("input list must be sorted in nondecreasing order")
    return arr


def intersect_sorted(a, b) -> np.ndarray:
    """Two-pointer merge intersection of two sorted lists; returns common elements.

    This is the textbook branchy loop: time ``O(|a| + |b|)``, control flow
    dependent on the data at every step (the property that hurts it on both
    CPUs and GPUs).
    """
    a = _as_sorted_array(a)
    b = _as_sorted_array(b)
    out: list[int] = []
    i = j = 0
    na, nb = a.size, b.size
    av, bv = a.tolist(), b.tolist()
    while i < na and j < nb:
        x, y = av[i], bv[j]
        if x < y:
            i += 1
        elif y < x:
            j += 1
        else:
            out.append(x)
            i += 1
            j += 1
    return np.array(out, dtype=np.int64)


def intersect_sorted_galloping(a, b) -> np.ndarray:
    """Galloping intersection: binary-search the larger list for runs of the smaller.

    Useful when ``|a| << |b|``; time ``O(|a| log(|b| / |a|))``.
    """
    a = _as_sorted_array(a)
    b = _as_sorted_array(b)
    if a.size > b.size:
        a, b = b, a
    out: list[int] = []
    lo = 0
    bv = b
    for x in a.tolist():
        # exponential search from lo
        bound = 1
        while lo + bound < bv.size and bv[lo + bound] < x:
            bound *= 2
        hi = min(lo + bound, bv.size)
        idx = int(np.searchsorted(bv[lo:hi], x)) + lo
        if idx < bv.size and bv[idx] == x:
            out.append(x)
            lo = idx + 1
        else:
            lo = idx
        if lo >= bv.size:
            break
    return np.array(out, dtype=np.int64)


def intersection_size_sorted(a, b) -> int:
    """Size of the intersection using the scalar two-pointer merge."""
    return int(intersect_sorted(a, b).size)


def intersection_size_numpy(a, b) -> int:
    """Vectorised intersection size (``np.intersect1d``) for sorted unique inputs.

    Used by benchmark harnesses when the pure-Python loop would only measure
    interpreter overhead; the asymptotics are the same as the merge.
    """
    a = _as_sorted_array(a)
    b = _as_sorted_array(b)
    return int(np.intersect1d(a, b, assume_unique=True).size)
