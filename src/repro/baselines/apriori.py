"""Apriori frequent itemset mining (Agrawal & Srikant, VLDB 1994).

The classical levelwise algorithm:

1. count single items, keep those with support >= min_support;
2. count all candidate pairs of frequent items using a dense triangular count
   array (this is the step with *quadratic memory* in the number of frequent
   items, which is what makes Apriori fall over in the paper's Figure 5);
3. generate size-k candidates by joining frequent (k-1)-itemsets that share a
   (k-2)-prefix, prune candidates with an infrequent subset, count supports
   by scanning the transactions, repeat.

The implementation intentionally mirrors the memory behaviour the paper
criticises: pair counting materialises the full triangle even if most pairs
never occur, because that is what gives Apriori its ``O(n^2)`` footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.baselines.counting import PairCounter
from repro.utils.validation import require, require_positive

__all__ = ["AprioriResult", "AprioriMiner"]


@dataclass
class AprioriResult:
    """Output of an Apriori run.

    ``itemsets`` maps a sorted item tuple to its support; ``peak_memory_bytes``
    records the largest candidate structure held at any point (the quantity
    plotted in Figure 5).
    """

    itemsets: dict[tuple[int, ...], int] = field(default_factory=dict)
    peak_memory_bytes: int = 0
    levels: int = 0
    candidates_generated: int = 0

    def pairs(self) -> dict[tuple[int, int], int]:
        """Only the size-2 itemsets (the frequent-pair-mining output)."""
        return {k: v for k, v in self.itemsets.items() if len(k) == 2}

    def support(self, itemset) -> int:
        key = tuple(sorted(int(x) for x in itemset))
        return self.itemsets.get(key, 0)


class AprioriMiner:
    """Levelwise Apriori miner over horizontal transaction lists.

    Parameters
    ----------
    max_size:
        Largest itemset size to mine; ``2`` restricts the run to frequent
        pair mining (the paper's case study), ``None`` mines all levels.
    """

    def __init__(self, *, max_size: int | None = None) -> None:
        if max_size is not None:
            require(max_size >= 1, f"max_size must be >= 1, got {max_size}")
        self.max_size = max_size

    # ------------------------------------------------------------------ #
    def mine(self, transactions, n_items: int, min_support: int) -> AprioriResult:
        """Mine all frequent itemsets with support >= ``min_support``."""
        require_positive(n_items, "n_items")
        require_positive(min_support, "min_support")
        transactions = [np.unique(np.asarray(t, dtype=np.int64)) for t in transactions]
        result = AprioriResult()

        # Level 1: item supports.
        item_counts = np.zeros(n_items, dtype=np.int64)
        for t in transactions:
            if t.size and (t.min() < 0 or t.max() >= n_items):
                raise ValueError("item id out of range")
            item_counts[t] += 1
        frequent_items = np.nonzero(item_counts >= min_support)[0]
        for i in frequent_items.tolist():
            result.itemsets[(int(i),)] = int(item_counts[i])
        result.levels = 1
        result.peak_memory_bytes = max(result.peak_memory_bytes, int(item_counts.nbytes))
        if self.max_size == 1 or frequent_items.size < 2:
            return result

        # Level 2: the triangular pair counter over *frequent* items.
        remap = -np.ones(n_items, dtype=np.int64)
        remap[frequent_items] = np.arange(frequent_items.size)
        counter = PairCounter(int(frequent_items.size))
        result.peak_memory_bytes = max(result.peak_memory_bytes,
                                       counter.memory_bytes + int(item_counts.nbytes))
        result.candidates_generated += counter.counts.size
        for t in transactions:
            local = remap[t]
            counter.add_transaction(local[local >= 0])
        frequent_pairs: dict[tuple[int, ...], int] = {}
        for a, b, support in counter.frequent_pairs(min_support):
            pair = (int(frequent_items[a]), int(frequent_items[b]))
            frequent_pairs[pair] = support
        result.itemsets.update(frequent_pairs)
        result.levels = 2
        if self.max_size == 2 or not frequent_pairs:
            return result

        # Levels >= 3: candidate join + prune + transaction scan.
        current = sorted(frequent_pairs)
        k = 3
        while current and (self.max_size is None or k <= self.max_size):
            candidates = self._generate_candidates(current, k)
            result.candidates_generated += len(candidates)
            if not candidates:
                break
            candidate_counts = {c: 0 for c in candidates}
            result.peak_memory_bytes = max(
                result.peak_memory_bytes,
                len(candidates) * k * 8 + counter.memory_bytes,
            )
            candidate_set = set(candidates)
            for t in transactions:
                if t.size < k:
                    continue
                items = t.tolist()
                for combo in combinations(items, k):
                    if combo in candidate_set:
                        candidate_counts[combo] += 1
            survivors = {c: s for c, s in candidate_counts.items() if s >= min_support}
            result.itemsets.update(survivors)
            result.levels = k
            current = sorted(survivors)
            k += 1
        return result

    def mine_pairs(self, transactions, n_items: int,
                   min_support: int) -> dict[tuple[int, int], int]:
        """Frequent pair mining only (Figure 6/7's workload for Apriori)."""
        miner = AprioriMiner(max_size=2)
        return miner.mine(transactions, n_items, min_support).pairs()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _generate_candidates(frequent_prev: list[tuple[int, ...]],
                             k: int) -> list[tuple[int, ...]]:
        """Join (k-1)-itemsets sharing a (k-2)-prefix, prune by subset frequency."""
        prev_set = set(frequent_prev)
        candidates: list[tuple[int, ...]] = []
        n = len(frequent_prev)
        for a_idx in range(n):
            a = frequent_prev[a_idx]
            for b_idx in range(a_idx + 1, n):
                b = frequent_prev[b_idx]
                if a[:-1] != b[:-1]:
                    # frequent_prev is sorted, so once prefixes diverge no
                    # later b shares a's prefix either.
                    break
                candidate = a + (b[-1],)
                # Prune: every (k-1)-subset must be frequent.
                if all(candidate[:i] + candidate[i + 1:] in prev_set for i in range(k)):
                    candidates.append(candidate)
        return candidates

    # ------------------------------------------------------------------ #
    @staticmethod
    def estimate_pair_memory_bytes(n_frequent_items: int) -> int:
        """Model of the level-2 candidate memory: the full triangle of int64 counts.

        Used by the Figure 5 harness to extrapolate beyond sizes that are
        practical to materialise in a test run.
        """
        return 8 * n_frequent_items * (n_frequent_items - 1) // 2
