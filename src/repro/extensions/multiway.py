"""Multi-way intersection with ordinary 2-of-3 batmaps (the paper's second sketch).

Section V's second route for intersecting more than two sets: "use batmaps to
count, for each item in S_{i1}, how many times this item appears in
S_{i2}, S_{i3}, ...  At the end one would need to sum up the counts for the
two occurrences of each item to determine if the item appeared in all sets."

Concretely, for every element ``x`` of the pivot set ``S_{i1}`` (identified by
its two stored occurrences) and every other set ``S_j``:

* ``x ∈ S_j`` iff at least one of ``x``'s two occurrences in the pivot batmap
  is position-matched by ``B_j`` (payload equality at the folded position —
  the indicator bits are not needed here because the two occurrences are
  OR-combined, not summed);
* ``x`` belongs to the intersection of all sets iff the above holds for every
  ``j``.

The functions below implement that computation on top of a
:class:`~repro.core.collection.BatmapCollection`, so the result is exact with
respect to stored elements (failed insertions are reported so callers can
repair, exactly like the pair pipeline does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.collection import BatmapCollection
from repro.utils.validation import require

__all__ = ["MultiwayResult", "multiway_intersection"]


@dataclass(frozen=True)
class MultiwayResult:
    """Result of a multi-way intersection over stored elements."""

    elements: np.ndarray           #: element ids present in every queried set (per stored copies)
    failed_involved: tuple[int, ...]  #: elements whose insertion failed somewhere (not counted)

    @property
    def size(self) -> int:
        return int(self.elements.size)


def _membership_by_position(collection: BatmapCollection, pivot_elements: np.ndarray,
                            set_index: int) -> np.ndarray:
    """For each pivot element, does batmap ``set_index`` store it? (position/payload probe)"""
    bm = collection.batmap(set_index)
    family = collection.family
    member = np.zeros(pivot_elements.size, dtype=bool)
    for t in range(3):
        pos = family.positions(t, pivot_elements, bm.r)
        entries = bm.entries[t, pos]
        payloads = family.payloads(t, pivot_elements)
        member |= (entries.astype(np.int64) & 0x7F) == payloads
    return member


def multiway_intersection(
    collection: BatmapCollection,
    set_indices,
) -> MultiwayResult:
    """Intersect several sets of a collection using batmap position probes.

    ``set_indices`` are original set indices; the first one acts as the pivot
    whose stored elements are tested for membership in all the others.
    Choosing the smallest set as pivot is the cheapest order; this function
    does that automatically.
    """
    indices = [int(i) for i in set_indices]
    require(len(indices) >= 2, "need at least two sets to intersect")
    require(len(set(indices)) == len(indices), "set indices must be distinct")

    # Pivot on the narrowest batmap.
    pivot = min(indices, key=lambda i: collection.batmap(i).set_size)
    others = [i for i in indices if i != pivot]
    pivot_bm = collection.batmap(pivot)
    pivot_elements = pivot_bm.decode_elements()

    keep = np.ones(pivot_elements.size, dtype=bool)
    for j in others:
        keep &= _membership_by_position(collection, pivot_elements, j)

    failed: set[int] = set()
    for i in indices:
        failed.update(collection.batmap(i).failed)
    return MultiwayResult(
        elements=pivot_elements[keep],
        failed_involved=tuple(sorted(failed)),
    )
