"""Multi-way intersection with ordinary 2-of-3 batmaps (the paper's second sketch).

Section V's second route for intersecting more than two sets: "use batmaps to
count, for each item in S_{i1}, how many times this item appears in
S_{i2}, S_{i3}, ...  At the end one would need to sum up the counts for the
two occurrences of each item to determine if the item appeared in all sets."

Concretely, for every element ``x`` of the pivot set ``S_{i1}`` (identified by
its two stored occurrences) and every other set ``S_j``:

* ``x ∈ S_j`` iff at least one of ``x``'s two occurrences in the pivot batmap
  is position-matched by ``B_j`` (payload equality at the folded position —
  the indicator bits are not needed here because the two occurrences are
  OR-combined, not summed);
* ``x`` belongs to the intersection of all sets iff the above holds for every
  ``j``.

The functions below implement that computation on top of a
:class:`~repro.core.collection.BatmapCollection`, so the result is exact with
respect to stored elements (failed insertions are reported so callers can
repair, exactly like the pair pipeline does).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require

__all__ = ["MultiwayResult", "multiway_intersection"]


@dataclass(frozen=True)
class MultiwayResult:
    """Result of a multi-way intersection over stored elements."""

    elements: np.ndarray           #: sorted, duplicate-free ids present in every queried set
    failed_involved: tuple[int, ...]  #: elements whose insertion failed somewhere (not counted)

    @property
    def size(self) -> int:
        return int(self.elements.size)


def multiway_intersection(
    collection,
    set_indices,
) -> MultiwayResult:
    """Intersect several sets of a collection using batmap position probes.

    ``collection`` is any *batmap provider*: an object exposing
    ``batmap(i)``, ``family`` and ``config`` — a
    :class:`~repro.core.collection.BatmapCollection`, or the serving layer's
    rehydrating engine (:class:`repro.serve.engine.SpillQueryEngine`), which
    reconstructs batmaps on demand from a spilled artifact.  Because per-set
    placement depends only on (set, family, range, config), both providers
    yield byte-identical batmaps and therefore identical results.

    ``set_indices`` are original set indices; the first one acts as the pivot
    whose stored elements are tested for membership in all the others.
    Choosing the smallest set as pivot is the cheapest order; this function
    does that automatically.

    The probes are batched: the three permuted values and payloads of the
    pivot elements are computed **once per hash function** and shared by
    every queried set (a per-set probe only re-masks the permuted value with
    that set's ``r - 1``), instead of re-applying the permutations for each
    set.  Sets are probed in ascending size order and the candidate list
    shrinks after each set, so a miss in a small set short-circuits the
    larger ones.  Each intersecting element appears exactly once in
    :attr:`MultiwayResult.elements` regardless of how many stored copies
    matched.
    """
    indices = [int(i) for i in set_indices]
    require(len(indices) >= 2, "need at least two sets to intersect")
    require(len(set(indices)) == len(indices), "set indices must be distinct")

    # Pivot on the narrowest batmap; probe the remaining sets smallest-first
    # so the candidate list shrinks as early as possible.
    indices.sort(key=lambda i: collection.batmap(i).set_size)
    pivot, others = indices[0], indices[1:]
    pivot_bm = collection.batmap(pivot)
    # decode_elements() returns a sorted, duplicate-free array: the two
    # stored copies of each pivot element collapse to one candidate here.
    candidates = pivot_bm.decode_elements()

    # One positions/payloads gather per hash function, shared across all sets.
    family = collection.family
    shift = np.int64(family.shift)
    payload_mask = np.int64(collection.config.payload_mask)
    permuted = [family.permuted(t, candidates) for t in range(3)]
    payloads = [(permuted[t] >> shift) + 1 for t in range(3)]

    for j in others:
        if candidates.size == 0:
            break
        bm = collection.batmap(j)
        position_mask = np.int64(bm.r - 1)
        member = np.zeros(candidates.size, dtype=bool)
        for t in range(3):
            entries = bm.entries[t, permuted[t] & position_mask]
            member |= (entries.astype(np.int64) & payload_mask) == payloads[t]
        candidates = candidates[member]
        permuted = [p[member] for p in permuted]
        payloads = [p[member] for p in payloads]

    failed: set[int] = set()
    for i in indices:
        failed.update(collection.batmap(i).failed)
    return MultiwayResult(
        # np.unique guarantees the exactly-once contract even if a future
        # pivot enumeration yields per-copy candidates.
        elements=np.unique(candidates),
        failed_involved=tuple(sorted(failed)),
    )
