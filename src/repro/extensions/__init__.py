"""Extensions sketched in the paper's conclusion (Section V).

* :mod:`repro.extensions.dofd1` — d-of-(d+1) batmaps whose position-aligned
  comparison witnesses intersections of up to ``d`` sets.
* :mod:`repro.extensions.multiway` — multi-way intersection with ordinary
  2-of-3 batmaps via per-item membership probes.
"""

from repro.extensions.dofd1 import (
    GeneralizedBatmap,
    GeneralizedBatmapFamily,
    multiway_intersection_size,
)
from repro.extensions.multiway import MultiwayResult, multiway_intersection

__all__ = [
    "GeneralizedBatmap",
    "GeneralizedBatmapFamily",
    "multiway_intersection_size",
    "MultiwayResult",
    "multiway_intersection",
]
