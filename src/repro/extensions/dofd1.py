"""d-of-(d+1) batmaps: the first generalisation sketched in the paper's conclusion.

Section V: "one [extension] is to use a generalization of batmaps that store
items in d out of d+1 places.  This would ensure that itemsets of size up to
d would have at least one position witnessing their intersection."

The pigeonhole argument: each of ``d`` sets omits the element from exactly
one of the ``d+1`` tables, so at most ``d`` tables are "missing" it in some
set — at least one table stores the element in *all* ``d`` sets, and a
position-aligned comparison across the ``d`` representations finds it.

This module implements that generalisation in an uncompressed form (raw
element ids in the table slots) with a generalised cuckoo insertion, plus the
``d``-way intersection counter.  The focus is correctness and the structural
guarantee; the byte-packed compression and the order-bit de-duplication trick
of the 2-of-3 case carry over but are not re-derived here (the counter
de-duplicates by decoding matched elements instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import InsertionFailure
from repro.core.hashing import Permutation, make_permutations
from repro.utils.bits import next_power_of_two
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require, require_positive, require_power_of_two

__all__ = ["GeneralizedBatmapFamily", "GeneralizedBatmap", "multiway_intersection_size"]

EMPTY = -1


@dataclass(frozen=True)
class GeneralizedBatmapFamily:
    """Shared hash permutations for d-of-(d+1) batmaps over ``{0..m-1}``."""

    universe_size: int
    d: int
    permutations: tuple[Permutation, ...]

    def __post_init__(self) -> None:
        require_positive(self.universe_size, "universe_size")
        require(self.d >= 2, f"d must be >= 2, got {self.d}")
        require(len(self.permutations) == self.d + 1,
                f"need d+1 = {self.d + 1} permutations, got {len(self.permutations)}")

    @classmethod
    def create(cls, universe_size: int, d: int, rng: RngLike = None) -> "GeneralizedBatmapFamily":
        perms = make_permutations(universe_size, d + 1, make_rng(rng))
        return cls(universe_size=universe_size, d=d, permutations=perms)

    @property
    def num_tables(self) -> int:
        return self.d + 1

    def positions(self, table: int, elements: np.ndarray, r: int) -> np.ndarray:
        require(0 <= table < self.num_tables, f"table {table} out of range")
        require_power_of_two(r, "r")
        return self.permutations[table].apply(np.asarray(elements, dtype=np.int64)) & (r - 1)


@dataclass
class GeneralizedBatmap:
    """One set stored in ``d`` of ``d+1`` tables (uncompressed element ids)."""

    family: GeneralizedBatmapFamily
    r: int
    rows: np.ndarray                       # (d+1, r) int64, EMPTY where vacant
    failed: list[int] = field(default_factory=list)
    set_size: int = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        elements,
        family: GeneralizedBatmapFamily,
        *,
        r: int | None = None,
        max_loop: int = 200,
        on_failure: str = "record",
    ) -> "GeneralizedBatmap":
        """Place every element in ``d`` of the ``d+1`` tables by cuckoo displacement."""
        require(on_failure in ("record", "raise"), "on_failure must be 'record' or 'raise'")
        elements = np.unique(np.asarray(list(elements), dtype=np.int64))
        if elements.size and (elements.min() < 0 or elements.max() >= family.universe_size):
            raise ValueError("element out of range for the family universe")
        d = family.d
        if r is None:
            # d copies of |S| elements into (d+1) r slots; keep load <= ~1/2.
            r = next_power_of_two(max(4, 2 * int(elements.size)))
        require_power_of_two(r, "r")

        rows = np.full((family.num_tables, r), EMPTY, dtype=np.int64)
        slots = {
            int(x): tuple(int(family.positions(t, np.array([x]), r)[0])
                          for t in range(family.num_tables))
            for x in elements.tolist()
        }
        failed: list[int] = []

        def insert_once(x: int) -> int:
            tau = x
            for _ in range(max_loop):
                for table in range(family.num_tables):
                    slot = slots[tau][table]
                    tau, rows[table, slot] = int(rows[table, slot]), tau
                    if tau == EMPTY:
                        return EMPTY
            return tau

        for x in elements.tolist():
            ok = True
            for _ in range(d):
                nestless = insert_once(int(x))
                if nestless == EMPTY:
                    continue
                rows[rows == x] = EMPTY
                failed.append(int(x))
                ok = False
                if nestless != x:
                    victim = insert_once(int(nestless))
                    if victim != EMPTY:
                        rows[rows == victim] = EMPTY
                        failed.append(int(victim))
                break
            if not ok and on_failure == "raise":
                raise InsertionFailure(int(x))
        return cls(family=family, r=r, rows=rows,
                   failed=sorted(set(failed)), set_size=int(elements.size))

    # ------------------------------------------------------------------ #
    @property
    def stored_elements(self) -> np.ndarray:
        return np.unique(self.rows[self.rows != EMPTY])

    def copies_per_element(self) -> dict[int, int]:
        vals, counts = np.unique(self.rows[self.rows != EMPTY], return_counts=True)
        return {int(v): int(c) for v, c in zip(vals, counts)}

    def validate(self) -> None:
        """Every stored element must occupy exactly ``d`` distinct tables at its hashed slots."""
        for x, copies in self.copies_per_element().items():
            assert copies == self.family.d, f"element {x} stored {copies} times"
            tables = np.nonzero((self.rows == x).any(axis=1))[0]
            assert tables.size == self.family.d
            for t in tables.tolist():
                expected = int(self.family.positions(t, np.array([x]), self.r)[0])
                assert self.rows[t, expected] == x


def multiway_intersection_size(batmaps: list[GeneralizedBatmap]) -> int:
    """Size of the intersection of up to ``d`` sets stored as d-of-(d+1) batmaps.

    Position-aligned comparison: for every table, positions where *all*
    batmaps store the same (non-empty) element witness that element's
    membership in every set.  The pigeonhole guarantee says every common
    element is witnessed in at least one table as long as
    ``len(batmaps) <= d``; elements witnessed in several tables are counted
    once by collecting the witnessed ids in a set.
    """
    require(len(batmaps) >= 2, "need at least two batmaps")
    family = batmaps[0].family
    for bm in batmaps:
        require(bm.family is family, "all batmaps must share one family")
    require(len(batmaps) <= family.d,
            f"the d-of-(d+1) guarantee only covers up to d = {family.d} sets")

    r_min = min(bm.r for bm in batmaps)
    witnessed: set[int] = set()
    for table in range(family.num_tables):
        # Fold every batmap's row onto the smallest range.
        folded = []
        for bm in batmaps:
            reps = bm.r // r_min
            row = bm.rows[table].reshape(reps, r_min)
            folded.append(row)
        # positions where, for some fold layer of each batmap, all agree:
        # compare layer-by-layer against the first batmap's layers.
        base = folded[0]
        for layer in range(base.shape[0]):
            candidate = base[layer]
            agree = candidate != EMPTY
            for other in folded[1:]:
                agree &= (other == candidate[None, :]).any(axis=0)
            witnessed.update(candidate[agree].tolist())
    return len(witnessed)
