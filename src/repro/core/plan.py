"""Workload planner: pick a counting backend per request, not per call site.

PR 1/2 grew three interchangeable pair-counting engines — the per-pair host
reference (:func:`repro.core.intersection.count_common`), the serial
vectorised batch engine (:class:`repro.core.batch.BatchPairCounter`) and the
multiprocess executor (:class:`repro.parallel.executor.ParallelPairCounter`)
— plus the simulated device kernel for modelling.  Each integration point
(the kernel driver, the miner, the collection API, the CLI, the matrix
product) used to make its own ad-hoc choice between them through scattered
``compute=`` strings and the executor's ``recommended_backend`` helper.

This module centralises that decision.  :func:`plan_counts` inspects the
request — collection size, packed width mix, available cores, and (when
known) how many pairs the query touches — and returns a :class:`CountPlan`
naming the backend to run.  The policy, in order:

1. **Layout gates** — sub-word ranges (``r0 < 4``) or entries wider than one
   byte (``payload_bits > 7``) cannot use the packed SWAR engines; only the
   per-pair ``host`` reference is exact there.
2. **Point queries** stay on ``host``: a handful of pairs never amortises
   gathering the packed buffer into width-class matrices.
3. **Small collections** (below :data:`PARALLEL_MIN_SETS`) or single-core
   hosts run the serial ``batch`` engine — pool startup plus result transfer
   would dominate the counting work.
4. **Wide-class-heavy collections** (mean packed width at or above
   :data:`WIDE_WORDS_PER_SET`) also stay on ``batch``: the SWAR pass is
   memory-bandwidth-bound on wide rows, exactly as the paper's Figure 11
   measures for the CPU loop, so extra processes add contention, not
   throughput.
5. Everything else fans out to ``parallel``.

``kernel`` (the GPU simulator) is never auto-selected — it models a device,
it does not serve requests — but an explicit ``requested="kernel"`` is
honoured so drivers can route through one entry point.

The executor's pay-off floor and worker cap remain defined in
:mod:`repro.parallel.executor` (tests monkeypatch them there); this module
reads them lazily at plan time, which also keeps ``repro.core`` importable
without pulling in ``multiprocessing``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require

__all__ = [
    "BACKENDS",
    "RESULT_FORMATS",
    "BUILD_BACKENDS",
    "WIDE_WORDS_PER_SET",
    "SHARD_FANOUT_MIN",
    "HOST_MAX_PAIRS",
    "PlanFeatures",
    "CountPlan",
    "BuildPlan",
    "plan_counts",
    "plan_levelwise",
    "plan_build",
    "resolve_result_format",
    "BULK_BUILD_MIN_ELEMENTS",
    "PARALLEL_BUILD_MIN_SETS",
    "PARALLEL_BUILD_MIN_ELEMENTS",
]

#: Backends a plan can name, slowest-setup-last.  ``"sharded"`` is the
#: out-of-core pipeline (:mod:`repro.core.sharded`): never auto-selected
#: unless a resident-set ``memory_budget`` is given and the packed buffer
#: would not fit under it.
BACKENDS = ("host", "batch", "parallel", "kernel", "sharded")

#: Mean packed words per set at which a collection counts as wide-class
#: heavy: one width-class SWAR pass over rows this wide already saturates
#: memory bandwidth, so the planner keeps such workloads on the serial batch
#: engine instead of paying pool startup for no extra throughput.
WIDE_WORDS_PER_SET = 1 << 12

#: Shard count at which shard-pair amplification dominates the counting
#: shape: ``k`` shards mean ``k*(k+1)/2`` independent rectangles, each
#: attaching its own mmaps — embarrassingly parallel work that hides attach
#: latency even when the wide-class gate would keep an unsharded collection
#: serial.  Delta-shard ingest grows ``k`` between compactions, so sharded
#: counting plans consult this before the width heuristics.
SHARD_FANOUT_MIN = 8

#: Explicit pair lists at or below this size stay on the per-pair host
#: reference unless a batch engine has already been built for the collection.
HOST_MAX_PAIRS = 16

#: Result formats the planner can resolve.  ``"dense"`` is the historical
#: ``n x n`` int64 matrix (kept as the oracle); ``"sparse"`` is the COO
#: :class:`~repro.core.results.SparseCountResult`; ``"auto"`` picks sparse
#: exactly when the dense result matrix itself would not fit under the
#: resident-set ``memory_budget``.
RESULT_FORMATS = ("auto", "dense", "sparse")

#: Bytes per dense result entry (int64) — the auto-demotion gate's constant.
RESULT_ENTRY_BYTES = 8


def resolve_result_format(
    requested: str,
    n_sets: int,
    memory_budget: int | None = None,
) -> str:
    """Resolve a requested result format to a concrete one.

    ``"auto"`` demotes dense to sparse when the dense result matrix alone
    (``n_sets**2 * 8`` bytes) exceeds the resident-set budget — the
    output-side analogue of the packed-buffer gate that demotes counting to
    the sharded pipeline.  Without a budget, ``"auto"`` means ``"dense"``
    (full back-compatibility for existing callers).
    """
    require(requested in RESULT_FORMATS,
            f"result_format must be one of {RESULT_FORMATS}, got {requested!r}")
    if requested != "auto":
        return requested
    if (memory_budget is not None
            and RESULT_ENTRY_BYTES * n_sets * n_sets > memory_budget):
        return "sparse"
    return "dense"


def _executor_policy():
    """Pay-off floor and worker resolution, read lazily from the executor.

    Deferred import for two reasons: ``repro.parallel`` sits above the core
    layer, and the regression tests monkeypatch
    ``repro.parallel.executor.PARALLEL_MIN_SETS`` — reading the attribute at
    plan time keeps those patches effective.
    """
    from repro.parallel import executor

    return executor.PARALLEL_MIN_SETS, executor.resolve_worker_count


@dataclass(frozen=True)
class PlanFeatures:
    """The problem-shape summary the planner decides from.

    Built from a collection with :meth:`from_collection`; constructed
    directly in tests (and by callers that know the shape without building
    batmaps, e.g. capacity planning).
    """

    n_sets: int            #: number of sets in the collection
    total_words: int       #: sum of packed row widths over all sets
    r0: int                #: smallest hash range present
    byte_entries: bool     #: True when entries occupy one byte (SWAR-packable)
    cached_engine: bool = False  #: a BatchPairCounter already exists
    n_shards: int = 1      #: spilled shards backing the collection (1 = in-memory)
    result_format: str = "auto"  #: requested result format (one of RESULT_FORMATS)
    min_support: int = 0   #: pruning floor known at plan time (0 = no pruning)

    @classmethod
    def from_collection(cls, collection, *, result_format: str = "auto",
                        min_support: int = 0) -> "PlanFeatures":
        """Summarise a built :class:`~repro.core.collection.BatmapCollection`."""
        # Widths come from the batmap ranges directly (3*r entries / 4 per
        # word) — building the packed device buffer is not needed to plan.
        total_words = sum(3 * bm.r // 4 for bm in collection.batmaps_sorted)
        return cls(
            n_sets=len(collection),
            total_words=int(total_words),
            r0=collection.r0,
            byte_entries=collection.config.entry_storage_bits == 8,
            cached_engine=collection.has_batch_counter(),
            result_format=result_format,
            min_support=min_support,
        )

    @property
    def mean_words(self) -> float:
        """Mean packed row width in words — the wide-class-heavy gate's input."""
        return self.total_words / self.n_sets if self.n_sets else 0.0

    @property
    def packed_bytes(self) -> int:
        """Bytes of the packed device buffer — the in-memory engines' resident floor."""
        return 4 * self.total_words


@dataclass(frozen=True)
class CountPlan:
    """The planner's verdict: which engine to run and with how many workers."""

    backend: str   #: one of :data:`BACKENDS`
    workers: int   #: resolved worker count (1 for the serial backends)
    reason: str    #: one-line explanation, surfaced by the CLI
    result_format: str = "dense"  #: resolved concrete format ("dense" | "sparse")
    min_support: int = 0          #: pruning floor the engines should apply

    def __post_init__(self) -> None:
        require(self.backend in BACKENDS,
                f"backend must be one of {BACKENDS}, got {self.backend!r}")
        require(self.result_format in ("dense", "sparse"),
                f"resolved result_format must be 'dense' or 'sparse', "
                f"got {self.result_format!r}")


def plan_counts(
    features,
    *,
    requested: str = "auto",
    workers: int | None = None,
    n_pairs: int | None = None,
    memory_budget: int | None = None,
) -> CountPlan:
    """Choose the counting backend for one request.

    Parameters
    ----------
    features:
        A :class:`PlanFeatures` or a :class:`~repro.core.collection.BatmapCollection`.
    requested:
        ``"auto"`` applies the full policy.  An explicit backend name is
        honoured, with one exception kept from ``recommended_backend``:
        ``"parallel"`` demotes to ``"batch"`` when the pool cannot pay off
        (single worker, or below the executor's set floor).
    workers:
        Worker count for the parallel backend; ``None`` auto-selects from
        the core count (capped by the executor policy).
    n_pairs:
        Number of pairs the query touches, when the caller knows it (point
        queries and explicit pair lists); ``None`` means an all-pairs-sized
        workload.
    memory_budget:
        Resident-set ceiling in bytes.  When set, any workload whose packed
        buffer exceeds it demotes to the ``"sharded"`` out-of-core pipeline
        (byte-packable layouts only — sub-word and wide-entry layouts stay
        on the per-pair reference, which never materialises the buffer).
        It also feeds the *result-format* gate: a ``features.result_format``
        of ``"auto"`` resolves to ``"sparse"`` when the dense result matrix
        (``n_sets**2 * 8`` bytes) would not fit under the budget.
        ``None`` (the default) disables both gates entirely.
    """
    if not isinstance(features, PlanFeatures):
        features = PlanFeatures.from_collection(features)
    require(requested == "auto" or requested in BACKENDS,
            f"requested must be 'auto' or one of {BACKENDS}, got {requested!r}")
    require(features.min_support >= 0,
            f"min_support must be >= 0, got {features.min_support}")
    min_sets, resolve_workers = _executor_policy()
    n_workers = resolve_workers(workers)
    fmt = resolve_result_format(features.result_format, features.n_sets,
                                memory_budget)

    def plan(backend: str, plan_workers: int, reason: str) -> CountPlan:
        return CountPlan(backend, plan_workers, reason, result_format=fmt,
                         min_support=features.min_support)

    if requested == "kernel":
        return plan("kernel", 1, "simulated device kernel requested")
    if requested == "host":
        return plan("host", 1, "per-pair host reference requested")
    if requested == "batch":
        return plan("batch", 1, "serial batch engine requested")
    if requested == "sharded":
        return plan("sharded", n_workers, "out-of-core sharded pipeline requested")
    if requested == "parallel":
        if n_workers < 2:
            return plan("batch", 1, "parallel requested but only one worker available")
        if features.n_sets < min_sets:
            return plan(
                "batch", 1,
                f"parallel requested but {features.n_sets} sets is below the "
                f"pool pay-off floor ({min_sets})",
            )
        return plan("parallel", n_workers, "parallel requested")

    # --- auto policy ---------------------------------------------------- #
    if not features.byte_entries or features.r0 < 4:
        return plan(
            "host", 1,
            "entries are not byte-packable or ranges are sub-word; only the "
            "per-pair reference is exact",
        )
    if memory_budget is not None and features.packed_bytes > memory_budget:
        return plan(
            "sharded", n_workers,
            f"packed buffer ({features.packed_bytes} B) exceeds the "
            f"resident-set budget ({memory_budget} B)",
        )
    if n_pairs is not None and n_pairs <= HOST_MAX_PAIRS:
        if features.cached_engine:
            return plan("batch", 1,
                        "point query on an already-built batch engine")
        return plan(
            "host", 1,
            f"{n_pairs} pair(s) never amortise gathering the packed buffer",
        )
    if n_workers < 2:
        return plan("batch", 1, "single worker available")
    if features.n_sets < min_sets:
        return plan(
            "batch", 1,
            f"{features.n_sets} sets is below the pool pay-off floor ({min_sets})",
        )
    if features.n_shards >= SHARD_FANOUT_MIN:
        rectangles = features.n_shards * (features.n_shards + 1) // 2
        return plan(
            "parallel", n_workers,
            f"{features.n_shards} shards amplify to {rectangles} shard-pair "
            "rectangles; the pool overlaps per-rectangle attach latency "
            "regardless of class width",
        )
    if features.mean_words >= WIDE_WORDS_PER_SET:
        return plan(
            "batch", 1,
            f"wide-class heavy (mean {features.mean_words:.0f} words/set): the "
            "SWAR pass is memory-bound, a pool adds contention not bandwidth",
        )
    return plan("parallel", n_workers,
                f"{features.n_sets} sets across {n_workers} workers")


# --------------------------------------------------------------------------- #
# Construction (bulk-build) planning
# --------------------------------------------------------------------------- #

#: Backends for collection construction: the per-element serial inserter
#: (the oracle), the round-based vectorized bulk engine
#: (:mod:`repro.core.bulk_build`), the multiprocess bulk builder over
#: set shards (:mod:`repro.parallel.build`), and the out-of-core sharded
#: builder (:mod:`repro.core.sharded`) that spills each shard to disk.
BUILD_BACKENDS = ("host", "bulk", "parallel", "sharded")

#: Total deduplicated elements below which construction stays on the serial
#: per-element inserter: the bulk engine's group setup (concatenation, flat
#: slot tables, claim arrays) costs a few vector passes that a handful of
#: tiny sets never amortises — and keeping small builds on the oracle keeps
#: their placements bit-identical to the seed's.
BULK_BUILD_MIN_ELEMENTS = 2048

#: Set-count floor for the multiprocess bulk builder; below it the shards
#: are too few/small for pool startup plus per-worker hash-family transfer.
PARALLEL_BUILD_MIN_SETS = 1024

#: Element floor for the multiprocess bulk builder.  Construction work per
#: element is light (a few vector ops per round), so the pool only pays off
#: once the element volume is large; below this the in-process bulk engine
#: finishes before the workers warm up.
PARALLEL_BUILD_MIN_ELEMENTS = 1 << 21


@dataclass(frozen=True)
class BuildPlan:
    """The construction planner's verdict: which build engine to run."""

    backend: str   #: one of :data:`BUILD_BACKENDS`
    workers: int   #: resolved worker count (1 for the serial backends)
    reason: str    #: one-line explanation, surfaced by the CLI

    def __post_init__(self) -> None:
        require(self.backend in BUILD_BACKENDS,
                f"backend must be one of {BUILD_BACKENDS}, got {self.backend!r}")


def plan_build(
    n_sets: int,
    total_elements: int,
    *,
    requested: str = "auto",
    workers: int | None = None,
    memory_budget: int | None = None,
    packed_bytes: int | None = None,
    n_existing_shards: int = 0,
) -> BuildPlan:
    """Choose the construction backend for one collection build.

    Parameters
    ----------
    n_sets / total_elements:
        The collection shape: number of sets and the sum of their
        deduplicated sizes (known before any batmap exists).
    requested:
        ``"auto"`` applies the policy below.  Explicit names are honoured,
        with the same demotion rule the counting planner uses:
        ``"parallel"`` drops to ``"bulk"`` when the pool cannot pay off
        (single worker, or below the build floors).
    memory_budget / packed_bytes:
        Resident-set ceiling and the projected packed-buffer size
        (:func:`~repro.core.sharded.set_packed_bytes` totals).  When both
        are given and the buffer would not fit, the build demotes to the
        out-of-core ``"sharded"`` builder before any in-memory engine is
        considered.
    n_existing_shards:
        Shards already backing the target spill when this build appends
        delta shards.  Past :data:`SHARD_FANOUT_MIN` the plan's reason
        flags the shard-pair amplification (``k*(k+1)/2`` rectangles per
        count) so callers can surface a compaction recommendation.

    Policy, in order: over-budget builds demote to ``sharded``; tiny builds
    (below :data:`BULK_BUILD_MIN_ELEMENTS` total elements) stay on the
    serial ``host`` inserter; large multi-core builds (at least
    :data:`PARALLEL_BUILD_MIN_SETS` sets *and*
    :data:`PARALLEL_BUILD_MIN_ELEMENTS` elements, two or more workers) fan
    out to ``parallel``; everything else runs the in-process ``bulk``
    engine.  All engines produce collections whose pair counts are
    identical on every counting path.
    """
    require(n_sets >= 0, f"n_sets must be >= 0, got {n_sets}")
    require(total_elements >= 0,
            f"total_elements must be >= 0, got {total_elements}")
    require(requested == "auto" or requested in BUILD_BACKENDS,
            f"requested must be 'auto' or one of {BUILD_BACKENDS}, "
            f"got {requested!r}")
    _, resolve_workers = _executor_policy()
    n_workers = resolve_workers(workers)

    if requested == "host":
        return BuildPlan("host", 1, "serial per-element inserter requested")
    if requested == "bulk":
        return BuildPlan("bulk", 1, "vectorized bulk engine requested")
    if requested == "sharded":
        return BuildPlan("sharded", 1, "out-of-core sharded build requested")
    if requested == "parallel":
        if n_workers < 2:
            return BuildPlan("bulk", 1,
                             "parallel requested but only one worker available")
        if n_sets < PARALLEL_BUILD_MIN_SETS or total_elements < PARALLEL_BUILD_MIN_ELEMENTS:
            return BuildPlan(
                "bulk", 1,
                f"parallel requested but {n_sets} sets / {total_elements} "
                "elements is below the build pool pay-off floor",
            )
        return BuildPlan("parallel", n_workers, "parallel bulk build requested")

    # --- auto policy ---------------------------------------------------- #
    if (memory_budget is not None and packed_bytes is not None
            and packed_bytes > memory_budget):
        return BuildPlan(
            "sharded", 1,
            f"projected packed buffer ({packed_bytes} B) exceeds the "
            f"resident-set budget ({memory_budget} B)",
        )
    if total_elements < BULK_BUILD_MIN_ELEMENTS:
        return BuildPlan(
            "host", 1,
            f"{total_elements} elements is below the bulk pay-off floor "
            f"({BULK_BUILD_MIN_ELEMENTS})",
        )
    amplified = ""
    if n_existing_shards >= SHARD_FANOUT_MIN:
        rectangles = (n_existing_shards + 1) * (n_existing_shards + 2) // 2
        amplified = (f"; appending a delta to {n_existing_shards} existing "
                     f"shards amplifies counting to {rectangles} rectangles "
                     "— compaction recommended")
    if (n_workers >= 2 and n_sets >= PARALLEL_BUILD_MIN_SETS
            and total_elements >= PARALLEL_BUILD_MIN_ELEMENTS):
        return BuildPlan("parallel", n_workers,
                         f"{n_sets} sets across {n_workers} workers" + amplified)
    return BuildPlan("bulk", 1,
                     f"{n_sets} sets / {total_elements} elements on the "
                     "vectorized bulk engine" + amplified)


#: Candidate-words product (n_candidates * bitmap words) below which the
#: levelwise support counter stays serial; one AND+popcount pass this small
#: finishes before a pool even starts.
LEVELWISE_MIN_WORK = 1 << 22


def plan_levelwise(
    n_candidates: int,
    n_words: int,
    *,
    workers: int | None = None,
) -> CountPlan:
    """Backend choice for the levelwise candidate-support counter.

    Same shape of policy as :func:`plan_counts`, adapted to the bitmap
    workload: the work is ``n_candidates x n_words`` AND+popcount lanes, so
    the pay-off test is on that product rather than on a set count.
    """
    require(n_candidates >= 0, f"n_candidates must be >= 0, got {n_candidates}")
    require(n_words >= 0, f"n_words must be >= 0, got {n_words}")
    _, resolve_workers = _executor_policy()
    n_workers = resolve_workers(workers)
    if n_workers < 2:
        return CountPlan("batch", 1, "single worker available")
    if n_candidates * n_words < LEVELWISE_MIN_WORK:
        return CountPlan(
            "batch", 1,
            f"{n_candidates} candidates x {n_words} words is below the "
            "levelwise pool pay-off floor",
        )
    return CountPlan("parallel", n_workers,
                     f"{n_candidates} candidates across {n_workers} workers")
