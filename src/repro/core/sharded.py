"""Out-of-core sharded batmap collections: build, spill, memory-mapped re-attach.

A :class:`~repro.core.collection.BatmapCollection` holds every batmap and the
whole packed device buffer in memory at once — the resident-set assumption
the paper's in-memory workloads make.  This module removes it: a
:class:`ShardedCollection` partitions the sets into contiguous *shards*,
builds each shard as an ordinary ``BatmapCollection`` (through the PR-4 bulk
engine via :func:`~repro.core.plan.plan_build`), spills the shard's packed
words to disk in exactly the :class:`~repro.core.batch.WidthClassIndex`
layout (``words`` / ``offsets`` / ``widths``), and frees it before the next
shard is built.  Counting re-attaches shards with ``numpy`` memory mapping,
so the resident set is bounded by the shard budget, never by the instance.

Identity guarantees (pinned by ``tests/test_sharded.py``):

* per-set placement depends only on the set, the shared hash family, the
  hash range and the config — never on which shard (or whether any shard)
  the set landed in — so sharded construction is byte-identical to the
  monolithic build;
* every shard is packed with one **collection-global** interleave
  granularity ``r0`` (the minimum range over *all* sets, exactly what the
  monolithic device buffer would use), so cross-shard folds satisfy the same
  ``p mod width`` identity as in-buffer folds and all counts are
  bit-identical to the in-memory engines.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.batch import WidthClassIndex
from repro.core.bulk_build import device_word_layout, pack_group_words
from repro.core.collection import BatmapCollection, _dedup_sorted
from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.core.errors import LayoutError, SpillFormatError
from repro.core.hashing import (
    ExtensibleHashFamily,
    HashFamily,
    load_family,
    save_family,
)
from repro.core.integrity import (
    DIGEST_ALGORITHM,
    MANIFEST_NAME,
    SHARD_ARRAY_NAMES,
    AtomicCommit,
    file_digest,
    sweep_stale_staging,
)
from repro.utils.bits import pack_bytes_to_words, unpack_words_to_bytes
from repro.utils.faultpoints import faultpoint
from repro.utils.rng import RngLike
from repro.utils.validation import require, require_positive

__all__ = [
    "SHARD_BUDGET_DIVISOR",
    "MIN_WORKING_BUDGET",
    "MANIFEST_NAME",
    "FAMILY_NAME",
    "TOMBSTONES_NAME",
    "SUPPORTED_SPILL_VERSIONS",
    "set_packed_bytes",
    "fixed_resident_bytes",
    "working_budget",
    "plan_shard_ranges",
    "build_spill_manifest",
    "ShardInfo",
    "ShardedCollection",
    "ShardedCollectionBuilder",
]

#: Fraction of the working budget one spilled shard may occupy.  The
#: counting phase attaches two shards plus SWAR temporaries, and the build
#: phase holds a shard's tidlists, entry stacks and cuckoo slot tables at
#: once (several multiples of the packed bytes) — a tenth of the budget per
#: shard keeps every phase's simultaneous working sets under the ceiling.
SHARD_BUDGET_DIVISOR = 10

#: Smallest working budget (after fixed residents) the pipeline accepts;
#: below this not even a singleton shard's build tables fit.
MIN_WORKING_BUDGET = 4096

#: Serialised hash family (``.npz``), written next to the manifest so a
#: serving process can answer membership / decode queries without the build
#: process's in-memory family.  Optional for pure pair counting.  Version-3
#: mutations that replace the family write generational names
#: (``family_{gen:04d}.npz``) recorded in the manifest's ``family`` entry;
#: this canonical name is the fresh-build default and the v1/v2 location.
FAMILY_NAME = "family.npz"
#: Sorted physical set ids deleted from the collection (``int64``); absent
#: or empty means no deletes.  Consulted by every read path before results
#: surface, and purged physically by compaction.  Version-3 deletes write
#: generational names (``tombstones_{gen:04d}.npy``) recorded in the
#: manifest's ``tombstones`` entry — a live tombstone file is never
#: overwritten in place; this canonical name is the v1/v2 location.
TOMBSTONES_NAME = "tombstones.npy"
#: Current write version plus every older version readers still accept.
#: Version 3 adds the durability metadata: per-file content digests
#: (``checksums`` / per-shard ``files`` / ``tombstones`` / ``family``
#: manifest entries) and the atomic-commit discipline of
#: :mod:`repro.core.integrity`.
_SPILL_VERSION = 3
SUPPORTED_SPILL_VERSIONS = (1, 2, 3)


def fixed_resident_bytes(universe_size: int, n_sets: int,
                         *, lazy_family: bool = False,
                         result_format: str = "dense") -> int:
    """Resident bytes no amount of sharding can remove.

    The eager hash family stores three permutations with their inverses
    (six ``int64`` arrays over the universe), and — in the legacy dense
    result format — the all-pairs result is a resident ``int64`` ``n x n``
    matrix.  An extensible (lazy) family derives per-item parameters on
    demand, so its O(universe) term vanishes; a ``"sparse"`` (or top-k)
    :class:`~repro.core.results.CountResult` keeps only the surviving
    nonzeros resident, so its O(n^2) term vanishes too — which is what lets
    a workload whose dense matrix alone exceeds the budget run end to end.
    """
    family_bytes = 0 if lazy_family else 48 * universe_size
    result_bytes = 8 * n_sets * n_sets if result_format == "dense" else 0
    return family_bytes + result_bytes


def working_budget(memory_budget: int, universe_size: int, n_sets: int,
                   *, lazy_family: bool = False,
                   result_format: str = "dense") -> int:
    """Budget left for shardable state after the fixed residents.

    Raises ``ValueError`` with the full accounting when the fixed residents
    leave less than :data:`MIN_WORKING_BUDGET` — a budget that cannot hold
    the hash family and the result matrix cannot hold any pipeline.
    ``result_format="sparse"`` drops the dense-matrix term from the fixed
    residents (see :func:`fixed_resident_bytes`).
    """
    require_positive(memory_budget, "memory_budget")
    fixed = fixed_resident_bytes(universe_size, n_sets, lazy_family=lazy_family,
                                 result_format=result_format)
    available = memory_budget - fixed
    if available < MIN_WORKING_BUDGET:
        raise ValueError(
            f"memory budget ({memory_budget} B) is too small: the hash family "
            f"over {universe_size} transactions and the {n_sets}x{n_sets} "
            f"result matrix are irreducibly resident ({fixed} B), leaving "
            f"less than {MIN_WORKING_BUDGET} B for shards"
        )
    return available


def set_packed_bytes(sizes, universe_size: int, config: BatmapConfig) -> np.ndarray:
    """Padded packed device bytes per set, from set sizes alone.

    The same geometry :func:`~repro.core.bulk_build.device_word_layout`
    assigns once the batmaps exist (range from
    :meth:`~repro.core.config.BatmapConfig.range_for_size` clamped to the
    word floor, width padded to the 16-word boundary) — so resident-set
    planning needs no construction.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    out = np.empty(sizes.size, dtype=np.int64)
    cache: dict[int, int] = {}
    for k, size in enumerate(sizes.tolist()):
        nbytes = cache.get(size)
        if nbytes is None:
            r = max(4, config.range_for_size(size, universe_size))
            width = 3 * r // 4
            nbytes = cache[size] = ((width + 15) // 16) * 16 * 4
        out[k] = nbytes
    return out


def plan_shard_ranges(
    packed_bytes,
    memory_budget: int,
    *,
    max_sets_per_shard: int | None = None,
) -> list:
    """Partition sets (in order) into contiguous shards under the budget.

    ``packed_bytes[k]`` is set ``k``'s padded device size (from
    :func:`set_packed_bytes`).  Each shard's total stays at or below
    ``memory_budget // SHARD_BUDGET_DIVISOR`` — except that a single set
    larger than the shard budget still gets a (singleton) shard: sharding
    cannot split one batmap, it can only bound how many are resident.
    Returns ``[(lo, hi), ...]`` covering ``[0, n)``.
    """
    packed_bytes = np.asarray(packed_bytes, dtype=np.int64)
    require_positive(memory_budget, "memory_budget")
    shard_budget = max(1, memory_budget // SHARD_BUDGET_DIVISOR)
    ranges: list[tuple[int, int]] = []
    lo = 0
    running = 0
    for k in range(packed_bytes.size):
        nbytes = int(packed_bytes[k])
        full = max_sets_per_shard is not None and (k - lo) >= max_sets_per_shard
        if k > lo and (running + nbytes > shard_budget or full):
            ranges.append((lo, k))
            lo, running = k, 0
        running += nbytes
    if packed_bytes.size:
        ranges.append((lo, int(packed_bytes.size)))
    return ranges


@dataclass
class ShardInfo:
    """Metadata of one spilled shard (everything but the words themselves)."""

    index: int
    lo: int                 #: first global set index covered by this shard
    hi: int                 #: one past the last global set index
    directory: Path
    nbytes: int             #: packed words on disk
    build_backend: str
    order: np.ndarray       #: sorted slot -> local set index (lo-relative)
    failed: np.ndarray      #: (k, 2) [element, local set index] failed insertions
    kind: str = "base"      #: "base" (original/compacted) or "delta" (appended)
    #: filename -> content digest of the shard's arrays (manifest v3);
    #: ``None`` for shards attached from a v1/v2 spill — computed once when
    #: the next mutation commits at version 3.
    file_digests: dict | None = field(default=None, repr=False)

    @property
    def n_sets(self) -> int:
        """Number of sets covered by this shard."""
        return self.hi - self.lo

    @property
    def global_order(self) -> np.ndarray:
        """Sorted slot -> *global* set index."""
        return self.order + self.lo


def _load_shard_array(shard_index: int, path: Path, *,
                      mmap_mode: str | None = None) -> np.ndarray:
    """Load one shard array, wrapping any failure in ``SpillFormatError``.

    ``np.load`` on a missing, truncated or bit-flipped-header file raises a
    grab-bag of ``OSError`` / ``ValueError`` / ``EOFError``; read paths
    must surface them as the format error they are, naming the shard and
    the file.
    """
    try:
        return np.load(path, mmap_mode=mmap_mode, allow_pickle=False)
    except Exception as exc:
        raise SpillFormatError(
            f"shard {shard_index}: cannot load {path} "
            f"({type(exc).__name__}: {exc}) — the artifact is damaged or "
            "incomplete; run 'repro verify'") from exc


def shard_digests(shard: ShardInfo) -> dict:
    """The shard's per-file digest table, computing it on first need.

    Freshly staged shards carry their digests from write time; shards
    attached from a v1/v2 spill have none recorded and pay a one-time hash
    of their (unchanged, live) files when the first version-3 mutation
    commits.
    """
    if shard.file_digests is None:
        shard.file_digests = {
            name: file_digest(shard.directory / name)
            for name in SHARD_ARRAY_NAMES
        }
    return shard.file_digests


def build_spill_manifest(
    *,
    universe_size: int,
    r0: int,
    payload_bits: int,
    shards: list,
    generation: int,
    family_kind: str,
    tombstones: dict | None = None,
    family: dict | None = None,
) -> dict:
    """The version-:data:`_SPILL_VERSION` manifest document for a spill.

    The single schema shared by finalize / append / delete / compact; every
    mutation builds its manifest here and publishes it through
    :class:`~repro.core.integrity.AtomicCommit` (the ``os.replace`` of this
    document *is* the commit point).  ``tombstones`` / ``family`` are the
    v3 file entries (``{"file", "digest", ...}``) or ``None``.
    """
    return {
        "version": _SPILL_VERSION,
        "generation": int(generation),
        "universe_size": int(universe_size),
        "n_sets": int(shards[-1].hi) if shards else 0,
        "n_tombstones": int(tombstones["n"]) if tombstones else 0,
        "r0": int(r0),
        "payload_bits": int(payload_bits),
        "family_kind": family_kind,
        "checksums": DIGEST_ALGORITHM,
        "tombstones": tombstones,
        "family": family,
        "shards": [
            {
                "dir": shard.directory.name,
                "lo": shard.lo,
                "hi": shard.hi,
                "nbytes": shard.nbytes,
                "build_backend": shard.build_backend,
                "kind": shard.kind,
                "files": shard_digests(shard),
            }
            for shard in shards
        ],
    }


def reinterleave_shard_words(
    words: np.ndarray,
    offsets: np.ndarray,
    widths: np.ndarray,
    old_r0: int,
    new_r0: int,
) -> np.ndarray:
    """Repack every row from interleave granularity ``old_r0`` to ``new_r0``.

    A pure byte permutation within each row — placements, widths and offsets
    are untouched, only the Figure-4 interleave order changes.  Needed when
    an append introduces a set whose range undercuts the collection-global
    ``r0``: cross-shard folds require one uniform granularity, so existing
    shards are rewritten at the new minimum.  Counts are interleave-
    invariant, so this never changes a result.
    """
    require(old_r0 % new_r0 == 0,
            f"new r0 {new_r0} must divide the old r0 {old_r0}")
    out = np.array(words)
    for k in range(int(offsets.size)):
        lo = int(offsets[k])
        width = int(widths[k])
        entries = unpack_words_to_bytes(np.asarray(words[lo:lo + width]))
        r = entries.size // 3
        grid = entries.reshape(r // old_r0, 3 * old_r0)
        per_table = [grid[:, t * old_r0:(t + 1) * old_r0].reshape(r)
                     for t in range(3)]
        new = np.empty((r // new_r0, 3 * new_r0), dtype=np.uint8)
        for t in range(3):
            new[:, t * new_r0:(t + 1) * new_r0] = per_table[t].reshape(
                r // new_r0, new_r0)
        out[lo:lo + width] = pack_bytes_to_words(new.reshape(-1))
    return out


def _spill_buffer_words(
    collection: BatmapCollection, r0: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(words, offsets, widths)`` of a collection packed at granularity ``r0``.

    When the collection's own (bulk-pre-assembled or lazily packed) buffer
    already uses ``r0``, it is reused as-is; otherwise the entries are
    re-interleaved at the global granularity — same bytes the monolithic
    buffer would hold for these rows, which is what makes cross-shard folds
    exact.
    """
    own_r0 = collection.r0
    if own_r0 == r0:
        buffer = collection.device_buffer()
        return buffer.words, buffer.offsets, buffer.widths
    require(own_r0 % r0 == 0,
            f"collection r0 {own_r0} is not a multiple of the global r0 {r0}")
    batmaps = collection.batmaps_sorted
    widths, offsets, total = device_word_layout([bm.r for bm in batmaps])
    words = np.zeros(total, dtype=np.uint32)
    start = 0
    while start < len(batmaps):
        stop = start
        r = batmaps[start].r
        while stop < len(batmaps) and batmaps[stop].r == r:
            stop += 1
        entries = np.stack([bm.entries for bm in batmaps[start:stop]])
        packed, _ = pack_group_words(entries, r0)
        rows = np.arange(start, stop)
        words[offsets[rows][:, None] + np.arange(packed.shape[1])] = packed
        start = stop
    return words, offsets, widths


class ShardedCollectionBuilder:
    """Incremental out-of-core construction: add shards, spill, finalize.

    Drives one shard at a time through the ordinary
    :meth:`BatmapCollection.build` (planner-routed: host / bulk / parallel)
    and writes its packed buffer plus metadata to ``spill_dir/shard_NNNN/``.
    The caller supplies set batches in global order; only one shard's
    batmaps are ever resident.
    """

    def __init__(
        self,
        spill_dir: str | Path,
        universe_size: int,
        r0: int,
        *,
        family: HashFamily,
        config: BatmapConfig = DEFAULT_CONFIG,
        build_compute: str = "auto",
        build_workers: int | None = None,
        memory_budget: int | None = None,
    ) -> None:
        require_positive(universe_size, "universe_size")
        if config.entry_storage_bits != 8:
            raise LayoutError(
                "the sharded pipeline spills byte-packed device buffers; "
                f"payload_bits={config.payload_bits} stores "
                f"{config.entry_dtype} entries — use the in-memory path"
            )
        require(family.universe_size == universe_size,
                "family universe size does not match universe_size")
        self.spill_dir = Path(spill_dir)
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.universe_size = universe_size
        self.r0 = int(r0)
        self.family = family
        self.config = config
        self.build_compute = build_compute
        self.build_workers = build_workers
        self.memory_budget = memory_budget
        self.shards: list[ShardInfo] = []
        self.generation = 0
        #: v3 file entries carried from the attached collection (``None``
        #: until the first commit records them).
        self.tombstones_file: str | None = None
        self.tombstones_digest: str | None = None
        self.family_file: str | None = None
        self.family_digest: str | None = None
        self._family_dirty = True  # fresh builders always spill their family
        self._next_lo = 0
        self._finalized = False
        self._commit: AtomicCommit | None = None

    @classmethod
    def for_append(
        cls,
        sharded: "ShardedCollection",
        *,
        config: BatmapConfig | None = None,
        build_compute: str = "auto",
        build_workers: int | None = None,
        memory_budget: int | None = None,
    ) -> "ShardedCollectionBuilder":
        """Reopen a spilled collection's builder to ingest delta shards.

        The returned builder carries the existing shard table, family and
        ``r0``; :meth:`append` bulk-builds new sets into *delta* shards and
        rewrites the manifest at the next generation.  ``config`` defaults
        to the spill's recorded ``payload_bits`` over otherwise-default
        knobs — pass the original config explicitly if it was customised
        (placement identity with a from-scratch build requires it).
        """
        if config is None:
            config = DEFAULT_CONFIG.with_(payload_bits=sharded.payload_bits)
        family = sharded.family
        if memory_budget is not None:
            lazy = isinstance(family, ExtensibleHashFamily)
            memory_budget = working_budget(
                memory_budget, sharded.universe_size, sharded.n_physical_sets,
                lazy_family=lazy)
        builder = cls(
            sharded.spill_dir, sharded.universe_size, sharded.r0,
            family=family, config=config, build_compute=build_compute,
            build_workers=build_workers, memory_budget=memory_budget,
        )
        builder.shards = list(sharded.shards)
        builder.generation = sharded.generation
        builder.tombstones_file = sharded.tombstones_file
        builder.tombstones_digest = sharded.tombstones_digest
        builder.family_file = sharded.family_file
        builder.family_digest = sharded.family_digest
        builder._family_dirty = False  # unchanged unless the universe grows
        builder._next_lo = sharded.n_physical_sets
        return builder

    def _shard_build_compute(self, sets) -> str:
        """Per-shard engine choice under the working budget.

        The bulk engine's floor is one set's group arrays (about six 8-byte
        per-slot arrays over ``3 * r`` slots); when even that floor would
        eat more than half the working budget, the shard builds with the
        serial inserter instead — identical output, a fraction of the
        working set.
        """
        if self.memory_budget is None or self.build_compute != "auto":
            return self.build_compute
        largest = max(np.asarray(s).size for s in sets)
        r_max = max(4, self.config.range_for_size(int(largest),
                                                  self.family.range_universe))
        if 144 * r_max > self.memory_budget // 2:
            return "host"
        return self.build_compute

    def _ensure_commit(self) -> AtomicCommit:
        """The pending :class:`AtomicCommit` this builder stages files into."""
        if self._commit is None:
            self._commit = AtomicCommit(self.spill_dir)
        return self._commit

    def _fresh_shard_name(self) -> str:
        """Next unused ``shard_NNNN`` name (skips live *and* staged names)."""
        commit = self._ensure_commit()
        index = len(self.shards)
        while commit.taken(f"shard_{index:04d}"):
            index += 1
        return f"shard_{index:04d}"

    @staticmethod
    def _write_shard_arrays(staged_dir: Path, arrays: dict) -> dict:
        """Write a shard's five arrays into ``staged_dir``; return digests."""
        staged_dir.mkdir()
        digests = {}
        for name in SHARD_ARRAY_NAMES:
            np.save(staged_dir / name, arrays[name[:-len(".npy")]])
            digests[name] = file_digest(staged_dir / name)
        return digests

    def add_shard(self, sets, *, kind: str = "base") -> ShardInfo:
        """Build one shard of sets (next global range) and stage its spill.

        The shard's arrays land in the builder's pending
        :class:`AtomicCommit` staging directory — nothing touches the live
        spill until :meth:`finalize` / :meth:`append` commits, so a crash
        mid-build (or mid-append) leaves any previously committed
        generation intact.
        """
        require(not self._finalized, "builder is already finalized")
        require(len(sets) > 0, "cannot add an empty shard")
        faultpoint("append.shard")
        collection = BatmapCollection.build(
            sets,
            self.universe_size,
            config=self.config,
            family=self.family,
            build_compute=self._shard_build_compute(sets),
            build_workers=self.build_workers,
            memory_budget=self.memory_budget,
        )
        words, offsets, widths = _spill_buffer_words(collection, self.r0)
        index = len(self.shards)
        name = self._fresh_shard_name()
        commit = self._ensure_commit()
        failed_pairs = [
            (element, local)
            for element, locals_ in collection.failed_insertions().items()
            for local in locals_
        ]
        failed = (np.array(sorted(failed_pairs), dtype=np.int64).reshape(-1, 2)
                  if failed_pairs else np.zeros((0, 2), dtype=np.int64))
        digests = self._write_shard_arrays(commit.stage(name), {
            "words": words, "offsets": offsets, "widths": widths,
            "order": collection.order, "failed": failed,
        })
        info = ShardInfo(
            index=index,
            lo=self._next_lo,
            hi=self._next_lo + len(sets),
            directory=self.spill_dir / name,
            nbytes=int(words.nbytes),
            build_backend=(collection.build_plan.backend
                           if collection.build_plan else "host"),
            order=collection.order,
            failed=failed,
            kind=kind,
            file_digests=digests,
        )
        self.shards.append(info)
        self._next_lo = info.hi
        return info

    @property
    def _family_kind(self) -> str:
        return ("lazy" if isinstance(self.family, ExtensibleHashFamily)
                else "eager")

    def _load_tombstones(self) -> np.ndarray:
        if self.tombstones_file is None:
            return np.zeros(0, dtype=np.int64)
        return np.asarray(np.load(self.spill_dir / self.tombstones_file),
                          dtype=np.int64)

    def _tombstones_entry(self, tombstones: np.ndarray) -> dict | None:
        """The carried-forward manifest ``tombstones`` entry (or ``None``)."""
        if self.tombstones_file is None:
            return None
        if self.tombstones_digest is None:
            self.tombstones_digest = file_digest(
                self.spill_dir / self.tombstones_file)
        return {"file": self.tombstones_file,
                "digest": self.tombstones_digest,
                "n": int(tombstones.size)}

    def _stage_family(self, commit: AtomicCommit) -> dict:
        """Stage (or carry) the family file; return its manifest entry.

        A changed family (universe growth) or a family never spilled is
        written under a fresh name and the superseded file becomes garbage;
        an unchanged family keeps its live file — only its digest may need
        a one-time computation (v1/v2 upgrade).
        """
        if self.family_file is None:
            self._family_dirty = True
        if self._family_dirty:
            if self.family_file is None and not commit.taken(FAMILY_NAME):
                name = FAMILY_NAME
            else:
                name = f"family_{self.generation:04d}.npz"
            staged = commit.stage(name)
            save_family(staged, self.family)
            if self.family_file is not None and self.family_file != name:
                commit.add_garbage(self.spill_dir / self.family_file)
            self.family_file = name
            self.family_digest = file_digest(staged)
            self._family_dirty = False
        elif self.family_digest is None:
            self.family_digest = file_digest(self.spill_dir / self.family_file)
        return {"file": self.family_file, "digest": self.family_digest}

    def _reinterleave_shards(self, commit: AtomicCommit, new_r0: int) -> None:
        """Re-stage every existing shard at granularity ``new_r0``.

        v3 discipline forbids the old in-place ``words.npy`` rewrite (a
        crash mid-write would corrupt the live generation), so each shard
        is copied into a fresh ``rewrite_{gen:04d}_{k:04d}`` directory with
        its words re-interleaved; the old directory becomes post-commit
        garbage.
        """
        from dataclasses import replace

        generation = self.generation + 1
        rewritten = []
        for k, shard in enumerate(self.shards):
            faultpoint("append.reinterleave")
            words = np.load(shard.directory / "words.npy")
            offsets = np.load(shard.directory / "offsets.npy")
            widths = np.load(shard.directory / "widths.npy")
            name = f"rewrite_{generation:04d}_{k:04d}"
            digests = self._write_shard_arrays(commit.stage(name), {
                "words": reinterleave_shard_words(
                    words, offsets, widths, self.r0, new_r0),
                "offsets": offsets, "widths": widths,
                "order": shard.order, "failed": shard.failed,
            })
            commit.add_garbage(shard.directory)
            rewritten.append(replace(
                shard, directory=self.spill_dir / name, file_digests=digests))
        self.shards = rewritten
        self.r0 = new_r0

    def append(self, sets, *, universe_size: int | None = None) -> "ShardedCollection":
        """Bulk-build ``sets`` into delta shards and publish the next generation.

        Placement identity makes this exact: each new set's cuckoo placement
        depends only on (set, family, r, config), so the delta rows are
        byte-identical to the rows a from-scratch build of the combined
        dataset would hold.  Two structural adjustments may still be needed:

        * **Universe growth** — if an element (or an explicit
          ``universe_size``) exceeds the current universe, an extensible
          family grows for free (same permutations, same placements); an
          eager family cannot and raises ``ValueError``.
        * **r0 lowering** — if a new set's range undercuts the collection
          global ``r0``, every existing shard is re-interleaved at the new
          minimum (:func:`reinterleave_shard_words`; a byte permutation,
          counts unchanged).

        All new files are staged and published by one
        :class:`~repro.core.integrity.AtomicCommit`: a crash (or injected
        fault) at any point leaves the previous generation attachable and
        bit-identical.  Returns the re-attached collection at
        ``generation + 1``.
        """
        require(not self._finalized, "builder is already finalized")
        require(len(sets) > 0, "cannot append zero sets")
        commit = self._ensure_commit()
        try:
            return self._append_staged(commit, sets, universe_size)
        except BaseException:
            self._commit = None
            commit.abort()
            raise

    def _append_staged(self, commit: AtomicCommit, sets,
                       universe_size: int | None) -> "ShardedCollection":
        dedup = [_dedup_sorted(s) for s in sets]
        needed = max((int(d[-1]) + 1 for d in dedup if d.size), default=0)
        target = max(self.universe_size, needed, universe_size or 0)
        if target > self.universe_size:
            if not isinstance(self.family, ExtensibleHashFamily):
                raise ValueError(
                    f"appending requires universe {target} but the spill's "
                    f"eager hash family is fixed at {self.universe_size}: "
                    "eager permutations materialize O(universe) state and "
                    "cannot grow — rebuild with an extensible family "
                    "(build-index --family lazy)")
            self.family = self.family.grow(target)
            self.universe_size = target
            self._family_dirty = True

        sizes = np.array([d.size for d in dedup], dtype=np.int64)
        range_universe = self.family.range_universe
        r_new = int(min(
            max(4, self.config.range_for_size(int(size), range_universe))
            for size in sizes.tolist()))
        if r_new < self.r0:
            self._reinterleave_shards(commit, r_new)

        if self.memory_budget is not None:
            packed = set_packed_bytes(sizes, range_universe, self.config)
            ranges = plan_shard_ranges(packed, self.memory_budget)
        else:
            ranges = [(0, len(dedup))]
        for lo, hi in ranges:
            self.add_shard(dedup[lo:hi], kind="delta")

        self.generation += 1
        self._finalized = True
        tombstones = self._load_tombstones()
        manifest = build_spill_manifest(
            universe_size=self.universe_size, r0=self.r0,
            payload_bits=self.config.payload_bits, shards=self.shards,
            generation=self.generation, family_kind=self._family_kind,
            tombstones=self._tombstones_entry(tombstones),
            family=self._stage_family(commit),
        )
        commit.commit(manifest)
        self._commit = None
        return ShardedCollection(self.spill_dir, self.universe_size, self.r0,
                                 self.shards, family=self.family,
                                 payload_bits=self.config.payload_bits,
                                 generation=self.generation,
                                 tombstones=tombstones,
                                 tombstones_file=self.tombstones_file,
                                 tombstones_digest=self.tombstones_digest,
                                 family_file=self.family_file,
                                 family_digest=self.family_digest)

    def finalize(self) -> "ShardedCollection":
        """Atomically commit the staged shards + manifest; return the collection."""
        require(self.shards, "cannot finalize a sharded collection with no shards")
        self._finalized = True
        commit = self._ensure_commit()
        try:
            manifest = build_spill_manifest(
                universe_size=self.universe_size, r0=self.r0,
                payload_bits=self.config.payload_bits, shards=self.shards,
                generation=self.generation, family_kind=self._family_kind,
                tombstones=None,
                family=self._stage_family(commit),
            )
            commit.commit(manifest)
        except BaseException:
            self._commit = None
            commit.abort()
            raise
        self._commit = None
        return ShardedCollection(self.spill_dir, self.universe_size, self.r0,
                                 self.shards, family=self.family,
                                 payload_bits=self.config.payload_bits,
                                 generation=self.generation,
                                 family_file=self.family_file,
                                 family_digest=self.family_digest)


class ShardedCollection:
    """A collection whose packed shards live on disk, attached on demand.

    The out-of-core counterpart of :class:`BatmapCollection` for the
    counting phase: :meth:`attach` memory-maps one shard's words and wraps
    them in a :class:`~repro.core.batch.WidthClassIndex` (gathers pull only
    the rows a query touches into RAM), and
    :meth:`count_all_pairs` streams shard pairs through the batch/parallel
    engines via :class:`~repro.parallel.sharded.ShardedPairCounter`.
    """

    def __init__(self, spill_dir: Path, universe_size: int, r0: int,
                 shards: list, *, family: HashFamily | None = None,
                 payload_bits: int = DEFAULT_CONFIG.payload_bits,
                 generation: int = 0,
                 tombstones: np.ndarray | None = None,
                 tombstones_file: str | None = None,
                 tombstones_digest: str | None = None,
                 family_file: str | None = None,
                 family_digest: str | None = None) -> None:
        """Wrap already-spilled shards; use :meth:`build` or :meth:`from_spill`."""
        self.spill_dir = Path(spill_dir)
        self.universe_size = universe_size
        self.r0 = int(r0)
        self.shards = list(shards)
        self.payload_bits = int(payload_bits)
        self.generation = int(generation)
        self.tombstones = (np.zeros(0, dtype=np.int64) if tombstones is None
                           else np.asarray(tombstones, dtype=np.int64))
        #: Manifest v3 file entries (name + content digest) of the tombstone
        #: and family files; ``None`` digests mean a v1/v2 artifact that has
        #: not yet paid its upgrade hash.
        self.tombstones_file = tombstones_file
        self.tombstones_digest = tombstones_digest
        self.family_file = family_file
        self.family_digest = family_digest
        self._family = family
        self._live_ids: np.ndarray | None = None
        self._live_positions: np.ndarray | None = None
        self._content_token: str | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        sets,
        universe_size: int,
        spill_dir: str | Path,
        *,
        memory_budget: int,
        config: BatmapConfig = DEFAULT_CONFIG,
        rng: RngLike = None,
        family: HashFamily | None = None,
        family_kind: str = "eager",
        family_capacity: int | None = None,
        build_compute: str = "auto",
        build_workers: int | None = None,
        max_sets_per_shard: int | None = None,
        result_format: str = "dense",
    ) -> "ShardedCollection":
        """Shard, build and spill an in-memory list of sets.

        The convenience entry point (tests, matrix workloads); the streaming
        mining pipeline drives :class:`ShardedCollectionBuilder` directly so
        tidlists are never all resident.  Results are bit-identical to
        ``BatmapCollection.build(sets, ...)`` with the same ``rng`` on every
        counting path.
        """
        require(len(sets) > 0, "cannot build an empty collection")
        if family is None:
            if family_kind == "lazy":
                # The default capacity is the current shift plateau (growth
                # is free up to it); an explicit family_capacity buys more
                # headroom at the cost of the larger plateau's range floor.
                capacity = (family_capacity if family_capacity is not None
                            else config.universe_capacity(universe_size))
                require(capacity >= universe_size,
                        f"family_capacity ({capacity}) must cover the "
                        f"universe ({universe_size})")
                family = ExtensibleHashFamily.create(
                    universe_size, capacity=capacity,
                    shift=config.shift_for_universe(capacity), rng=rng)
            else:
                require(family_kind == "eager",
                        f"family_kind must be 'eager' or 'lazy', got {family_kind!r}")
                shift = config.shift_for_universe(universe_size)
                family = HashFamily.create(universe_size, shift=shift, rng=rng)
        dedup = [_dedup_sorted(s) for s in sets]
        sizes = np.array([d.size for d in dedup], dtype=np.int64)
        range_universe = family.range_universe
        packed = set_packed_bytes(sizes, range_universe, config)
        available = working_budget(
            memory_budget, universe_size, len(sets),
            lazy_family=isinstance(family, ExtensibleHashFamily),
            result_format=result_format)
        ranges = plan_shard_ranges(packed, available,
                                   max_sets_per_shard=max_sets_per_shard)
        r0 = int(min(
            max(4, config.range_for_size(int(size), range_universe))
            for size in sizes.tolist()
        ))
        builder = ShardedCollectionBuilder(
            spill_dir, universe_size, r0, family=family, config=config,
            build_compute=build_compute, build_workers=build_workers,
            memory_budget=available,
        )
        for lo, hi in ranges:
            builder.add_shard(dedup[lo:hi])
        return builder.finalize()

    @classmethod
    def from_spill(cls, spill_dir: str | Path) -> "ShardedCollection":
        """Re-attach a previously spilled collection from its manifest.

        Negotiates the spill version: the current version 3 (atomic commits
        + checksums), version 2 (generation, tombstones, shard kinds) and
        the pre-incremental version 1 (implied generation 0, no tombstones)
        all attach; anything else — or a manifest that is not valid JSON /
        is missing required fields — raises
        :class:`~repro.core.errors.SpillFormatError`.  Reads stay mmap'd
        and checksums are *not* verified here (that is ``repro verify``'s
        job), but manifest/file cross-checks that would otherwise cause
        silently wrong results (a missing or wrong-sized tombstone file)
        are enforced.  Staging leftovers of dead mutator processes are
        swept on the way in.
        """
        spill_dir = Path(spill_dir)
        sweep_stale_staging(spill_dir)
        manifest_path = spill_dir / MANIFEST_NAME
        if not manifest_path.exists():
            raise SpillFormatError(f"no {MANIFEST_NAME} in {spill_dir}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise SpillFormatError(
                f"{manifest_path} is corrupt: not valid JSON ({exc})") from exc
        if not isinstance(manifest, dict):
            raise SpillFormatError(f"{manifest_path} is corrupt: not an object")
        version = manifest.get("version")
        if version not in SUPPORTED_SPILL_VERSIONS:
            raise SpillFormatError(
                f"unsupported spill version {version!r} in {manifest_path} "
                f"(supported: {', '.join(map(str, SUPPORTED_SPILL_VERSIONS))})")
        try:
            shards = []
            covered = 0
            for k, entry in enumerate(manifest["shards"]):
                directory = spill_dir / entry["dir"]
                lo, hi = int(entry["lo"]), int(entry["hi"])
                if lo != covered or hi < lo:
                    raise SpillFormatError(
                        f"{manifest_path}: shard {k} covers [{lo}, {hi}) but "
                        f"the table reaches {covered} — attaching would "
                        "misnumber sets; run 'repro verify'")
                covered = hi
                order = _load_shard_array(k, directory / "order.npy")
                failed = _load_shard_array(k, directory / "failed.npy")
                if order.shape != (hi - lo,):
                    raise SpillFormatError(
                        f"{directory / 'order.npy'} holds {order.shape} "
                        f"entries for a shard of {hi - lo} sets — the "
                        "artifact is damaged; run 'repro verify'")
                shards.append(ShardInfo(
                    index=k, lo=lo, hi=hi,
                    directory=directory, nbytes=int(entry["nbytes"]),
                    build_backend=entry["build_backend"], order=order,
                    failed=failed, kind=entry.get("kind", "base"),
                    file_digests=entry.get("files"),
                ))
            declared_sets = manifest.get("n_sets")
            if declared_sets is not None and int(declared_sets) != covered:
                raise SpillFormatError(
                    f"{manifest_path}: manifest records {declared_sets} sets "
                    f"but the shard table covers {covered} — the artifact is "
                    "damaged; run 'repro verify'")
            universe_size = int(manifest["universe_size"])
            r0 = int(manifest["r0"])
            tombstones_entry = manifest.get("tombstones") if version == 3 else None
            if version == 3:
                tombstones_file = (tombstones_entry["file"]
                                   if tombstones_entry else None)
                tombstones_digest = (tombstones_entry["digest"]
                                     if tombstones_entry else None)
                declared = int(tombstones_entry["n"]) if tombstones_entry else 0
            else:
                tombstones_file = (TOMBSTONES_NAME
                                   if (spill_dir / TOMBSTONES_NAME).exists()
                                   else None)
                tombstones_digest = None
                declared = manifest.get("n_tombstones")
                if declared is not None:
                    declared = int(declared)
            family_entry = manifest.get("family") if version == 3 else None
            if version == 3:
                family_file = family_entry["file"] if family_entry else None
                family_digest = family_entry["digest"] if family_entry else None
            else:
                family_file = (FAMILY_NAME
                               if (spill_dir / FAMILY_NAME).exists() else None)
                family_digest = None
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, SpillFormatError):
                raise
            raise SpillFormatError(
                f"{manifest_path} is corrupt: {exc!r}") from exc
        if tombstones_file is not None:
            tombstones_path = spill_dir / tombstones_file
            if not tombstones_path.exists():
                raise SpillFormatError(
                    f"{spill_dir}: manifest references tombstone file "
                    f"{tombstones_file} which is missing — serving this "
                    "artifact would resurrect deleted sets; run "
                    "'repro verify' / rebuild")
            try:
                tombstones = np.asarray(
                    np.load(tombstones_path, allow_pickle=False),
                    dtype=np.int64)
            except Exception as exc:
                raise SpillFormatError(
                    f"{tombstones_path} is unreadable "
                    f"({type(exc).__name__}: {exc})") from exc
        else:
            tombstones = np.zeros(0, dtype=np.int64)
        if declared is not None and declared != int(tombstones.size):
            raise SpillFormatError(
                f"{spill_dir}: manifest records {declared} tombstone(s) but "
                f"{tombstones.size} are on disk — the artifact is damaged; "
                "run 'repro verify'")
        return cls(spill_dir, universe_size, r0, shards,
                   payload_bits=int(manifest.get(
                       "payload_bits", DEFAULT_CONFIG.payload_bits)),
                   generation=int(manifest.get("generation", 0)),
                   tombstones=tombstones,
                   tombstones_file=tombstones_file,
                   tombstones_digest=tombstones_digest,
                   family_file=family_file,
                   family_digest=family_digest)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.n_sets

    @property
    def n_physical_sets(self) -> int:
        """Sets physically stored across all shards, tombstoned ones included."""
        return self.shards[-1].hi if self.shards else 0

    @property
    def n_sets(self) -> int:
        """Number of *live* sets — the public index space of every read path.

        Equal to :attr:`n_physical_sets` until something is deleted.  Live
        set ``i`` is physical set ``live_ids[i]``; results (counts, top-k,
        failed lists, served responses) are expressed in live indices, which
        is what makes a post-delete collection bit-identical to a
        from-scratch build over only the surviving sets.
        """
        return self.n_physical_sets - int(self.tombstones.size)

    @property
    def live_ids(self) -> np.ndarray:
        """Sorted physical ids of the live (non-tombstoned) sets."""
        if self._live_ids is None:
            self._live_ids = np.setdiff1d(
                np.arange(self.n_physical_sets, dtype=np.int64),
                self.tombstones, assume_unique=True)
        return self._live_ids

    @property
    def live_positions(self) -> np.ndarray:
        """Physical id -> live index, or -1 for tombstoned sets."""
        if self._live_positions is None:
            positions = np.full(self.n_physical_sets, -1, dtype=np.int64)
            positions[self.live_ids] = np.arange(self.n_sets, dtype=np.int64)
            self._live_positions = positions
        return self._live_positions

    def _invalidate(self) -> None:
        self._live_ids = None
        self._live_positions = None
        self._content_token = None

    @property
    def content_token(self) -> str:
        """Digest identifying this artifact's exact contents + generation.

        Mixed into serving cache keys so a mutated collection can never
        satisfy a query from a pre-mutation cache entry.  Derived from the
        manifest bytes and the tombstone set — both change on every
        append / delete / compact (the generation counter is stamped into
        the manifest).
        """
        if self._content_token is None:
            digest = hashlib.blake2b(digest_size=8)
            manifest_path = self.spill_dir / MANIFEST_NAME
            if manifest_path.exists():
                digest.update(manifest_path.read_bytes())
            digest.update(self.tombstones.tobytes())
            self._content_token = f"g{self.generation}-{digest.hexdigest()}"
        return self._content_token

    @property
    def n_shards(self) -> int:
        """Number of spilled shards."""
        return len(self.shards)

    # ------------------------------------------------------------------ #
    # Mutation: append / delete (compaction lives in core.compaction)
    # ------------------------------------------------------------------ #
    def append(
        self,
        sets,
        *,
        universe_size: int | None = None,
        config: BatmapConfig | None = None,
        build_compute: str = "auto",
        build_workers: int | None = None,
        memory_budget: int | None = None,
    ) -> "ShardedCollection":
        """Ingest new sets as delta shards; see :meth:`ShardedCollectionBuilder.append`.

        Mutates this object in place (shard table, r0, generation, family)
        and also returns it, so both fluent and statement styles work.
        """
        builder = ShardedCollectionBuilder.for_append(
            self, config=config, build_compute=build_compute,
            build_workers=build_workers, memory_budget=memory_budget)
        updated = builder.append(sets, universe_size=universe_size)
        self.shards = updated.shards
        self.universe_size = updated.universe_size
        self.r0 = updated.r0
        self.generation = updated.generation
        self.tombstones_file = updated.tombstones_file
        self.tombstones_digest = updated.tombstones_digest
        self.family_file = updated.family_file
        self.family_digest = updated.family_digest
        self._family = updated._family
        self._invalidate()
        return self

    def delete(self, set_ids) -> int:
        """Tombstone live sets (ids in the *current live* index space).

        Deletes are metadata-only: the rows stay on disk until compaction
        purges them, but every read path consults the tombstone set first.
        The new tombstone array is staged under a generational name and
        published with the manifest in one atomic commit — the live
        tombstone file is never overwritten, so a crash at any point leaves
        either the pre- or the post-delete generation intact.  In-memory
        state mutates only after the commit point.  Returns the new
        generation.
        """
        ids = np.unique(np.asarray(set_ids, dtype=np.int64))
        require(ids.size > 0, "delete requires at least one set id")
        require(int(ids[0]) >= 0 and int(ids[-1]) < self.n_sets,
                f"set ids must be in [0, {self.n_sets}), got "
                f"[{int(ids[0])}, {int(ids[-1])}]")
        physical = self.live_ids[ids]
        new_tombstones = np.union1d(self.tombstones, physical)
        generation = self.generation + 1
        commit = AtomicCommit(self.spill_dir)
        try:
            faultpoint("delete.tombstones")
            name = f"tombstones_{generation:04d}.npy"
            staged = commit.stage(name)
            np.save(staged, new_tombstones)
            digest = file_digest(staged)
            if self.tombstones_file is not None:
                commit.add_garbage(self.spill_dir / self.tombstones_file)
            manifest = build_spill_manifest(
                universe_size=self.universe_size, r0=self.r0,
                payload_bits=self.payload_bits, shards=self.shards,
                generation=generation, family_kind=self.family_kind,
                tombstones={"file": name, "digest": digest,
                            "n": int(new_tombstones.size)},
                family=self._family_entry(),
            )
            commit.commit(manifest)
        except BaseException:
            commit.abort()
            raise
        self.tombstones = new_tombstones
        self.tombstones_file = name
        self.tombstones_digest = digest
        self.generation = generation
        self._invalidate()
        return self.generation

    def _family_entry(self) -> dict | None:
        """Carried-forward manifest ``family`` entry for a non-append commit."""
        if self.family_file is None:
            return None
        if self.family_digest is None:
            self.family_digest = file_digest(self.spill_dir / self.family_file)
        return {"file": self.family_file, "digest": self.family_digest}

    def compact(self, *, memory_budget: int | None = None,
                full: bool = False) -> "ShardedCollection":
        """Merge shards and purge tombstones; see :func:`repro.core.compaction.compact`.

        Like :meth:`append` and :meth:`delete`, mutates this object in place
        (shard table, tombstones, generation) and returns it; a planned
        no-op leaves everything — including the generation — untouched.
        """
        from repro.core.compaction import compact  # local import: avoid a cycle

        updated = compact(self, memory_budget=memory_budget, full=full)
        if updated is not self:
            self.shards = updated.shards
            self.generation = updated.generation
            self.tombstones = updated.tombstones
            self.tombstones_file = updated.tombstones_file
            self.tombstones_digest = updated.tombstones_digest
            self.family_file = updated.family_file
            self.family_digest = updated.family_digest
            self._invalidate()
        return self

    @property
    def family_kind(self) -> str:
        """``"lazy"`` for an extensible family, ``"eager"`` otherwise."""
        if self._family is None and self.family_file is None:
            return "eager"
        return ("lazy" if isinstance(self.family, ExtensibleHashFamily)
                else "eager")

    @property
    def total_packed_bytes(self) -> int:
        """Packed device bytes on disk, summed over all shards."""
        return sum(shard.nbytes for shard in self.shards)

    @property
    def family(self) -> HashFamily:
        """The shared hash family, loaded lazily from ``family.npz``.

        Pair counting never needs the family (the packed bytes are
        self-contained), so attaching a spill without one still works;
        membership, decoding and multiway serving do need it and raise
        :class:`~repro.core.errors.SpillFormatError` when the artifact
        predates family persistence.  Rebuild with a current ``repro
        build-index`` to add it.
        """
        if self._family is None:
            name = self.family_file or FAMILY_NAME
            family_path = self.spill_dir / name
            if not family_path.exists():
                if self.family_file is not None:
                    raise SpillFormatError(
                        f"family file {name} referenced by the manifest of "
                        f"{self.spill_dir} is missing — the artifact is "
                        "damaged; run 'repro verify', or rebuild")
                raise SpillFormatError(
                    f"no {FAMILY_NAME} in {self.spill_dir}: this spill predates "
                    "hash-family persistence and cannot serve membership or "
                    "multiway queries — rebuild it with 'repro build-index'"
                )
            self._family = load_family(family_path)
        return self._family

    @property
    def total_words(self) -> int:
        """Sum of true (unpadded) packed row widths, for planner features."""
        return sum(int(np.load(s.directory / "widths.npy").sum()) for s in self.shards)

    def attach(self, shard_index: int, *, block_words=None) -> WidthClassIndex:
        """Memory-map one shard's words and build its width-class engine.

        The returned index gathers rows lazily — attaching is cheap, and a
        query's resident cost is the rows it touches (plus the index's
        per-class cache once whole-class queries run).  Callers own the
        lifetime: dropping the index releases the mapping.
        """
        shard = self.shards[shard_index]
        words = _load_shard_array(shard_index, shard.directory / "words.npy",
                                  mmap_mode="r")
        offsets = _load_shard_array(shard_index, shard.directory / "offsets.npy")
        widths = _load_shard_array(shard_index, shard.directory / "widths.npy")
        kwargs = {} if block_words is None else {"block_words": block_words}
        return WidthClassIndex(words, offsets, widths, **kwargs)

    def failed_insertions(self) -> dict:
        """Map ``element -> [live set indices]`` of failed insertions.

        Tombstoned sets are dropped and the surviving indices are expressed
        in the live index space, matching what a from-scratch build over
        only the live sets would report.
        """
        live = self.live_positions if self.tombstones.size else None
        failures: dict[int, list[int]] = {}
        for shard in self.shards:
            for element, local in shard.failed.tolist():
                physical = int(local) + shard.lo
                if live is None:
                    failures.setdefault(int(element), []).append(physical)
                    continue
                position = int(live[physical])
                if position >= 0:
                    failures.setdefault(int(element), []).append(position)
        for members in failures.values():
            members.sort()
        return failures

    def count_all_pairs(self, *, compute: str = "auto", workers=None,
                        memory_budget: int | None = None) -> np.ndarray:
        """Dense ``n x n`` stored-copy count matrix in original set order.

        Bit-identical to ``BatmapCollection.count_all_pairs`` on the same
        sets; the work streams shard-pair rectangles through
        :class:`~repro.parallel.sharded.ShardedPairCounter`.
        """
        from repro.parallel.sharded import ShardedPairCounter

        counter = ShardedPairCounter(self, compute=compute, workers=workers,
                                     memory_budget=memory_budget)
        return counter.counts()

    def cleanup(self) -> None:
        """Delete the spill directory (idempotent)."""
        shutil.rmtree(self.spill_dir, ignore_errors=True)
