"""Out-of-core sharded batmap collections: build, spill, memory-mapped re-attach.

A :class:`~repro.core.collection.BatmapCollection` holds every batmap and the
whole packed device buffer in memory at once — the resident-set assumption
the paper's in-memory workloads make.  This module removes it: a
:class:`ShardedCollection` partitions the sets into contiguous *shards*,
builds each shard as an ordinary ``BatmapCollection`` (through the PR-4 bulk
engine via :func:`~repro.core.plan.plan_build`), spills the shard's packed
words to disk in exactly the :class:`~repro.core.batch.WidthClassIndex`
layout (``words`` / ``offsets`` / ``widths``), and frees it before the next
shard is built.  Counting re-attaches shards with ``numpy`` memory mapping,
so the resident set is bounded by the shard budget, never by the instance.

Identity guarantees (pinned by ``tests/test_sharded.py``):

* per-set placement depends only on the set, the shared hash family, the
  hash range and the config — never on which shard (or whether any shard)
  the set landed in — so sharded construction is byte-identical to the
  monolithic build;
* every shard is packed with one **collection-global** interleave
  granularity ``r0`` (the minimum range over *all* sets, exactly what the
  monolithic device buffer would use), so cross-shard folds satisfy the same
  ``p mod width`` identity as in-buffer folds and all counts are
  bit-identical to the in-memory engines.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.batch import WidthClassIndex
from repro.core.bulk_build import device_word_layout, pack_group_words
from repro.core.collection import BatmapCollection, _dedup_sorted
from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.core.errors import LayoutError, SpillFormatError
from repro.core.hashing import HashFamily, load_family, save_family
from repro.utils.rng import RngLike
from repro.utils.validation import require, require_positive

__all__ = [
    "SHARD_BUDGET_DIVISOR",
    "MIN_WORKING_BUDGET",
    "MANIFEST_NAME",
    "FAMILY_NAME",
    "set_packed_bytes",
    "fixed_resident_bytes",
    "working_budget",
    "plan_shard_ranges",
    "ShardInfo",
    "ShardedCollection",
    "ShardedCollectionBuilder",
]

#: Fraction of the working budget one spilled shard may occupy.  The
#: counting phase attaches two shards plus SWAR temporaries, and the build
#: phase holds a shard's tidlists, entry stacks and cuckoo slot tables at
#: once (several multiples of the packed bytes) — a tenth of the budget per
#: shard keeps every phase's simultaneous working sets under the ceiling.
SHARD_BUDGET_DIVISOR = 10

#: Smallest working budget (after fixed residents) the pipeline accepts;
#: below this not even a singleton shard's build tables fit.
MIN_WORKING_BUDGET = 4096

MANIFEST_NAME = "manifest.json"
#: Serialised hash family (``.npz``), written next to the manifest so a
#: serving process can answer membership / decode queries without the build
#: process's in-memory family.  Optional for pure pair counting.
FAMILY_NAME = "family.npz"
_SPILL_VERSION = 1


def fixed_resident_bytes(universe_size: int, n_sets: int) -> int:
    """Resident bytes no amount of sharding can remove.

    The shared hash family stores three permutations with their inverses
    (six ``int64`` arrays over the universe), and the all-pairs result is a
    dense ``int64`` ``n x n`` matrix.  Both are needed by the in-memory and
    the out-of-core paths alike; the configured memory budget must cover
    them *plus* the shardable state.
    """
    return 48 * universe_size + 8 * n_sets * n_sets


def working_budget(memory_budget: int, universe_size: int, n_sets: int) -> int:
    """Budget left for shardable state after the fixed residents.

    Raises ``ValueError`` with the full accounting when the fixed residents
    leave less than :data:`MIN_WORKING_BUDGET` — a budget that cannot hold
    the hash family and the result matrix cannot hold any pipeline.
    """
    require_positive(memory_budget, "memory_budget")
    fixed = fixed_resident_bytes(universe_size, n_sets)
    available = memory_budget - fixed
    if available < MIN_WORKING_BUDGET:
        raise ValueError(
            f"memory budget ({memory_budget} B) is too small: the hash family "
            f"over {universe_size} transactions and the {n_sets}x{n_sets} "
            f"result matrix are irreducibly resident ({fixed} B), leaving "
            f"less than {MIN_WORKING_BUDGET} B for shards"
        )
    return available


def set_packed_bytes(sizes, universe_size: int, config: BatmapConfig) -> np.ndarray:
    """Padded packed device bytes per set, from set sizes alone.

    The same geometry :func:`~repro.core.bulk_build.device_word_layout`
    assigns once the batmaps exist (range from
    :meth:`~repro.core.config.BatmapConfig.range_for_size` clamped to the
    word floor, width padded to the 16-word boundary) — so resident-set
    planning needs no construction.
    """
    sizes = np.asarray(sizes, dtype=np.int64)
    out = np.empty(sizes.size, dtype=np.int64)
    cache: dict[int, int] = {}
    for k, size in enumerate(sizes.tolist()):
        nbytes = cache.get(size)
        if nbytes is None:
            r = max(4, config.range_for_size(size, universe_size))
            width = 3 * r // 4
            nbytes = cache[size] = ((width + 15) // 16) * 16 * 4
        out[k] = nbytes
    return out


def plan_shard_ranges(
    packed_bytes,
    memory_budget: int,
    *,
    max_sets_per_shard: int | None = None,
) -> list:
    """Partition sets (in order) into contiguous shards under the budget.

    ``packed_bytes[k]`` is set ``k``'s padded device size (from
    :func:`set_packed_bytes`).  Each shard's total stays at or below
    ``memory_budget // SHARD_BUDGET_DIVISOR`` — except that a single set
    larger than the shard budget still gets a (singleton) shard: sharding
    cannot split one batmap, it can only bound how many are resident.
    Returns ``[(lo, hi), ...]`` covering ``[0, n)``.
    """
    packed_bytes = np.asarray(packed_bytes, dtype=np.int64)
    require_positive(memory_budget, "memory_budget")
    shard_budget = max(1, memory_budget // SHARD_BUDGET_DIVISOR)
    ranges: list[tuple[int, int]] = []
    lo = 0
    running = 0
    for k in range(packed_bytes.size):
        nbytes = int(packed_bytes[k])
        full = max_sets_per_shard is not None and (k - lo) >= max_sets_per_shard
        if k > lo and (running + nbytes > shard_budget or full):
            ranges.append((lo, k))
            lo, running = k, 0
        running += nbytes
    if packed_bytes.size:
        ranges.append((lo, int(packed_bytes.size)))
    return ranges


@dataclass
class ShardInfo:
    """Metadata of one spilled shard (everything but the words themselves)."""

    index: int
    lo: int                 #: first global set index covered by this shard
    hi: int                 #: one past the last global set index
    directory: Path
    nbytes: int             #: packed words on disk
    build_backend: str
    order: np.ndarray       #: sorted slot -> local set index (lo-relative)
    failed: np.ndarray      #: (k, 2) [element, local set index] failed insertions

    @property
    def n_sets(self) -> int:
        """Number of sets covered by this shard."""
        return self.hi - self.lo

    @property
    def global_order(self) -> np.ndarray:
        """Sorted slot -> *global* set index."""
        return self.order + self.lo


def _spill_buffer_words(
    collection: BatmapCollection, r0: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(words, offsets, widths)`` of a collection packed at granularity ``r0``.

    When the collection's own (bulk-pre-assembled or lazily packed) buffer
    already uses ``r0``, it is reused as-is; otherwise the entries are
    re-interleaved at the global granularity — same bytes the monolithic
    buffer would hold for these rows, which is what makes cross-shard folds
    exact.
    """
    own_r0 = collection.r0
    if own_r0 == r0:
        buffer = collection.device_buffer()
        return buffer.words, buffer.offsets, buffer.widths
    require(own_r0 % r0 == 0,
            f"collection r0 {own_r0} is not a multiple of the global r0 {r0}")
    batmaps = collection.batmaps_sorted
    widths, offsets, total = device_word_layout([bm.r for bm in batmaps])
    words = np.zeros(total, dtype=np.uint32)
    start = 0
    while start < len(batmaps):
        stop = start
        r = batmaps[start].r
        while stop < len(batmaps) and batmaps[stop].r == r:
            stop += 1
        entries = np.stack([bm.entries for bm in batmaps[start:stop]])
        packed, _ = pack_group_words(entries, r0)
        rows = np.arange(start, stop)
        words[offsets[rows][:, None] + np.arange(packed.shape[1])] = packed
        start = stop
    return words, offsets, widths


class ShardedCollectionBuilder:
    """Incremental out-of-core construction: add shards, spill, finalize.

    Drives one shard at a time through the ordinary
    :meth:`BatmapCollection.build` (planner-routed: host / bulk / parallel)
    and writes its packed buffer plus metadata to ``spill_dir/shard_NNNN/``.
    The caller supplies set batches in global order; only one shard's
    batmaps are ever resident.
    """

    def __init__(
        self,
        spill_dir: str | Path,
        universe_size: int,
        r0: int,
        *,
        family: HashFamily,
        config: BatmapConfig = DEFAULT_CONFIG,
        build_compute: str = "auto",
        build_workers: int | None = None,
        memory_budget: int | None = None,
    ) -> None:
        require_positive(universe_size, "universe_size")
        if config.entry_storage_bits != 8:
            raise LayoutError(
                "the sharded pipeline spills byte-packed device buffers; "
                f"payload_bits={config.payload_bits} stores "
                f"{config.entry_dtype} entries — use the in-memory path"
            )
        require(family.universe_size == universe_size,
                "family universe size does not match universe_size")
        self.spill_dir = Path(spill_dir)
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.universe_size = universe_size
        self.r0 = int(r0)
        self.family = family
        self.config = config
        self.build_compute = build_compute
        self.build_workers = build_workers
        self.memory_budget = memory_budget
        self.shards: list[ShardInfo] = []
        self._next_lo = 0
        self._finalized = False

    def _shard_build_compute(self, sets) -> str:
        """Per-shard engine choice under the working budget.

        The bulk engine's floor is one set's group arrays (about six 8-byte
        per-slot arrays over ``3 * r`` slots); when even that floor would
        eat more than half the working budget, the shard builds with the
        serial inserter instead — identical output, a fraction of the
        working set.
        """
        if self.memory_budget is None or self.build_compute != "auto":
            return self.build_compute
        largest = max(np.asarray(s).size for s in sets)
        r_max = max(4, self.config.range_for_size(int(largest), self.universe_size))
        if 144 * r_max > self.memory_budget // 2:
            return "host"
        return self.build_compute

    def add_shard(self, sets) -> ShardInfo:
        """Build, spill and release one shard of sets (next global range)."""
        require(not self._finalized, "builder is already finalized")
        require(len(sets) > 0, "cannot add an empty shard")
        collection = BatmapCollection.build(
            sets,
            self.universe_size,
            config=self.config,
            family=self.family,
            build_compute=self._shard_build_compute(sets),
            build_workers=self.build_workers,
            memory_budget=self.memory_budget,
        )
        words, offsets, widths = _spill_buffer_words(collection, self.r0)
        index = len(self.shards)
        shard_dir = self.spill_dir / f"shard_{index:04d}"
        shard_dir.mkdir(exist_ok=True)
        np.save(shard_dir / "words.npy", words)
        np.save(shard_dir / "offsets.npy", offsets)
        np.save(shard_dir / "widths.npy", widths)
        np.save(shard_dir / "order.npy", collection.order)
        failed_pairs = [
            (element, local)
            for element, locals_ in collection.failed_insertions().items()
            for local in locals_
        ]
        failed = (np.array(sorted(failed_pairs), dtype=np.int64).reshape(-1, 2)
                  if failed_pairs else np.zeros((0, 2), dtype=np.int64))
        np.save(shard_dir / "failed.npy", failed)
        info = ShardInfo(
            index=index,
            lo=self._next_lo,
            hi=self._next_lo + len(sets),
            directory=shard_dir,
            nbytes=int(words.nbytes),
            build_backend=(collection.build_plan.backend
                           if collection.build_plan else "host"),
            order=collection.order,
            failed=failed,
        )
        self.shards.append(info)
        self._next_lo = info.hi
        return info

    def finalize(self) -> "ShardedCollection":
        """Write the manifest and return the attached collection."""
        require(self.shards, "cannot finalize a sharded collection with no shards")
        self._finalized = True
        manifest = {
            "version": _SPILL_VERSION,
            "universe_size": self.universe_size,
            "n_sets": self._next_lo,
            "r0": self.r0,
            "payload_bits": self.config.payload_bits,
            "shards": [
                {
                    "dir": shard.directory.name,
                    "lo": shard.lo,
                    "hi": shard.hi,
                    "nbytes": shard.nbytes,
                    "build_backend": shard.build_backend,
                }
                for shard in self.shards
            ],
        }
        (self.spill_dir / MANIFEST_NAME).write_text(json.dumps(manifest, indent=1))
        save_family(self.spill_dir / FAMILY_NAME, self.family)
        return ShardedCollection(self.spill_dir, self.universe_size, self.r0,
                                 self.shards, family=self.family,
                                 payload_bits=self.config.payload_bits)


class ShardedCollection:
    """A collection whose packed shards live on disk, attached on demand.

    The out-of-core counterpart of :class:`BatmapCollection` for the
    counting phase: :meth:`attach` memory-maps one shard's words and wraps
    them in a :class:`~repro.core.batch.WidthClassIndex` (gathers pull only
    the rows a query touches into RAM), and
    :meth:`count_all_pairs` streams shard pairs through the batch/parallel
    engines via :class:`~repro.parallel.sharded.ShardedPairCounter`.
    """

    def __init__(self, spill_dir: Path, universe_size: int, r0: int,
                 shards: list, *, family: HashFamily | None = None,
                 payload_bits: int = DEFAULT_CONFIG.payload_bits) -> None:
        """Wrap already-spilled shards; use :meth:`build` or :meth:`from_spill`."""
        self.spill_dir = Path(spill_dir)
        self.universe_size = universe_size
        self.r0 = int(r0)
        self.shards = list(shards)
        self.n_sets = self.shards[-1].hi if self.shards else 0
        self.payload_bits = int(payload_bits)
        self._family = family

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        sets,
        universe_size: int,
        spill_dir: str | Path,
        *,
        memory_budget: int,
        config: BatmapConfig = DEFAULT_CONFIG,
        rng: RngLike = None,
        family: HashFamily | None = None,
        build_compute: str = "auto",
        build_workers: int | None = None,
        max_sets_per_shard: int | None = None,
    ) -> "ShardedCollection":
        """Shard, build and spill an in-memory list of sets.

        The convenience entry point (tests, matrix workloads); the streaming
        mining pipeline drives :class:`ShardedCollectionBuilder` directly so
        tidlists are never all resident.  Results are bit-identical to
        ``BatmapCollection.build(sets, ...)`` with the same ``rng`` on every
        counting path.
        """
        require(len(sets) > 0, "cannot build an empty collection")
        if family is None:
            shift = config.shift_for_universe(universe_size)
            family = HashFamily.create(universe_size, shift=shift, rng=rng)
        dedup = [_dedup_sorted(s) for s in sets]
        sizes = np.array([d.size for d in dedup], dtype=np.int64)
        packed = set_packed_bytes(sizes, universe_size, config)
        available = working_budget(memory_budget, universe_size, len(sets))
        ranges = plan_shard_ranges(packed, available,
                                   max_sets_per_shard=max_sets_per_shard)
        r0 = int(min(
            max(4, config.range_for_size(int(size), universe_size))
            for size in sizes.tolist()
        ))
        builder = ShardedCollectionBuilder(
            spill_dir, universe_size, r0, family=family, config=config,
            build_compute=build_compute, build_workers=build_workers,
            memory_budget=available,
        )
        for lo, hi in ranges:
            builder.add_shard(dedup[lo:hi])
        return builder.finalize()

    @classmethod
    def from_spill(cls, spill_dir: str | Path) -> "ShardedCollection":
        """Re-attach a previously spilled collection from its manifest."""
        spill_dir = Path(spill_dir)
        manifest_path = spill_dir / MANIFEST_NAME
        if not manifest_path.exists():
            raise SpillFormatError(f"no {MANIFEST_NAME} in {spill_dir}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("version") != _SPILL_VERSION:
            raise SpillFormatError(
                f"unsupported spill version {manifest.get('version')!r}")
        shards = []
        for k, entry in enumerate(manifest["shards"]):
            directory = spill_dir / entry["dir"]
            try:
                order = np.load(directory / "order.npy")
                failed = np.load(directory / "failed.npy")
            except FileNotFoundError as exc:
                raise SpillFormatError(f"shard spill {directory} is incomplete") from exc
            shards.append(ShardInfo(
                index=k, lo=int(entry["lo"]), hi=int(entry["hi"]),
                directory=directory, nbytes=int(entry["nbytes"]),
                build_backend=entry["build_backend"], order=order, failed=failed,
            ))
        return cls(spill_dir, int(manifest["universe_size"]),
                   int(manifest["r0"]), shards,
                   payload_bits=int(manifest.get(
                       "payload_bits", DEFAULT_CONFIG.payload_bits)))

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.n_sets

    @property
    def n_shards(self) -> int:
        """Number of spilled shards."""
        return len(self.shards)

    @property
    def total_packed_bytes(self) -> int:
        """Packed device bytes on disk, summed over all shards."""
        return sum(shard.nbytes for shard in self.shards)

    @property
    def family(self) -> HashFamily:
        """The shared hash family, loaded lazily from ``family.npz``.

        Pair counting never needs the family (the packed bytes are
        self-contained), so attaching a spill without one still works;
        membership, decoding and multiway serving do need it and raise
        :class:`~repro.core.errors.SpillFormatError` when the artifact
        predates family persistence.  Rebuild with a current ``repro
        build-index`` to add it.
        """
        if self._family is None:
            family_path = self.spill_dir / FAMILY_NAME
            if not family_path.exists():
                raise SpillFormatError(
                    f"no {FAMILY_NAME} in {self.spill_dir}: this spill predates "
                    "hash-family persistence and cannot serve membership or "
                    "multiway queries — rebuild it with 'repro build-index'"
                )
            self._family = load_family(family_path)
        return self._family

    @property
    def total_words(self) -> int:
        """Sum of true (unpadded) packed row widths, for planner features."""
        return sum(int(np.load(s.directory / "widths.npy").sum()) for s in self.shards)

    def attach(self, shard_index: int, *, block_words=None) -> WidthClassIndex:
        """Memory-map one shard's words and build its width-class engine.

        The returned index gathers rows lazily — attaching is cheap, and a
        query's resident cost is the rows it touches (plus the index's
        per-class cache once whole-class queries run).  Callers own the
        lifetime: dropping the index releases the mapping.
        """
        shard = self.shards[shard_index]
        try:
            words = np.load(shard.directory / "words.npy", mmap_mode="r")
            offsets = np.load(shard.directory / "offsets.npy")
            widths = np.load(shard.directory / "widths.npy")
        except FileNotFoundError as exc:
            raise SpillFormatError(
                f"shard spill {shard.directory} is incomplete") from exc
        kwargs = {} if block_words is None else {"block_words": block_words}
        return WidthClassIndex(words, offsets, widths, **kwargs)

    def failed_insertions(self) -> dict:
        """Map ``element -> [global set indices]`` of failed insertions."""
        failures: dict[int, list[int]] = {}
        for shard in self.shards:
            for element, local in shard.failed.tolist():
                failures.setdefault(int(element), []).append(int(local) + shard.lo)
        for members in failures.values():
            members.sort()
        return failures

    def count_all_pairs(self, *, compute: str = "auto", workers=None,
                        memory_budget: int | None = None) -> np.ndarray:
        """Dense ``n x n`` stored-copy count matrix in original set order.

        Bit-identical to ``BatmapCollection.count_all_pairs`` on the same
        sets; the work streams shard-pair rectangles through
        :class:`~repro.parallel.sharded.ShardedPairCounter`.
        """
        from repro.parallel.sharded import ShardedPairCounter

        counter = ShardedPairCounter(self, compute=compute, workers=workers,
                                     memory_budget=memory_budget)
        return counter.counts()

    def cleanup(self) -> None:
        """Delete the spill directory (idempotent)."""
        shutil.rmtree(self.spill_dir, ignore_errors=True)
