"""Intersection-size computation between batmaps.

The whole point of the batmap layout is that ``|S_i ∩ S_j|`` can be computed
by a *data-independent*, branch-free, element-wise comparison of the two
representations (Section II of the paper):

* equal ranges — compare entry ``p`` of one batmap with entry ``p`` of the
  other, for every ``p``;
* unequal ranges — every position of the larger batmap folds onto position
  ``p mod r_small`` of the smaller one (ranges are nested powers of two).

An entry pair contributes to the count iff the payloads are equal and at
least one indicator bit is set; the indicator bits guarantee each common
element is counted exactly once even when it occupies the same two rows in
both batmaps.

Three implementations are provided, from slow-and-obvious to the packed SWAR
form used by the GPU kernel:

``count_common_bytes``
    NumPy comparison on the raw ``uint8`` entries (reference).
``count_common_packed``
    SWAR on 32-bit packed words (:mod:`repro.core.swar`), 4 entries per word.
``count_common``
    Dispatches to the packed path when possible.
"""

from __future__ import annotations

import numpy as np

from repro.core.batmap import Batmap
from repro.core.errors import LayoutError
from repro.core.swar import count_matches_folded
from repro.utils.validation import require

__all__ = [
    "exact_intersection_size",
    "count_common_bytes",
    "count_common_packed",
    "count_common",
    "require_same_family",
    "require_compression_floor",
]


def exact_intersection_size(set_a, set_b) -> int:
    """Ground-truth ``|A ∩ B|`` via sorted NumPy sets (used by tests and baselines)."""
    a = np.unique(np.asarray(list(set_a), dtype=np.int64))
    b = np.unique(np.asarray(list(set_b), dtype=np.int64))
    return int(np.intersect1d(a, b, assume_unique=True).size)


def require_same_family(f1, f2) -> None:
    """Raise unless the two hash families are structurally equal.

    Comparison is structural (with an identity fast path inside ``__eq__``),
    so batmaps whose family went through a pickle round-trip — e.g. built in
    a worker process for sharded serving — remain comparable.
    """
    if f1 != f2:
        raise LayoutError(
            "batmaps were built from different hash families and cannot be compared"
        )


def require_compression_floor(r_min: int, shift: int) -> None:
    """Raise unless every range is at least the compression floor ``2**shift``."""
    shift_floor = 1 << shift
    if r_min < shift_floor:
        raise LayoutError(
            f"smallest range {r_min} is below the compression floor "
            f"2**shift = {shift_floor}; payload comparison would be ambiguous"
        )


def _check_compatible(b1: Batmap, b2: Batmap) -> None:
    require_same_family(b1.family, b2.family)
    require_compression_floor(min(b1.r, b2.r), b1.family.shift)


def _order(b1: Batmap, b2: Batmap) -> tuple[Batmap, Batmap]:
    """Return (large, small) by range."""
    return (b1, b2) if b1.r >= b2.r else (b2, b1)


def count_common_bytes(b1: Batmap, b2: Batmap) -> int:
    """Reference entry-wise count: payloads equal and indicator bits OR to 1.

    Masks come from the batmaps' :class:`~repro.core.config.BatmapConfig`
    (not a hardcoded ``0x7F``/``0x80``), so the reference is exact for every
    configured payload width — including the wide layouts (``payload_bits > 7``)
    that the packed SWAR paths cannot represent.
    """
    _check_compatible(b1, b2)
    require(b1.config.payload_bits == b2.config.payload_bits,
            "batmaps with different payload widths cannot be compared")
    large, small = _order(b1, b2)
    reps = large.r // small.r
    # Tile the smaller batmap's rows so both operands have shape (3, r_large).
    small_rows = np.tile(small.entries, (1, reps))
    dtype = large.entries.dtype
    payload_mask = dtype.type(b1.config.payload_mask)
    indicator_mask = dtype.type(b1.config.indicator_mask)
    x = large.entries
    y = small_rows
    payload_equal = ((x ^ y) & payload_mask) == 0
    indicator_or = ((x | y) & indicator_mask) != 0
    return int(np.count_nonzero(payload_equal & indicator_or))


def count_common_packed(b1: Batmap, b2: Batmap) -> int:
    """SWAR count on 32-bit packed rows (4 entries per word)."""
    _check_compatible(b1, b2)
    large, small = _order(b1, b2)
    if small.r < 4 or large.r < 4 or large.entries.dtype != np.uint8:
        # Padding would break the mod-r folding alignment for tiny ranges,
        # and entries wider than one byte (payload_bits > 7) have no packed
        # word form; the entry-wise path is exact for both.
        return count_common_bytes(b1, b2)
    total = 0
    for t in range(3):
        total += count_matches_folded(large.packed_rows[t], small.packed_rows[t])
    return total


def count_common(b1: Batmap, b2: Batmap) -> int:
    """Intersection size |S1 ∩ S2| restricted to elements stored in both batmaps.

    Elements whose insertion failed in either batmap are not represented and
    therefore not counted here; the mining pipeline adds them back through
    the repair path (:mod:`repro.mining.postprocess`).
    """
    return count_common_packed(b1, b2)
