"""Crash-safe artifact lifecycle: atomic commits, checksums, verify/repair.

Every spill mutation (finalize, append, delete, compact) used to write its
files straight into the live directory, so a crash mid-mutation could leave
an artifact that fails to attach — or attaches and serves silently wrong
counts.  This module gives the lifecycle LSM-style durability discipline:

* :class:`AtomicCommit` — the write-new-then-rename commit protocol.  A
  mutation stages every new file in a private ``.staging-<pid>-<token>/``
  directory, and ``commit()`` publishes the generation: fsync the staged
  tree, move each staged path into place under its final (always *fresh*,
  never live) name, then ``os.replace`` the manifest — the single atomic
  commit point.  A crash anywhere before the manifest replace leaves the
  previous generation fully intact (plus sweepable garbage); a crash
  anywhere after it leaves the new generation fully intact (plus sweepable
  garbage).  No file referenced by the previous manifest is ever modified
  or deleted before the commit point.

* **Checksums** — manifest version 3 records a content digest
  (:data:`DIGEST_ALGORITHM`) for every shard array, the tombstone file and
  the hash family.  Attach stays mmap-cheap (digests are *not* verified on
  the read path); :func:`verify_spill` checks them on demand.

* :func:`verify_spill` / :func:`repair_spill` — the ``repro verify`` /
  ``repro repair`` backends.  Verify cross-checks the manifest against the
  on-disk files (existence, loadability, structural invariants, digests)
  and reports damage as errors and sweepable leftovers as warnings; repair
  rolls the directory back to the last committed generation by sweeping
  staging leftovers and orphaned files, which is always safe because the
  commit protocol never lets garbage share a name with live state.

:mod:`repro.core.sharded` and :mod:`repro.core.compaction` route every
mutation through :class:`AtomicCommit`; the fault-injection suite
(``tests/test_crash_recovery.py``) kills the protocol at every registered
:func:`~repro.utils.faultpoints.faultpoint` and proves the artifact
re-attaches at exactly the pre- or post-mutation generation.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import secrets
import shutil
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.errors import IntegrityError
from repro.utils.faultpoints import faultpoint

__all__ = [
    "MANIFEST_NAME",
    "STAGING_PREFIX",
    "SHARD_ARRAY_NAMES",
    "DIGEST_ALGORITHM",
    "file_digest",
    "AtomicCommit",
    "sweep_stale_staging",
    "Finding",
    "IntegrityReport",
    "RepairResult",
    "verify_spill",
    "repair_spill",
]

MANIFEST_NAME = "manifest.json"
#: Prefix of per-mutation staging directories: ``.staging-<pid>-<token>``.
STAGING_PREFIX = ".staging-"
#: The five arrays every shard directory holds, in manifest order.
SHARD_ARRAY_NAMES = ("words.npy", "offsets.npy", "widths.npy", "order.npy", "failed.npy")
#: Digest recorded per file in manifest v3 (hex; 16-byte blake2b).
DIGEST_ALGORITHM = "blake2b-128"

#: Directory names the lifecycle owns — anything matching that the manifest
#: does not reference is sweepable garbage from a crashed mutation.
_ARTIFACT_DIR_RE = re.compile(r"^(shard|compact|rewrite)_")
_TOMBSTONES_RE = re.compile(r"^tombstones.*\.npy$")
_FAMILY_RE = re.compile(r"^family.*\.npz$")


def file_digest(path) -> str:
    """Hex content digest (:data:`DIGEST_ALGORITHM`) of one file, chunked."""
    digest = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    """Durably record a directory's entries (POSIX; no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover — platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover — e.g. fsync unsupported on dirs
        pass
    finally:
        os.close(fd)


def _fsync_tree(root: Path) -> None:
    for directory, _dirnames, filenames in os.walk(root):
        for name in filenames:
            _fsync_file(Path(directory) / name)
        _fsync_dir(Path(directory))


class AtomicCommit:
    """One staged, atomically-published spill mutation.

    Usage::

        commit = AtomicCommit(spill_dir)
        shard_dir = commit.stage("shard_0003")   # write arrays under it
        tomb = commit.stage("tombstones_0004.npy")
        commit.add_garbage(spill_dir / "tombstones_0003.npy")
        commit.commit(manifest_dict)             # or commit.abort()

    ``stage(name)`` returns a path inside the private staging directory;
    the caller creates a file or a whole directory there.  ``commit()``
    fsyncs the staged tree, renames every staged path to
    ``spill_dir/name`` (fresh names only — a pre-existing target can only
    be garbage from a crashed earlier attempt and is removed first), then
    atomically replaces ``manifest.json``.  Only after the manifest
    replace — the commit point — are the registered garbage paths (files
    and directories the *previous* generation referenced) swept,
    best-effort.  ``abort()`` removes the staging directory and touches
    nothing else.
    """

    def __init__(self, spill_dir) -> None:
        self.spill_dir = Path(spill_dir)
        self.spill_dir.mkdir(parents=True, exist_ok=True)
        self.staging = self.spill_dir / (
            f"{STAGING_PREFIX}{os.getpid()}-{secrets.token_hex(4)}")
        self.staging.mkdir()
        self._staged: list[str] = []
        self._garbage: list[Path] = []
        self.committed = False

    def stage(self, name: str) -> Path:
        """Reserve ``name`` for this commit and return its staging path."""
        if "/" in name or name == MANIFEST_NAME or name.startswith(STAGING_PREFIX):
            raise ValueError(f"cannot stage reserved name {name!r}")
        if name in self._staged:
            raise ValueError(f"{name!r} is already staged")
        self._staged.append(name)
        return self.staging / name

    def taken(self, name: str) -> bool:
        """Whether ``name`` is in use (live in the spill dir or staged here)."""
        return name in self._staged or (self.spill_dir / name).exists()

    def add_garbage(self, path) -> None:
        """Register a path the *previous* generation owned for post-commit sweep."""
        self._garbage.append(Path(path))

    def commit(self, manifest: dict) -> None:
        """Publish the staged files plus ``manifest`` as the next generation."""
        if self.committed:
            raise RuntimeError("commit() called twice")
        manifest_tmp = self.staging / MANIFEST_NAME
        manifest_tmp.write_text(json.dumps(manifest, indent=1))
        faultpoint("commit.fsync")
        _fsync_tree(self.staging)
        for name in self._staged:
            faultpoint("commit.rename")
            target = self.spill_dir / name
            if target.is_dir():
                # Can only be leftover garbage from a crashed earlier
                # attempt: live names are never re-staged.
                shutil.rmtree(target)
            os.replace(self.staging / name, target)
        _fsync_dir(self.spill_dir)
        faultpoint("commit.manifest")
        os.replace(manifest_tmp, self.spill_dir / MANIFEST_NAME)
        _fsync_dir(self.spill_dir)
        self.committed = True
        faultpoint("commit.cleanup")
        for path in self._garbage:
            _remove_any(path)
        _remove_any(self.staging)

    def abort(self) -> None:
        """Drop the staged files; the live artifact is untouched."""
        _remove_any(self.staging)


def _remove_any(path: Path) -> None:
    try:
        if path.is_dir():
            shutil.rmtree(path, ignore_errors=True)
        else:
            path.unlink(missing_ok=True)
    except OSError:  # pragma: no cover — sweep is best-effort
        pass


def _staging_pid(name: str) -> int | None:
    rest = name[len(STAGING_PREFIX):]
    pid_text = rest.split("-", 1)[0]
    return int(pid_text) if pid_text.isdigit() else None


def sweep_stale_staging(spill_dir) -> list:
    """Remove staging directories whose owning process is gone.

    Called on every attach: a live mutation's staging (pid still running)
    is left alone, so an attach racing a healthy writer never destroys its
    work.  Returns the removed paths.
    """
    spill_dir = Path(spill_dir)
    removed = []
    try:
        children = list(spill_dir.iterdir())
    except OSError:
        return removed
    for child in children:
        if not (child.is_dir() and child.name.startswith(STAGING_PREFIX)):
            continue
        pid = _staging_pid(child.name)
        if pid is not None and _pid_alive(pid):
            continue
        _remove_any(child)
        removed.append(child)
    return removed


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover — alive, other user
        return True
    except OSError:  # pragma: no cover
        return False
    return True


# --------------------------------------------------------------------------- #
# Verify / repair
# --------------------------------------------------------------------------- #
@dataclass
class Finding:
    """One verify observation: a damage error or a sweepable-garbage warning."""

    code: str
    message: str
    path: str | None = None

    def to_dict(self) -> dict:
        out = {"code": self.code, "message": self.message}
        if self.path is not None:
            out["path"] = self.path
        return out


@dataclass
class IntegrityReport:
    """Structured result of :func:`verify_spill` (``repro verify``)."""

    spill_dir: str
    version: int | None = None
    generation: int | None = None
    errors: list = field(default_factory=list)
    warnings: list = field(default_factory=list)
    files_checked: int = 0
    bytes_hashed: int = 0

    @property
    def ok(self) -> bool:
        """True when no damage was found (warnings are allowed)."""
        return not self.errors

    def error(self, code: str, message: str, path=None) -> None:
        self.errors.append(Finding(code, message, str(path) if path else None))

    def warn(self, code: str, message: str, path=None) -> None:
        self.warnings.append(Finding(code, message, str(path) if path else None))

    def to_dict(self) -> dict:
        return {
            "spill_dir": self.spill_dir,
            "ok": self.ok,
            "version": self.version,
            "generation": self.generation,
            "files_checked": self.files_checked,
            "bytes_hashed": self.bytes_hashed,
            "errors": [f.to_dict() for f in self.errors],
            "warnings": [f.to_dict() for f in self.warnings],
        }

    def render(self) -> str:
        lines = [f"verify {self.spill_dir}: "
                 f"version {self.version}, generation {self.generation}, "
                 f"{self.files_checked} file(s) checked, "
                 f"{self.bytes_hashed} byte(s) hashed"]
        for finding in self.errors:
            where = f" [{finding.path}]" if finding.path else ""
            lines.append(f"  ERROR {finding.code}: {finding.message}{where}")
        for finding in self.warnings:
            where = f" [{finding.path}]" if finding.path else ""
            lines.append(f"  warning {finding.code}: {finding.message}{where}")
        lines.append("DAMAGED" if self.errors else "clean")
        return "\n".join(lines)


@dataclass
class RepairResult:
    """What :func:`repair_spill` did, plus the post-repair verify report."""

    actions: list
    report: IntegrityReport

    def to_dict(self) -> dict:
        return {"actions": self.actions, "report": self.report.to_dict()}


def _load_manifest(spill_dir: Path, report: IntegrityReport):
    manifest_path = spill_dir / MANIFEST_NAME
    if not manifest_path.is_file():
        report.error("manifest-missing", f"no {MANIFEST_NAME}", manifest_path)
        return None
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        report.error("manifest-corrupt", f"not valid JSON: {exc}", manifest_path)
        return None
    if not isinstance(manifest, dict):
        report.error("manifest-corrupt", "manifest is not a JSON object",
                     manifest_path)
        return None
    return manifest


def _check_digest(report: IntegrityReport, path: Path, expected: str,
                  code: str) -> bool:
    actual = file_digest(path)
    report.bytes_hashed += path.stat().st_size
    if actual != expected:
        report.error(code, f"content digest mismatch: recorded {expected}, "
                           f"found {actual}", path)
        return False
    return True


def _load_array(report: IntegrityReport, path: Path, code: str):
    try:
        array = np.load(path, mmap_mode="r", allow_pickle=False)
    except Exception as exc:  # noqa: BLE001 — any load failure is damage
        report.error(code, f"cannot load: {type(exc).__name__}: {exc}", path)
        return None
    report.files_checked += 1
    return array


def _verify_shard(spill_dir: Path, k: int, entry: dict,
                  report: IntegrityReport) -> None:
    directory = spill_dir / entry["dir"]
    if not directory.is_dir():
        report.error("shard-missing", f"shard {k} directory is missing", directory)
        return
    n_sets = int(entry["hi"]) - int(entry["lo"])
    digests = entry.get("files") or {}
    arrays = {}
    for name in SHARD_ARRAY_NAMES:
        path = directory / name
        if not path.is_file():
            report.error("shard-file-missing", f"shard {k} has no {name}", path)
            continue
        if name in digests and not _check_digest(
                report, path, digests[name], "checksum-mismatch"):
            continue
        array = _load_array(report, path, "shard-file-unreadable")
        if array is not None:
            arrays[name] = array
    if len(arrays) != len(SHARD_ARRAY_NAMES):
        return
    words, offsets = arrays["words.npy"], arrays["offsets.npy"]
    widths, order = arrays["widths.npy"], arrays["order.npy"]
    failed = arrays["failed.npy"]
    if int(entry["nbytes"]) != int(words.nbytes):
        report.error("nbytes-mismatch",
                     f"shard {k}: manifest records {entry['nbytes']} packed "
                     f"bytes, words.npy holds {words.nbytes}", directory)
    if offsets.shape != (n_sets,) or widths.shape != (n_sets,):
        report.error("layout-mismatch",
                     f"shard {k}: expected {n_sets} slots, found "
                     f"{offsets.shape} offsets / {widths.shape} widths",
                     directory)
        return
    if order.shape != (n_sets,) or not np.array_equal(
            np.sort(np.asarray(order)), np.arange(n_sets)):
        report.error("layout-mismatch",
                     f"shard {k}: order.npy is not a permutation of "
                     f"[0, {n_sets})", directory / "order.npy")
    if failed.ndim != 2 or (failed.size and failed.shape[1] != 2):
        report.error("layout-mismatch",
                     f"shard {k}: failed.npy has shape {failed.shape}, "
                     "expected (F, 2)", directory / "failed.npy")
    if n_sets and int(np.max(np.asarray(offsets) + np.asarray(widths))) > words.size:
        report.error("layout-mismatch",
                     f"shard {k}: slot extents exceed words.npy "
                     f"({words.size} words)", directory)


def _verify_tombstones(spill_dir: Path, manifest: dict,
                       report: IntegrityReport) -> None:
    from repro.core.sharded import TOMBSTONES_NAME

    n_physical = int(manifest["shards"][-1]["hi"]) if manifest.get("shards") else 0
    entry = manifest.get("tombstones")
    declared = manifest.get("n_tombstones")
    if entry is not None:
        path = spill_dir / entry["file"]
        expected_n = int(entry["n"])
    else:
        path = spill_dir / TOMBSTONES_NAME
        expected_n = int(declared) if declared is not None else None
        if not path.is_file():
            if expected_n:
                report.error("tombstones-missing",
                             f"manifest records {expected_n} tombstone(s) but "
                             f"{TOMBSTONES_NAME} is missing", path)
            return
    if not path.is_file():
        report.error("tombstones-missing",
                     f"manifest references {path.name} but it is missing", path)
        return
    if entry is not None and not _check_digest(
            report, path, entry["digest"], "checksum-mismatch"):
        return
    tombstones = _load_array(report, path, "tombstones-unreadable")
    if tombstones is None:
        return
    tombstones = np.asarray(tombstones)
    if expected_n is not None and int(tombstones.size) != expected_n:
        report.error("tombstones-mismatch",
                     f"manifest records {expected_n} tombstone(s), file holds "
                     f"{tombstones.size}", path)
    if tombstones.size and (
            np.any(np.diff(tombstones) <= 0)
            or int(tombstones[0]) < 0 or int(tombstones[-1]) >= n_physical):
        report.error("tombstones-invalid",
                     "tombstone ids are not sorted unique physical ids in "
                     f"[0, {n_physical})", path)


def _verify_family(spill_dir: Path, manifest: dict,
                   report: IntegrityReport) -> None:
    from repro.core.sharded import FAMILY_NAME

    entry = manifest.get("family")
    path = spill_dir / (entry["file"] if entry is not None else FAMILY_NAME)
    if not path.is_file():
        if entry is not None:
            report.error("family-missing",
                         f"manifest references {path.name} but it is missing",
                         path)
        else:
            report.warn("family-missing",
                        "no hash family file: membership/multiway serving "
                        "unavailable (pre-family artifact)", path)
        return
    if entry is not None and not _check_digest(
            report, path, entry["digest"], "checksum-mismatch"):
        return
    report.files_checked += 1


def _referenced_names(manifest: dict) -> set:
    from repro.core.sharded import FAMILY_NAME, TOMBSTONES_NAME

    referenced = {MANIFEST_NAME, "item_map.npy"}
    for entry in manifest.get("shards") or []:
        if isinstance(entry, dict) and isinstance(entry.get("dir"), str):
            referenced.add(entry["dir"])
    tombstones = manifest.get("tombstones")
    referenced.add(tombstones["file"] if isinstance(tombstones, dict)
                   else TOMBSTONES_NAME)
    family = manifest.get("family")
    referenced.add(family["file"] if isinstance(family, dict) else FAMILY_NAME)
    return referenced


def _scan_garbage(spill_dir: Path, manifest: dict | None):
    """``(staging_dirs, orphans)`` — sweepable leftovers of crashed mutations."""
    staging, orphans = [], []
    referenced = _referenced_names(manifest) if manifest is not None else None
    for child in sorted(spill_dir.iterdir()):
        name = child.name
        if child.is_dir() and name.startswith(STAGING_PREFIX):
            staging.append(child)
        elif referenced is None or name in referenced:
            continue
        elif child.is_dir() and _ARTIFACT_DIR_RE.match(name):
            orphans.append(child)
        elif child.is_file() and (_TOMBSTONES_RE.match(name)
                                  or _FAMILY_RE.match(name)):
            orphans.append(child)
    return staging, orphans


def verify_spill(spill_dir) -> IntegrityReport:
    """Cross-check a spill artifact's manifest against its on-disk files.

    Damage (missing/unreadable/checksum-failing files, broken structural
    invariants, manifest/file disagreements) lands in ``errors``; sweepable
    leftovers of crashed mutations (staging directories, orphaned files no
    generation references) land in ``warnings``.  Never modifies anything.
    """
    spill_dir = Path(spill_dir)
    report = IntegrityReport(spill_dir=str(spill_dir))
    from repro.core.sharded import SUPPORTED_SPILL_VERSIONS

    manifest = _load_manifest(spill_dir, report)
    if manifest is not None:
        version = manifest.get("version")
        if version not in SUPPORTED_SPILL_VERSIONS:
            report.error("version-unsupported",
                         f"unsupported spill version {version!r} (supported: "
                         f"{', '.join(map(str, SUPPORTED_SPILL_VERSIONS))})")
            manifest = None
        else:
            report.version = int(version)
    if manifest is not None:
        report.generation = int(manifest.get("generation", 0))
        shards = manifest.get("shards")
        if not isinstance(shards, list) or not all(
                isinstance(e, dict) for e in shards):
            report.error("manifest-field", "manifest shard table is malformed")
            manifest_shards: list = []
        else:
            manifest_shards = shards
        try:
            lo = 0
            for k, entry in enumerate(manifest_shards):
                if int(entry["lo"]) != lo or int(entry["hi"]) < int(entry["lo"]):
                    report.error(
                        "manifest-field",
                        f"shard {k} covers [{entry['lo']}, {entry['hi']}), "
                        f"expected to start at {lo}")
                lo = int(entry["hi"])
            declared = int(manifest.get("n_sets", lo))
            if declared != lo:
                report.error("manifest-field",
                             f"manifest n_sets is {declared}, shard table "
                             f"covers {lo}")
            for key in ("universe_size", "r0"):
                int(manifest[key])
            for k, entry in enumerate(manifest_shards):
                _verify_shard(spill_dir, k, entry, report)
            _verify_tombstones(spill_dir, manifest, report)
            _verify_family(spill_dir, manifest, report)
        except (KeyError, TypeError, ValueError) as exc:
            report.error("manifest-field", f"manifest field damage: {exc!r}")
        if report.version in (1, 2):
            report.warn("no-checksums",
                        f"version {report.version} artifact records no file "
                        "digests; content damage in array bodies is "
                        "undetectable — any mutation re-commits at version 3")
    staging, orphans = _scan_garbage(spill_dir, manifest)
    for child in staging:
        report.warn("staging-leftover",
                    "staging directory from an interrupted mutation "
                    "(swept on attach once its process exits)", child)
    for child in orphans:
        report.warn("orphan",
                    "not referenced by the committed manifest "
                    "(`repro repair` sweeps it)", child)
    return report


def repair_spill(spill_dir) -> RepairResult:
    """Roll back to the last committed generation and sweep every orphan.

    The commit protocol makes this safe: the manifest on disk *is* the last
    committed generation, every file it references was published whole
    before the manifest was, and garbage never shares a name with live
    state.  Raises :class:`~repro.core.errors.IntegrityError` when there is
    no readable manifest to roll back to.  Content damage inside referenced
    files (a failing checksum) is not repairable from the artifact alone —
    it is reported by the returned post-repair verify report instead.
    """
    spill_dir = Path(spill_dir)
    probe = IntegrityReport(spill_dir=str(spill_dir))
    manifest = _load_manifest(spill_dir, probe)
    if manifest is None:
        raise IntegrityError(
            f"{spill_dir}: no committed manifest to roll back to "
            f"({probe.errors[0].message}); the artifact must be rebuilt")
    actions = []
    staging, orphans = _scan_garbage(spill_dir, manifest)
    for child in staging + orphans:
        _remove_any(child)
        kind = "staging" if child.name.startswith(STAGING_PREFIX) else "orphan"
        actions.append(f"removed {kind} {child.name}")
    return RepairResult(actions=actions, report=verify_spill(spill_dir))
