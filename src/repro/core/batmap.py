"""The Batmap data structure: a compressed, comparison-friendly set layout.

A :class:`Batmap` stores a set ``S`` of element ids from ``{0..m-1}`` as three
hash-table rows of range ``r`` (a power of two), each element appearing in
exactly two of the three rows (2-of-3 cuckoo placement).  Each slot holds an
8-bit entry::

    bit 7      : indicator bit b_t[p] — 1 iff the *other* copy of the stored
                 element lives in the cyclically *preceding* row
    bits 6..0  : payload — ``(pi_t(x) >> shift) + 1`` (0 is reserved for NULL)

Together with the slot index (which pins the low-order bits of ``pi_t(x)``),
the payload identifies the element uniquely as long as ``r >= 2**shift``
(Section III-A's compression condition).  Intersection sizes between two
batmaps built from the same :class:`~repro.core.hashing.HashFamily` can then
be computed by a data-independent element-wise comparison — see
:mod:`repro.core.intersection`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.builder import Placement, PlacementStats, place_set
from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.core.errors import LayoutError
from repro.core.hashing import HashFamily
from repro.utils.bits import pack_bytes_to_words
from repro.utils.rng import RngLike
from repro.utils.validation import require

__all__ = ["Batmap", "build_batmap"]

#: Byte value of an empty slot: payload 0 (NULL) with indicator bit clear.
NULL_ENTRY = np.uint8(0)

# Indicator bit convention: for an element stored in rows {a, b} that are
# cyclically adjacent as a -> b (b == (a + 1) % 3), the occurrence in row b is
# the "last" one and gets bit 1; the occurrence in row a gets bit 0.
_INDICATOR = {
    (0, 1): (0, 1),
    (1, 2): (0, 1),
    (2, 0): (1, 0),  # pair {0, 2}: row 2 is first, row 0 is last
}


def _indicator_bits(table_a: int, table_b: int) -> tuple[int, int]:
    """Return the indicator bits for an element stored in (table_a, table_b)."""
    key = (min(table_a, table_b), max(table_a, table_b))
    if key == (0, 1):
        return (0, 1) if (table_a, table_b) == (0, 1) else (1, 0)
    if key == (1, 2):
        return (0, 1) if (table_a, table_b) == (1, 2) else (1, 0)
    if key == (0, 2):
        # cyclic order 2 -> 0, so row 0 carries the "last occurrence" bit
        return (1, 0) if (table_a, table_b) == (0, 2) else (0, 1)
    raise ValueError(f"invalid table pair ({table_a}, {table_b})")


@dataclass
class Batmap:
    """Compressed 2-of-3 representation of a single set.

    Instances are created through :func:`build_batmap` or
    :meth:`Batmap.from_placement`; the constructor itself only checks basic
    shape invariants.
    """

    family: HashFamily
    config: BatmapConfig
    r: int
    entries: np.ndarray          # uint8, shape (3, r)
    set_size: int
    failed: tuple[int, ...] = ()
    stats: PlacementStats | None = None

    def __post_init__(self) -> None:
        # Plain conditionals, not require(): bulk construction creates one
        # Batmap per set and the eagerly formatted dtype/shape messages were
        # a measurable slice of whole-collection build time.
        if self.entries.shape != (3, self.r):
            raise ValueError(
                f"entries must have shape (3, {self.r}), got {self.entries.shape}")
        if self.entries.dtype != self.config.entry_dtype:
            raise ValueError(
                f"entries must be {self.config.entry_dtype} for "
                f"payload_bits={self.config.payload_bits}, got {self.entries.dtype}")
        if self.r < 1:
            raise ValueError("range must be at least 1")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_placement(
        cls,
        placement: Placement,
        family: HashFamily,
        config: BatmapConfig = DEFAULT_CONFIG,
        *,
        set_size: int | None = None,
    ) -> "Batmap":
        """Encode a raw cuckoo placement into the compressed byte layout."""
        r = placement.r
        rows = placement.rows
        dtype = config.entry_dtype
        entries = np.zeros((3, r), dtype=dtype)

        stored = placement.stored_elements
        if stored.size:
            # For every stored element find its two (table, position) slots.
            # Work in bulk: positions per table for all stored elements.
            pos = np.stack([family.positions(t, stored, r) for t in range(3)], axis=0)
            present = np.stack(
                [rows[t, pos[t]] == stored for t in range(3)], axis=0
            )  # (3, n_stored) — True where the element's copy actually sits
            payloads = np.stack([family.payloads(t, stored) for t in range(3)], axis=0)
            max_payload = (1 << config.payload_bits) - 1
            if payloads.max(initial=0) > max_payload:
                raise LayoutError(
                    "payload overflow: increase payload_bits or the hash-family shift"
                )
            copies = present.sum(axis=0)
            if np.any(copies != 2):  # pragma: no cover - guarded by Placement.validate
                bad = int(stored[np.argmax(copies != 2)])
                raise LayoutError(
                    f"element {bad} stored in {int(copies[np.argmax(copies != 2)])} tables"
                )
            # First and last table holding each element (exactly two are set).
            idx = np.arange(stored.size)
            table_a = np.argmax(present, axis=0)
            table_b = 2 - np.argmax(present[::-1], axis=0)
            # Indicator bits of _INDICATOR: the pair {0, 2} is cyclically
            # ordered 2 -> 0, so only there the *first* table carries bit 1.
            ind = np.int64(config.indicator_shift)
            bit_a = ((table_a == 0) & (table_b == 2)).astype(np.int64)
            bit_b = np.int64(1) - bit_a
            entries[table_a, pos[table_a, idx]] = (
                (bit_a << ind) | payloads[table_a, idx]
            ).astype(dtype)
            entries[table_b, pos[table_b, idx]] = (
                (bit_b << ind) | payloads[table_b, idx]
            ).astype(dtype)

        return cls(
            family=family,
            config=config,
            r=r,
            entries=entries,
            set_size=int(set_size if set_size is not None
                         else stored.size + len(placement.failed)),
            failed=tuple(int(x) for x in placement.failed),
            stats=placement.stats,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def stored_count(self) -> int:
        """Number of elements actually represented (set size minus failed insertions)."""
        return self.set_size - len(self.failed)

    def contains(self, element: int) -> bool:
        """Membership test by probing the element's three candidate slots.

        Elements whose cuckoo insertion failed carry no stored copies but are
        still members of the represented set (they count towards
        ``set_size``/``len`` and are re-added by the repair path), so the
        failed list is consulted before probing.
        """
        if element < 0 or element >= self.family.universe_size:
            return False
        if int(element) in self.failed:
            return True
        x = np.array([int(element)], dtype=np.int64)
        for t in range(3):
            p = int(self.family.positions(t, x, self.r)[0])
            entry = int(self.entries[t, p])
            if entry == 0:
                continue
            payload = entry & self.config.payload_mask
            if payload == int(self.family.payloads(t, x)[0]):
                return True
        return False

    def decode_elements(self) -> np.ndarray:
        """Recover the sorted set of stored element ids.

        Fully vectorised (one decode pass per table, one ``np.unique`` merge):
        the multiway probe path enumerates pivot candidates through this, so
        it is a serving-path operation, not just a debugging aid.
        """
        per_table = []
        for t in range(3):
            positions = np.nonzero(self.entries[t] != 0)[0]
            if positions.size == 0:
                continue
            payloads = self.entries[t, positions].astype(np.int64) & self.config.payload_mask
            per_table.append(self.family.decode(t, payloads, positions, self.r))
        if not per_table:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(per_table))

    # ------------------------------------------------------------------ #
    # Layout / packing
    # ------------------------------------------------------------------ #
    @cached_property
    def packed_rows(self) -> np.ndarray:
        """Rows packed into 32-bit words, shape ``(3, ceil(r / 4))``.

        Rows shorter than four entries are zero-padded; NULL entries never
        match anything, so padding cannot change any intersection count.
        """
        if self.entries.dtype != np.uint8:
            raise LayoutError(
                f"packed word layout requires one-byte entries; "
                f"payload_bits={self.config.payload_bits} stores "
                f"{self.config.entry_dtype} — use the byte-wise comparison path"
            )
        r_padded = max(4, ((self.r + 3) // 4) * 4)
        padded = np.zeros((3, r_padded), dtype=np.uint8)
        padded[:, : self.r] = self.entries
        return np.stack([pack_bytes_to_words(padded[t]) for t in range(3)], axis=0)

    def device_array(self, r0: int) -> np.ndarray:
        """Flat byte array in the interleaved device layout of Figure 4.

        ``r0`` is the collection-wide block granularity (the smallest range in
        the collection); folding a position of a larger batmap onto a smaller
        one is then ``position mod (3 * r_small)``.
        """
        require(r0 <= self.r, f"r0 ({r0}) must not exceed r ({self.r})")
        if self.entries.dtype != np.uint8:
            raise LayoutError(
                "the interleaved device layout packs one byte per slot; "
                f"payload_bits={self.config.payload_bits} does not fit"
            )
        out = np.zeros(3 * self.r, dtype=np.uint8)
        blocks = self.r // r0
        for t in range(3):
            row = self.entries[t].reshape(blocks, r0)
            # block q of the device array holds [h1 slice | h2 slice | h3 slice]
            out.reshape(blocks, 3 * r0)[:, t * r0:(t + 1) * r0] = row
        return out

    @property
    def memory_bytes(self) -> int:
        """Size of the compressed representation (one storage unit per slot)."""
        return 3 * self.r * self.entries.dtype.itemsize

    @property
    def width_words(self) -> int:
        """Packed width per row in 32-bit words."""
        return int(self.packed_rows.shape[1])

    def density(self) -> float:
        """Set density |S| / m as defined in the paper."""
        return self.set_size / self.family.universe_size

    def __len__(self) -> int:
        return self.set_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Batmap(size={self.set_size}, r={self.r}, failed={len(self.failed)}, "
            f"bytes={self.memory_bytes})"
        )


def build_batmap(
    elements,
    universe_size: int,
    *,
    family: HashFamily | None = None,
    config: BatmapConfig = DEFAULT_CONFIG,
    r: int | None = None,
    rng: RngLike = None,
    on_failure: str = "record",
) -> Batmap:
    """Convenience constructor: build a single batmap for one set.

    When comparing many sets, build one :class:`HashFamily` (or use
    :class:`repro.core.collection.BatmapCollection`) and pass it in so that
    all batmaps share the same hash functions — batmaps built from different
    families are not comparable.
    """
    elements = np.unique(np.asarray(
        list(elements) if not isinstance(elements, np.ndarray) else elements,
        dtype=np.int64,
    ))
    if family is None:
        shift = config.shift_for_universe(universe_size)
        family = HashFamily.create(universe_size, shift=shift, rng=rng)
    else:
        require(family.universe_size == universe_size,
                "family universe size does not match universe_size")
    if r is None:
        r = config.range_for_size(int(elements.size), universe_size)
    placement = place_set(elements, family, r, config, on_failure=on_failure)
    return Batmap.from_placement(placement, family, config, set_size=int(elements.size))
