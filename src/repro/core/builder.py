"""Generalised cuckoo placement: store every element in 2 of 3 hash tables.

This implements the INSERT procedure of Section II-A of the paper.  Elements
are pushed around the three tables in the cyclic order 1, 2, 3, 1, 2, ...
until a vacant slot is found; after ``MaxLoop`` moves the insertion is
declared failed and the currently nestless element is returned.

Every element is inserted twice (two copies); a failed insertion removes all
copies of the offending element, re-inserts the displaced victim, and records
the element in the placement's ``failed`` list.  The mining pipeline repairs
the counts for failed elements on the host (Section III-C); strict callers
may instead ask for an exception.

The output of this module is a :class:`Placement` — three integer rows
holding raw element ids — which :mod:`repro.core.batmap` then encodes into
the compressed byte layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.core.errors import InsertionFailure
from repro.core.hashing import HashFamily
from repro.utils.validation import require, require_power_of_two

__all__ = ["EMPTY", "Placement", "PlacementStats", "place_set"]

#: Sentinel for an empty slot in the raw (element-id) rows.
EMPTY = -1


@dataclass
class PlacementStats:
    """Construction statistics used by the analysis experiments."""

    inserted: int = 0
    failed: int = 0
    total_moves: int = 0
    max_transcript: int = 0

    @property
    def moves_per_insert(self) -> float:
        return self.total_moves / self.inserted if self.inserted else 0.0


@dataclass
class Placement:
    """A 2-of-3 assignment of a set's elements to three hash-table rows.

    Attributes
    ----------
    rows:
        Integer array of shape ``(3, r)``; ``rows[t, p]`` is the element id
        stored at position ``p`` of table ``t`` or :data:`EMPTY`.
    r:
        The (power-of-two) hash range shared by the three rows.
    failed:
        Element ids that could not be fully placed (no copies remain stored).
    """

    rows: np.ndarray
    r: int
    failed: list[int] = field(default_factory=list)
    stats: PlacementStats = field(default_factory=PlacementStats)

    @property
    def stored_elements(self) -> np.ndarray:
        """Sorted unique element ids currently stored (each appears in 2 slots)."""
        vals = self.rows[self.rows != EMPTY]
        return np.unique(vals)

    def occurrences(self, element: int) -> list[tuple[int, int]]:
        """Return the ``(table, position)`` slots currently holding ``element``."""
        t, p = np.nonzero(self.rows == element)
        return list(zip(t.tolist(), p.tolist()))

    def validate(self, family: HashFamily) -> None:
        """Check the structural invariants of a 2-of-3 placement.

        Every stored element must occupy exactly two slots, in two distinct
        tables, each at the slot prescribed by the corresponding hash
        function.  Raises :class:`AssertionError` on violation (used heavily
        in tests and the property-based suite).

        Fully vectorized — one ``np.nonzero`` over the rows, one hash call
        per table and one argsort — so it stays O(r log r) as the
        property-test suites grow (the per-element scan it replaces was
        quadratic in the stored count).
        """
        tables, positions = np.nonzero(self.rows != EMPTY)
        values = self.rows[tables, positions]
        # Hash-slot correctness: every copy sits where its table's hash says.
        for t in range(3):
            mask = tables == t
            expected = family.positions(t, values[mask], self.r)
            if not np.array_equal(positions[mask], expected):
                bad = int(np.argmax(positions[mask] != expected))
                raise AssertionError(
                    f"element {int(values[mask][bad])} at table {t} position "
                    f"{int(positions[mask][bad])}, expected {int(expected[bad])}"
                )
        # Copy counts: exactly two occurrences per stored element, in two
        # distinct tables.  np.nonzero yields row-major order, so a stable
        # sort by value keeps each element's copies ordered by table.
        order = np.argsort(values, kind="stable")
        unique_vals, counts = np.unique(values, return_counts=True)
        if not np.all(counts == 2):
            bad = int(np.argmax(counts != 2))
            raise AssertionError(
                f"element {int(unique_vals[bad])} stored {int(counts[bad])} times"
            )
        sorted_tables = tables[order]
        same_table = sorted_tables[0::2] == sorted_tables[1::2]
        assert not np.any(same_table), (
            f"element {int(values[order][0::2][np.argmax(same_table)])} "
            "stored twice in one table"
        )
        if self.failed:
            still = np.isin(np.asarray(self.failed, dtype=np.int64), unique_vals)
            assert not np.any(still), (
                f"failed element {int(np.asarray(self.failed)[np.argmax(still)])} "
                "still has stored copies"
            )


class _Inserter:
    """Mutable state for the cuckoo insertion loop over one set.

    Slot positions for every element of the set are precomputed in bulk (one
    vectorised hash call per table) because the insertion loop only ever
    moves elements of the set being built.
    """

    def __init__(
        self,
        family: HashFamily,
        r: int,
        config: BatmapConfig,
        elements: np.ndarray,
    ) -> None:
        self.family = family
        self.r = r
        self.config = config
        self.rows = np.full((3, r), EMPTY, dtype=np.int64)
        self.max_loop = config.effective_max_loop(r)
        self.stats = PlacementStats()
        # positions[t, i] is the one legal slot of elements[i] in table t.
        # Elements arrive sorted duplicate-free (place_set guarantees it),
        # so a binary search resolves an element to its row — the seed kept
        # a dict of per-element Python 3-tuples instead, ~250 B of object
        # overhead per element that dominated a host build's working set.
        self._elements = elements
        self._positions = np.stack([family.positions(t, elements, r)
                                    for t in range(3)])

    def _slot(self, table: int, x: int) -> int:
        return int(self._positions[table, np.searchsorted(self._elements, x)])

    def insert_once(self, x: int) -> int:
        """Insert one copy of ``x``; return :data:`EMPTY` on success or the nestless element."""
        tau = int(x)
        moves = 0
        for _ in range(self.max_loop):
            for table in range(3):
                slot = self._slot(table, tau)
                tau, self.rows[table, slot] = int(self.rows[table, slot]), tau
                moves += 1
                if tau == EMPTY:
                    self.stats.total_moves += moves
                    self.stats.max_transcript = max(self.stats.max_transcript, moves)
                    return EMPTY
        self.stats.total_moves += moves
        self.stats.max_transcript = max(self.stats.max_transcript, moves)
        return tau

    def remove_all(self, x: int) -> int:
        """Remove every stored copy of ``x``; return how many were removed."""
        mask = self.rows == x
        count = int(mask.sum())
        self.rows[mask] = EMPTY
        return count

    def insert_element(self, x: int) -> list[int]:
        """Insert both copies of ``x``.

        Returns the list of elements that ended up *failed* as a result
        (possibly ``[x]``, possibly a displaced victim, usually empty).
        """
        failed: list[int] = []
        for _ in range(2):
            nestless = self.insert_once(x)
            if nestless == EMPTY:
                continue
            # Failure: drop x entirely, then try to re-home the victim.
            self.remove_all(x)
            failed.append(int(x))
            if nestless != x:
                victim_nestless = self.insert_once(int(nestless))
                if victim_nestless != EMPTY:
                    # Extremely unlikely secondary failure: give up on the
                    # victim as well so the structure stays consistent
                    # (failed elements have no stored copies).
                    self.remove_all(int(victim_nestless))
                    failed.append(int(victim_nestless))
            break
        self.stats.inserted += 1
        self.stats.failed += len(failed)
        return failed


def place_set(
    elements: np.ndarray,
    family: HashFamily,
    r: int,
    config: BatmapConfig = DEFAULT_CONFIG,
    *,
    on_failure: str = "record",
    assume_unique: bool = False,
) -> Placement:
    """Place a set of element ids into three rows of range ``r``.

    Parameters
    ----------
    elements:
        Element ids in ``[0, family.universe_size)``; duplicates are ignored.
    r:
        Power-of-two hash range.  The cuckoo analysis requires
        ``r >= 2 * |S|``; smaller ranges are allowed but will fail often.
    on_failure:
        ``"record"`` (default) records failed elements in the placement,
        ``"raise"`` raises :class:`InsertionFailure` on the first failure.
    assume_unique:
        Skip the internal deduplication when the caller already holds a
        sorted duplicate-free array (the collection builder deduplicates
        every set exactly once up front).
    """
    require_power_of_two(r, "r")
    require(on_failure in ("record", "raise"),
            f"on_failure must be 'record' or 'raise', got {on_failure!r}")
    if assume_unique:
        elements = np.asarray(elements, dtype=np.int64)
    else:
        elements = np.unique(np.asarray(elements, dtype=np.int64))
    if elements.size and (elements.min() < 0 or elements.max() >= family.universe_size):
        raise ValueError("element id out of range for the hash family's universe")

    inserter = _Inserter(family, r, config, elements)
    failed: list[int] = []
    for x in elements.tolist():
        newly_failed = inserter.insert_element(int(x))
        if newly_failed and on_failure == "raise":
            raise InsertionFailure(newly_failed[0])
        failed.extend(newly_failed)
    # A victim that failed during a later insertion might have been recorded
    # while an earlier copy of it is long gone; keep the list duplicate-free.
    failed = sorted(set(failed))
    return Placement(rows=inserter.rows, r=r, failed=failed, stats=inserter.stats)
