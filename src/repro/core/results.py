"""Counting results as first-class objects: dense, sparse-COO, top-k heap.

Every counting backend used to return a dense ``n x n`` int64 matrix — 8 B
per pair before any SWAR work begins, which is exactly the output-side wall
EXPERIMENTS.md E15 records (a 1M-set universe needs ~8 TB of result space
while the spill machinery happily scales the *input*).  This module turns
the result into an abstraction with three interchangeable implementations
behind one interface:

* :class:`DenseCountResult` — the historical dense matrix, kept as the
  oracle.  ``matrix()`` is free; memory is ``8 * n**2`` bytes.
* :class:`SparseCountResult` — COO triplets ``(rows, cols, values)``.
  Memory is ``O(nnz)``; engines fill it tile by tile through
  :class:`SparseAccumulator`, skipping tiles whose count upper bound falls
  below a ``min_support`` threshold (a-priori pruning pushed below the API).
* :class:`TopKCountResult` — the ``k`` best pairs kept by a running
  heap threshold (:class:`TopKAccumulator`); the threshold tightens as the
  heap fills, so whole tiles are skipped mid-query.

The shared interface is ``matrix()`` / ``pairs()`` / ``nnz`` / ``merge()``
/ ``frequent_pairs(min_support)``.  Pair extraction uses one canonical
form everywhere: strictly-upper-triangle ``(i, j, value)`` triplets with
``i < j``, sorted by ``(i, j)`` — the same convention as
:func:`repro.mining.postprocess.upper_triangle_pairs` and
:meth:`repro.mining.support.PairSupports.frequent_pairs`, so results are
bit-comparable across formats by construction.

Pruning contract: a result built with ``min_support = s > 1`` stores every
count of every *computed* tile, but tiles whose upper bound is below ``s``
were never computed — counts below ``s`` may therefore be partial or
missing.  ``frequent_pairs(m)`` is exact for every ``m >= s`` (the
property tests pin this against dense-then-filter), and
:attr:`CountResult.min_support` records the floor so consumers can refuse
a filter below it.
"""

from __future__ import annotations

import heapq
import warnings

import numpy as np

from repro.utils.validation import require, require_positive

__all__ = [
    "RESULT_FORMATS",
    "CountResult",
    "DenseCountResult",
    "SparseCountResult",
    "TopKCountResult",
    "SparseAccumulator",
    "TopKAccumulator",
    "coalesce_coo",
    "as_count_result",
]

#: Result formats a caller may request.  ``"auto"`` resolves to ``"dense"``
#: or ``"sparse"`` at plan time (see :func:`repro.core.plan.resolve_result_format`);
#: engines themselves only ever see the two concrete formats (plus the
#: internal top-k accumulator, which is requested through ``top_k=``, not a
#: format string).
RESULT_FORMATS = ("auto", "dense", "sparse")

_EMPTY = np.zeros(0, dtype=np.int64)


def coalesce_coo(rows, cols, values, *, sort_only: bool = False):
    """Canonicalise COO triplets: sort by ``(row, col)`` and sum duplicates.

    Engines append tile extractions in whatever order the tiles complete;
    repair merges may re-add coordinates that already exist.  One lexsort +
    ``reduceat`` pass makes the representation canonical, which is what lets
    two sparse results be compared with plain array equality.
    """
    rows = np.asarray(rows, dtype=np.int64).ravel()
    cols = np.asarray(cols, dtype=np.int64).ravel()
    values = np.asarray(values, dtype=np.int64).ravel()
    require(rows.size == cols.size == values.size,
            "rows, cols and values must have the same length")
    if rows.size == 0:
        return _EMPTY, _EMPTY, _EMPTY
    order = np.lexsort((cols, rows))
    rows, cols, values = rows[order], cols[order], values[order]
    if not sort_only:
        new_group = np.empty(rows.size, dtype=bool)
        new_group[0] = True
        np.not_equal(rows[1:], rows[:-1], out=new_group[1:])
        np.logical_or(new_group[1:], cols[1:] != cols[:-1], out=new_group[1:])
        starts = np.nonzero(new_group)[0]
        if starts.size != rows.size:
            values = np.add.reduceat(values, starts)
            rows, cols = rows[starts], cols[starts]
    keep = values != 0
    if not keep.all():
        rows, cols, values = rows[keep], cols[keep], values[keep]
    return rows, cols, values


class CountResult:
    """Base interface of every counting result.

    Subclasses are square (``n_sets x n_sets`` symmetric, the all-pairs
    shape) unless built with ``symmetric=False`` (the rectangular
    boolean-matrix-product shape of :mod:`repro.matrix.multiply`).
    """

    #: concrete format name ("dense" / "sparse" / "topk")
    format: str = "dense"

    def __init__(self, n_rows: int, n_cols: int | None = None, *,
                 symmetric: bool = True, min_support: int = 0,
                 stats: dict | None = None) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_rows if n_cols is None else n_cols)
        self.symmetric = bool(symmetric)
        if self.symmetric:
            require(self.n_rows == self.n_cols,
                    "symmetric results must be square")
        #: the pruning floor this result was computed under: counts below it
        #: may be partial or missing (0 / 1 means fully exact)
        self.min_support = int(min_support)
        #: engine-side pruning telemetry, merged additively:
        #: ``tiles_total`` / ``tiles_skipped`` count SWAR tiles considered
        #: and skipped by the bound check; ``result_bytes`` is the stored
        #: payload size of this result object.
        self.stats = {"tiles_total": 0, "tiles_skipped": 0}
        if stats:
            self.stats.update(stats)

    @property
    def n_sets(self) -> int:
        """Number of sets for the square all-pairs shape."""
        require(self.symmetric, "n_sets is only defined for symmetric results")
        return self.n_rows

    # Subclass responsibilities ---------------------------------------- #
    @property
    def nnz(self) -> int:
        """Number of stored nonzero entries."""
        raise NotImplementedError

    @property
    def result_bytes(self) -> int:
        """Bytes held by the stored result payload."""
        raise NotImplementedError

    def matrix(self) -> np.ndarray:
        """The result as a dense int64 matrix (the legacy return type)."""
        raise NotImplementedError

    def pairs(self):
        """Stored entries as sorted ``(rows, cols, values)`` triplets.

        Symmetric results report the strict upper triangle (``i < j``);
        rectangular results report every stored entry.
        """
        raise NotImplementedError

    def merge(self, other: "CountResult") -> "CountResult":
        """Fold another partial result of the same shape into this one."""
        raise NotImplementedError

    # Shared behaviour -------------------------------------------------- #
    def frequent_pairs(self, min_support: int):
        """Entries with ``value >= min_support`` as sorted triplets.

        Exact for any ``min_support >= max(1, self.min_support)``; filtering
        below the floor the result was pruned under is refused because the
        missing tiles make the answer silently wrong.
        """
        require(min_support >= max(1, self.min_support),
                f"result was pruned at min_support={self.min_support}; "
                f"cannot filter exactly at {min_support}")
        rows, cols, values = self.pairs()
        keep = values >= min_support
        return rows[keep], cols[keep], values[keep]

    def _merge_stats(self, other: "CountResult") -> None:
        for key in ("tiles_total", "tiles_skipped"):
            self.stats[key] = self.stats.get(key, 0) + other.stats.get(key, 0)


class DenseCountResult(CountResult):
    """The historical dense int64 matrix, wrapped behind the interface.

    This is the oracle every other format is pinned against: ``matrix()``
    returns the exact array a pre-``CountResult`` caller received.
    """

    format = "dense"

    def __init__(self, counts: np.ndarray, *, symmetric: bool = True,
                 min_support: int = 0, stats: dict | None = None) -> None:
        counts = np.asarray(counts)
        require(counts.ndim == 2, "counts must be a 2-D matrix")
        super().__init__(counts.shape[0], counts.shape[1],
                         symmetric=symmetric, min_support=min_support,
                         stats=stats)
        self.counts = counts

    @property
    def nnz(self) -> int:
        if self.symmetric:
            iu, ju = np.triu_indices(self.n_rows, k=1)
            return int(np.count_nonzero(self.counts[iu, ju]))
        return int(np.count_nonzero(self.counts))

    @property
    def result_bytes(self) -> int:
        return int(self.counts.nbytes)

    def matrix(self) -> np.ndarray:
        return self.counts

    def pairs(self):
        if self.symmetric:
            iu, ju = np.triu_indices(self.n_rows, k=1)
            values = self.counts[iu, ju]
            keep = values != 0
            return iu[keep], ju[keep], values[keep]
        rows, cols = np.nonzero(self.counts)
        return rows, cols, self.counts[rows, cols]

    def merge(self, other: CountResult) -> "DenseCountResult":
        require(other.n_rows == self.n_rows and other.n_cols == self.n_cols,
                "cannot merge results of different shapes")
        if isinstance(other, DenseCountResult):
            self.counts = self.counts + other.counts
        else:
            rows, cols, values = other.pairs()
            np.add.at(self.counts, (rows, cols), values)
            if self.symmetric and other.symmetric:
                np.add.at(self.counts, (cols, rows), values)
        self._merge_stats(other)
        return self


class SparseCountResult(CountResult):
    """COO count triplets — ``O(nnz)`` memory instead of ``O(n**2)``.

    Symmetric results store the upper triangle *including* the diagonal
    (self-intersection counts), so ``matrix()`` can reconstruct the exact
    dense oracle by mirroring; rectangular results store entries as-is.
    Storage is canonical (sorted by ``(row, col)``, duplicates summed,
    zeros dropped), so two sparse results are equal iff their arrays are.
    """

    format = "sparse"

    def __init__(self, n_rows: int, n_cols: int | None = None, *,
                 rows=None, cols=None, values=None, symmetric: bool = True,
                 min_support: int = 0, stats: dict | None = None) -> None:
        super().__init__(n_rows, n_cols, symmetric=symmetric,
                         min_support=min_support, stats=stats)
        rows, cols, values = coalesce_coo(
            _EMPTY if rows is None else rows,
            _EMPTY if cols is None else cols,
            _EMPTY if values is None else values)
        if self.symmetric and rows.size:
            require(bool(np.all(rows <= cols)),
                    "symmetric sparse results store the upper triangle only")
        self.rows, self.cols, self.values = rows, cols, values

    @property
    def nnz(self) -> int:
        if self.symmetric:
            return int(np.count_nonzero(self.rows != self.cols))
        return int(self.values.size)

    @property
    def stored_entries(self) -> int:
        """All stored triplets, diagonal included (``nnz`` excludes it)."""
        return int(self.values.size)

    @property
    def result_bytes(self) -> int:
        return int(self.rows.nbytes + self.cols.nbytes + self.values.nbytes)

    def matrix(self) -> np.ndarray:
        """Reconstruct the dense matrix — a deliberate escape hatch.

        Materialising ``8 * n_rows * n_cols`` bytes defeats the point of the
        sparse format, so this access path warns: migrate the call site to
        :meth:`pairs` / :meth:`frequent_pairs`, or request
        ``result_format="dense"`` where the matrix is genuinely needed.
        """
        warnings.warn(
            "matrix() on a sparse CountResult materialises the dense "
            f"{self.n_rows}x{self.n_cols} matrix this format exists to "
            "avoid; use pairs()/frequent_pairs(), or request "
            "result_format='dense'",
            DeprecationWarning, stacklevel=2)
        out = np.zeros((self.n_rows, self.n_cols), dtype=np.int64)
        out[self.rows, self.cols] = self.values
        if self.symmetric:
            off = self.rows != self.cols
            out[self.cols[off], self.rows[off]] = self.values[off]
        return out

    def pairs(self):
        if self.symmetric:
            off = self.rows != self.cols
            return self.rows[off], self.cols[off], self.values[off]
        return self.rows, self.cols, self.values

    def diagonal(self) -> np.ndarray:
        """Stored self-intersection counts as a dense length-``n`` vector."""
        require(self.symmetric, "diagonal is only defined for square results")
        out = np.zeros(self.n_rows, dtype=np.int64)
        on = self.rows == self.cols
        out[self.rows[on]] = self.values[on]
        return out

    def add_entries(self, rows, cols, values) -> "SparseCountResult":
        """Fold raw triplets into this result (repair uses this)."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        if self.symmetric and rows.size:
            flip = rows > cols
            rows, cols = np.where(flip, cols, rows), np.where(flip, rows, cols)
        self.rows, self.cols, self.values = coalesce_coo(
            np.concatenate([self.rows, rows]),
            np.concatenate([self.cols, cols]),
            np.concatenate([self.values,
                            np.asarray(values, dtype=np.int64).ravel()]))
        return self

    def merge(self, other: CountResult) -> "SparseCountResult":
        require(other.n_rows == self.n_rows and other.n_cols == self.n_cols,
                "cannot merge results of different shapes")
        if isinstance(other, SparseCountResult):
            rows, cols, values = other.rows, other.cols, other.values
        else:
            rows, cols, values = other.pairs()
        self.add_entries(rows, cols, values)
        self._merge_stats(other)
        return self


class TopKCountResult(CountResult):
    """The ``k`` best off-diagonal pairs, in rank order.

    Ranking follows the repository-wide top-k convention — descending
    count, ties broken by ascending ``(i, j)`` — so the heap path is
    bit-identical to sorting the dense matrix
    (:meth:`repro.core.batch.BatchPairCounter.top_k` pins this).
    """

    format = "topk"

    def __init__(self, k: int, n_rows: int, *, rows, cols, values,
                 min_support: int = 0, stats: dict | None = None) -> None:
        super().__init__(n_rows, symmetric=True, min_support=min_support,
                         stats=stats)
        self.k = int(k)
        self.rows = np.asarray(rows, dtype=np.int64).ravel()
        self.cols = np.asarray(cols, dtype=np.int64).ravel()
        self.values = np.asarray(values, dtype=np.int64).ravel()

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    @property
    def result_bytes(self) -> int:
        return int(self.rows.nbytes + self.cols.nbytes + self.values.nbytes)

    def ranked(self) -> list:
        """``[((i, j), count), ...]`` in rank order — the legacy top-k shape."""
        return [((int(i), int(j)), int(v))
                for i, j, v in zip(self.rows, self.cols, self.values)]

    def matrix(self) -> np.ndarray:
        warnings.warn(
            "matrix() on a top-k CountResult only contains the k surviving "
            "pairs; use ranked()/pairs(), or request result_format='dense'",
            DeprecationWarning, stacklevel=2)
        out = np.zeros((self.n_rows, self.n_cols), dtype=np.int64)
        out[self.rows, self.cols] = self.values
        out[self.cols, self.rows] = self.values
        return out

    def pairs(self):
        rows, cols, values = coalesce_coo(self.rows, self.cols, self.values,
                                          sort_only=True)
        return rows, cols, values

    def merge(self, other: CountResult) -> "TopKCountResult":
        require(other.n_rows == self.n_rows, "cannot merge different shapes")
        acc = TopKAccumulator(self.k)
        acc.push(self.rows, self.cols, self.values)
        rows, cols, values = (other.pairs() if not isinstance(other, TopKCountResult)
                              else (other.rows, other.cols, other.values))
        acc.push(rows, cols, values)
        merged = acc.result(self.n_rows, fill_zeros=False)
        self.rows, self.cols, self.values = merged.rows, merged.cols, merged.values
        self._merge_stats(other)
        return self


# --------------------------------------------------------------------------- #
# Accumulators — the engine-facing side
# --------------------------------------------------------------------------- #
class SparseAccumulator:
    """Collect tile extractions into one canonical :class:`SparseCountResult`.

    Engines call :meth:`add_block` with each computed count tile (dense
    ``(len(rows), len(cols))`` blocks in whatever index space they work in,
    already mapped to final indices by the caller); nonzero entries are
    extracted immediately so the dense tile can be freed.  ``finalize``
    coalesces once at the end.
    """

    def __init__(self, n_rows: int, n_cols: int | None = None, *,
                 symmetric: bool = True, min_support: int = 0) -> None:
        self.n_rows = int(n_rows)
        self.n_cols = int(n_rows if n_cols is None else n_cols)
        self.symmetric = bool(symmetric)
        self.min_support = int(min_support)
        self._rows: list = []
        self._cols: list = []
        self._values: list = []
        self.tiles_total = 0
        self.tiles_skipped = 0

    def add_block(self, rows, cols, block) -> None:
        """Extract and store the nonzero entries of one count tile.

        ``rows`` / ``cols`` are the final (original-order) indices of the
        tile's axes.  For symmetric accumulation entries are canonicalised
        to ``i <= j``; a tile that covers both triangles (a diagonal tile)
        must be pre-masked by the caller so each unordered pair arrives
        exactly once.
        """
        block = np.asarray(block)
        r_local, c_local = np.nonzero(block)
        if r_local.size == 0:
            return
        values = block[r_local, c_local]
        rows = np.asarray(rows, dtype=np.int64)[r_local]
        cols = np.asarray(cols, dtype=np.int64)[c_local]
        if self.symmetric:
            flip = rows > cols
            if flip.any():
                rows, cols = (np.where(flip, cols, rows),
                              np.where(flip, rows, cols))
        self._rows.append(rows)
        self._cols.append(cols)
        self._values.append(values.astype(np.int64, copy=False))

    def add_entries(self, rows, cols, values) -> None:
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.int64).ravel()
        if rows.size == 0:
            return
        if self.symmetric:
            flip = rows > cols
            if flip.any():
                rows, cols = (np.where(flip, cols, rows),
                              np.where(flip, rows, cols))
        self._rows.append(rows)
        self._cols.append(cols)
        self._values.append(values)

    @property
    def pending_entries(self) -> int:
        return int(sum(a.size for a in self._values))

    def finalize(self, *, min_support: int | None = None) -> SparseCountResult:
        rows = np.concatenate(self._rows) if self._rows else _EMPTY
        cols = np.concatenate(self._cols) if self._cols else _EMPTY
        values = np.concatenate(self._values) if self._values else _EMPTY
        result = SparseCountResult(
            self.n_rows, self.n_cols, rows=rows, cols=cols, values=values,
            symmetric=self.symmetric,
            min_support=self.min_support if min_support is None else min_support,
            stats={"tiles_total": self.tiles_total,
                   "tiles_skipped": self.tiles_skipped})
        return result


class TopKAccumulator:
    """Running top-k heap over ``(i, j, count)`` pairs with a prune floor.

    The heap keeps the ``k`` best pairs under the convention *descending
    count, ties by ascending ``(i, j)``*.  :attr:`floor` is the weakest
    kept count once the heap is full — a tile whose count upper bound is
    strictly below the floor cannot change the result and may be skipped
    (ties must still be examined: a tying pair with smaller indices
    displaces a kept one).
    """

    def __init__(self, k: int) -> None:
        require_positive(k, "k")
        self.k = int(k)
        # min-heap keyed (count, -i, -j): the root is the weakest entry
        # under the ranking convention.
        self._heap: list = []

    @property
    def floor(self) -> int:
        """Prune floor: counts strictly below this can never enter the heap."""
        if len(self._heap) < self.k:
            return 0
        return int(self._heap[0][0])

    def push(self, rows, cols, values) -> None:
        """Offer a batch of candidate pairs (zero counts are skipped)."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.int64).ravel()
        heap, k = self._heap, self.k
        if len(heap) >= k:
            strong = values >= heap[0][0]
            rows, cols, values = rows[strong], cols[strong], values[strong]
        for i, j, v in zip(rows.tolist(), cols.tolist(), values.tolist()):
            if v <= 0:
                continue
            entry = (v, -i, -j)
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)

    def push_block(self, rows, cols, block) -> None:
        """Offer one dense count tile (final-index axes, like ``add_block``)."""
        block = np.asarray(block)
        floor = max(1, self.floor)
        r_local, c_local = np.nonzero(block >= floor)
        if r_local.size == 0:
            return
        self.push(np.asarray(rows, dtype=np.int64)[r_local],
                  np.asarray(cols, dtype=np.int64)[c_local],
                  block[r_local, c_local])

    def result(self, n_rows: int, *, min_support: int = 0,
               stats: dict | None = None, fill_zeros: bool = True,
               exclude=frozenset()) -> TopKCountResult:
        """Freeze the heap into a ranked :class:`TopKCountResult`.

        When fewer than ``k`` nonzero pairs were seen and ``fill_zeros`` is
        set, the remainder is padded with zero-count pairs in ascending
        ``(i, j)`` order (skipping ``exclude`` and pairs already kept) —
        the same entries a dense sort would return.
        """
        ranked = sorted(self._heap, key=lambda e: (-e[0], -e[1], -e[2]))
        entries = [(-ni, -nj, v) for v, ni, nj in ranked]
        if fill_zeros and len(entries) < self.k:
            kept = {(i, j) for i, j, _ in entries} | set(exclude)
            need = self.k - len(entries)
            for i in range(n_rows):
                if need == 0:
                    break
                for j in range(i + 1, n_rows):
                    if (i, j) in kept:
                        continue
                    entries.append((i, j, 0))
                    need -= 1
                    if need == 0:
                        break
            entries.sort(key=lambda e: (-e[2], e[0], e[1]))
        rows = np.array([e[0] for e in entries], dtype=np.int64)
        cols = np.array([e[1] for e in entries], dtype=np.int64)
        values = np.array([e[2] for e in entries], dtype=np.int64)
        return TopKCountResult(self.k, n_rows, rows=rows, cols=cols,
                               values=values, min_support=min_support,
                               stats=stats)


def as_count_result(counts, *, symmetric: bool = True) -> CountResult:
    """Wrap a raw matrix (or pass a :class:`CountResult` through)."""
    if isinstance(counts, CountResult):
        return counts
    return DenseCountResult(np.asarray(counts), symmetric=symmetric)
