"""Size-tiered (LSM-style) compaction of spilled delta shards.

Delta-shard ingest (:meth:`~repro.core.sharded.ShardedCollectionBuilder.append`)
keeps writes cheap by never touching existing shards, but every appended
shard amplifies counting: ``k`` shards mean ``k*(k+1)/2`` shard-pair
rectangles per all-pairs count, and tombstoned rows keep occupying disk and
tile work until something removes them.  This module is that something — the
classic LSM answer, adapted to the spill format's one hard constraint:
shards cover *contiguous* global id ranges (serve-time addressing is a
``searchsorted`` over shard boundaries), so only **adjacent** shards merge.

Merging is pure data movement.  A spilled row's bytes depend only on
(set, family, r, config) — never on which shard holds it — so compaction
concatenates the member shards' rows (dropping tombstoned ones), re-sorts
the width classes, and rewrites offsets; no placement, no hashing, no
change to any count.  Bit-identity of every read path before and after a
compaction is pinned by ``tests/test_compaction.py``.

Memory accounting matches the build side: one merged shard's packed words
stay at or below ``memory_budget // SHARD_BUDGET_DIVISOR`` (the same shard
budget :func:`~repro.core.sharded.plan_shard_ranges` enforces), so the merge
phase never holds more resident bytes than the original build did.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.integrity import AtomicCommit, file_digest
from repro.core.sharded import (
    SHARD_BUDGET_DIVISOR,
    ShardInfo,
    ShardedCollection,
    build_spill_manifest,
)
from repro.utils.faultpoints import faultpoint
from repro.utils.validation import require, require_positive

__all__ = [
    "COMPACTION_MIN_RUN",
    "CompactionTask",
    "plan_compaction",
    "compact",
]

#: Adjacent same-tier shards required before the tiered policy triggers a
#: merge.  Below this the merge's write amplification outweighs the saved
#: rectangle count; at or above it one merge removes ``min_run - 1`` shards
#: from every future count.
COMPACTION_MIN_RUN = 4


@dataclass(frozen=True)
class CompactionTask:
    """One planned merge: a contiguous run of shard indices plus the why."""

    start: int   #: first shard index of the run
    stop: int    #: one past the last shard index
    reason: str

    @property
    def n_shards(self) -> int:
        """Number of shards this task merges."""
        return self.stop - self.start


def _size_tier(nbytes: int) -> int:
    """Tier of a shard by packed size: floor(log2(nbytes)), 0 for empty."""
    return max(0, int(nbytes).bit_length() - 1)


def _split_by_budget(start: int, stop: int, nbytes, shard_budget) -> list:
    """Split ``[start, stop)`` greedily so each group's total fits the budget.

    A single shard over the budget still gets its own group — like
    ``plan_shard_ranges``, the budget bounds what a merge may *combine*, it
    cannot shrink what already exists.
    """
    if shard_budget is None:
        return [(start, stop)]
    groups = []
    lo = start
    running = 0
    for k in range(start, stop):
        size = int(nbytes[k])
        if k > lo and running + size > shard_budget:
            groups.append((lo, k))
            lo, running = k, 0
        running += size
    if lo < stop:
        groups.append((lo, stop))
    return groups


def plan_compaction(
    shard_nbytes,
    *,
    memory_budget: int | None = None,
    min_run: int = COMPACTION_MIN_RUN,
    full: bool = False,
) -> list:
    """Plan which adjacent shard runs to merge.

    The **tiered** policy (``full=False``) groups adjacent shards by size
    tier (``floor(log2(nbytes))``) and schedules a merge for every run of at
    least ``min_run`` same-tier shards — the steady-state policy that folds
    accumulated delta shards into their base without rewriting the whole
    spill.  The **full** policy (``full=True``) schedules everything into as
    few shards as the budget allows, including singleton runs (so a full
    compaction also purges tombstones from shards that have no merge
    partner).

    ``memory_budget`` caps each merged shard at the same
    ``budget // SHARD_BUDGET_DIVISOR`` shard budget the builder uses;
    ``None`` means unbounded merges.  Returns :class:`CompactionTask` runs in
    ascending shard order.
    """
    nbytes = np.asarray(shard_nbytes, dtype=np.int64)
    require_positive(min_run, "min_run")
    shard_budget = None
    if memory_budget is not None:
        require_positive(memory_budget, "memory_budget")
        shard_budget = max(1, memory_budget // SHARD_BUDGET_DIVISOR)

    tasks: list[CompactionTask] = []
    if full:
        for lo, hi in _split_by_budget(0, int(nbytes.size), nbytes, shard_budget):
            tasks.append(CompactionTask(
                lo, hi, "full compaction requested"))
        return tasks

    start = 0
    while start < nbytes.size:
        tier = _size_tier(int(nbytes[start]))
        stop = start
        while stop < nbytes.size and _size_tier(int(nbytes[stop])) == tier:
            stop += 1
        if stop - start >= min_run:
            for lo, hi in _split_by_budget(start, stop, nbytes, shard_budget):
                if hi - lo >= 2:
                    tasks.append(CompactionTask(
                        lo, hi,
                        f"{stop - start} adjacent shards in size tier {tier} "
                        f"(threshold {min_run})"))
        start = stop
    return tasks


def _load_shard_rows(sharded: ShardedCollection, shard: ShardInfo):
    """Per-local-row ``(widths, offsets, words)`` of one spilled shard.

    Returns arrays indexed by *local set id* (not slot): the row's true
    width in words, its offset into the shard's words buffer, plus the
    buffer itself (memory-mapped — only copied rows are materialised).
    """
    words = np.load(shard.directory / "words.npy", mmap_mode="r")
    offsets = np.load(shard.directory / "offsets.npy")
    widths = np.load(shard.directory / "widths.npy")
    rank = np.empty(shard.n_sets, dtype=np.int64)
    rank[shard.order] = np.arange(shard.n_sets, dtype=np.int64)
    return widths[rank], offsets[rank], words


def _merge_group(
    sharded: ShardedCollection,
    members: list,
    directory,
    tombstoned: np.ndarray,
) -> tuple[ShardInfo, int]:
    """Write one merged shard from ``members``, dropping tombstoned rows.

    ``tombstoned`` is a boolean mask over physical ids.  Returns the new
    :class:`ShardInfo` (with ``lo``/``hi`` left at 0 for the caller to
    renumber) and the number of purged rows.
    """
    row_widths = []     # true width per surviving row, in (member, local) order
    row_sources = []    # (member_idx, local_id) per surviving row
    per_member = []
    purged = 0
    for m, shard in enumerate(members):
        widths_by_row, offsets_by_row, words = _load_shard_rows(sharded, shard)
        per_member.append((widths_by_row, offsets_by_row, words))
        for local in range(shard.n_sets):
            if tombstoned[shard.lo + local]:
                purged += 1
                continue
            row_widths.append(int(widths_by_row[local]))
            row_sources.append((m, local))
    n_rows = len(row_widths)
    widths_arr = np.asarray(row_widths, dtype=np.int64)
    # Width-class layout: slots ascend by width, ties stably by new local id
    # (any consistent order works — ``order.npy`` carries the mapping).
    order = np.argsort(widths_arr, kind="stable").astype(np.int64)
    sorted_widths = widths_arr[order]
    padded = ((sorted_widths + 15) // 16) * 16
    offsets = np.zeros(n_rows, dtype=np.int64)
    if n_rows:
        offsets[1:] = np.cumsum(padded)[:-1]
    total = int(padded.sum())
    merged_words = np.zeros(total, dtype=np.uint32)
    for slot, row in enumerate(order.tolist()):
        m, local = row_sources[row]
        widths_by_row, offsets_by_row, words = per_member[m]
        lo = int(offsets_by_row[local])
        width = int(widths_by_row[local])
        merged_words[offsets[slot]:offsets[slot] + width] = words[lo:lo + width]

    # Failed insertions: remap member-local ids to merged-local ids, drop
    # tombstoned rows (their sets no longer exist in any read path).
    new_local = {src: k for k, src in enumerate(row_sources)}
    failed_pairs = []
    for m, shard in enumerate(members):
        for element, local in shard.failed.tolist():
            key = (m, int(local))
            if key in new_local:
                failed_pairs.append((int(element), new_local[key]))
    failed = (np.array(sorted(failed_pairs), dtype=np.int64).reshape(-1, 2)
              if failed_pairs else np.zeros((0, 2), dtype=np.int64))

    directory.mkdir(exist_ok=True)
    digests = {}
    for name, array in (("words.npy", merged_words), ("offsets.npy", offsets),
                        ("widths.npy", sorted_widths), ("order.npy", order),
                        ("failed.npy", failed)):
        np.save(directory / name, array)
        digests[name] = file_digest(directory / name)
    info = ShardInfo(
        index=0, lo=0, hi=n_rows, directory=directory,
        nbytes=int(merged_words.nbytes), build_backend="compacted",
        order=order, failed=failed, kind="base", file_digests=digests,
    )
    return info, purged


def compact(
    sharded: ShardedCollection,
    *,
    memory_budget: int | None = None,
    min_run: int = COMPACTION_MIN_RUN,
    full: bool = False,
) -> ShardedCollection:
    """Merge shards per :func:`plan_compaction` and publish the next generation.

    Tombstoned rows inside every rewritten shard are physically purged;
    their ids vanish from the tombstone set and later physical ids shift
    down — the *live* index space (what counts, queries and failed lists
    are expressed in) is unchanged, which is why every result is bit-identical
    across a compaction.  Consumed shard directories are removed after the
    new manifest is written; the passed-in collection object is stale
    afterwards — use the returned one.

    A no-op plan (nothing to merge, nothing to purge) returns ``sharded``
    unchanged without bumping the generation.
    """
    require(sharded.n_shards > 0, "cannot compact an empty collection")
    tasks = plan_compaction([s.nbytes for s in sharded.shards],
                            memory_budget=memory_budget, min_run=min_run,
                            full=full)
    tombstoned = np.zeros(sharded.n_physical_sets, dtype=bool)
    tombstoned[sharded.tombstones] = True
    by_start = {task.start: task for task in tasks}

    # Skip pointless rewrites: a singleton task with nothing to purge.
    def _is_noop(task: CompactionTask) -> bool:
        if task.n_shards > 1:
            return False
        shard = sharded.shards[task.start]
        return not tombstoned[shard.lo:shard.hi].any()

    effective = [t for t in tasks if not _is_noop(t)]
    if not effective:
        return sharded

    generation = sharded.generation + 1
    commit = AtomicCommit(sharded.spill_dir)
    try:
        new_shards: list[ShardInfo] = []
        running_lo = 0
        merged_count = 0
        k = 0
        while k < len(sharded.shards):
            task = by_start.get(k)
            if task is None or _is_noop(task):
                shard = sharded.shards[k]
                n = shard.n_sets
                new_shards.append(ShardInfo(
                    index=len(new_shards), lo=running_lo, hi=running_lo + n,
                    directory=shard.directory, nbytes=shard.nbytes,
                    build_backend=shard.build_backend, order=shard.order,
                    failed=shard.failed, kind=shard.kind,
                    file_digests=shard.file_digests,
                ))
                running_lo += n
                k += 1
                continue
            members = sharded.shards[task.start:task.stop]
            name = f"compact_{generation:04d}_{merged_count:04d}"
            merged_count += 1
            faultpoint("compact.merge")
            info, _ = _merge_group(sharded, members, commit.stage(name),
                                   tombstoned)
            if info.hi > 0:  # skip fully-purged (empty) groups entirely
                new_shards.append(ShardInfo(
                    index=len(new_shards), lo=running_lo,
                    hi=running_lo + info.hi,
                    directory=sharded.spill_dir / name, nbytes=info.nbytes,
                    build_backend=info.build_backend, order=info.order,
                    failed=info.failed, kind=info.kind,
                    file_digests=info.file_digests,
                ))
                running_lo += info.hi
            else:
                # The staged (empty) directory still gets renamed in at
                # commit; unreferenced, it is swept as garbage right after.
                commit.add_garbage(sharded.spill_dir / name)
            for shard in members:
                commit.add_garbage(shard.directory)
            k = task.stop

        # Remap tombstones: rows in rewritten groups were purged (dropped
        # from the set); rows in kept shards shift down by the purges
        # before them.
        keep_mask = np.ones(sharded.n_physical_sets, dtype=bool)
        for task in effective:
            lo = sharded.shards[task.start].lo
            hi = sharded.shards[task.stop - 1].hi
            keep_mask[lo:hi] &= ~tombstoned[lo:hi]
        new_ids = np.cumsum(keep_mask) - 1
        old_tombstones = sharded.tombstones
        surviving = old_tombstones[keep_mask[old_tombstones]]
        new_tombstones = new_ids[surviving].astype(np.int64)

        tombstones_entry = None
        tombstones_file = tombstones_digest = None
        if new_tombstones.size:
            tombstones_file = f"tombstones_{generation:04d}.npy"
            staged = commit.stage(tombstones_file)
            np.save(staged, new_tombstones)
            tombstones_digest = file_digest(staged)
            tombstones_entry = {"file": tombstones_file,
                                "digest": tombstones_digest,
                                "n": int(new_tombstones.size)}
        if sharded.tombstones_file is not None:
            commit.add_garbage(sharded.spill_dir / sharded.tombstones_file)
        manifest = build_spill_manifest(
            universe_size=sharded.universe_size, r0=sharded.r0,
            payload_bits=sharded.payload_bits, shards=new_shards,
            generation=generation, family_kind=sharded.family_kind,
            tombstones=tombstones_entry, family=sharded._family_entry(),
        )
        commit.commit(manifest)
    except BaseException:
        commit.abort()
        raise
    return ShardedCollection(
        sharded.spill_dir, sharded.universe_size, sharded.r0, new_shards,
        family=sharded._family, payload_bits=sharded.payload_bits,
        generation=generation, tombstones=new_tombstones,
        tombstones_file=tombstones_file, tombstones_digest=tombstones_digest,
        family_file=sharded.family_file, family_digest=sharded.family_digest,
    )
