"""A collection of batmaps sharing one hash family, ready for bulk intersection.

This is the host-side object the mining pipeline builds during preprocessing
(Section III-C of the paper):

* all sets are converted to batmaps with the *same* three hash permutations,
  so any two of them are positionally comparable;
* batmaps are sorted by increasing width, so that the GPU's 16-wide work
  groups spend little time on narrow batmaps;
* all batmaps are packed into one flat device buffer (the interleaved layout
  of Figure 4, four 8-bit entries per 32-bit word) that is shipped to the
  device once;
* failed cuckoo insertions are recorded per transaction so the host can
  repair the affected pair counts after the device pass.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.batch import BatchPairCounter
from repro.core.batmap import Batmap
from repro.core.builder import place_set
from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.core.hashing import HashFamily
from repro.core.intersection import count_common
from repro.utils.bits import pack_bytes_to_words
from repro.utils.rng import RngLike
from repro.utils.validation import require, require_positive

__all__ = ["DeviceBuffer", "BatmapCollection"]


def _dedup_sorted(s) -> np.ndarray:
    """``np.unique`` with a fast path for already-sorted duplicate-free input.

    Tidlists — the mining pipeline's sets — arrive strictly ascending, so
    the O(n log n) sort inside ``np.unique`` is pure overhead for them; a
    single vectorized monotonicity check replaces it.  The returned array
    is never mutated downstream, so passing the caller's array through on
    the fast path is safe.
    """
    arr = np.asarray(s, dtype=np.int64).ravel()
    if arr.size < 2 or bool(np.all(arr[1:] > arr[:-1])):
        return arr
    return np.unique(arr)


@dataclass(frozen=True)
class DeviceBuffer:
    """Flat packed representation of every batmap, as transferred to the device.

    Attributes
    ----------
    words:
        ``uint32`` array holding all batmaps back to back (interleaved layout,
        4 entries per word).
    offsets:
        ``offsets[k]`` is the first word of batmap ``k`` (in sorted order).
    widths:
        ``widths[k]`` is the number of words of batmap ``k``.
    r0:
        The collection-wide block granularity (smallest hash range).
    """

    words: np.ndarray
    offsets: np.ndarray
    widths: np.ndarray
    r0: int

    @property
    def nbytes(self) -> int:
        return int(self.words.nbytes)

    def slice(self, k: int) -> np.ndarray:
        """Word view of batmap ``k`` (sorted order)."""
        o = int(self.offsets[k])
        return self.words[o:o + int(self.widths[k])]


class BatmapCollection:
    """Batmaps for a family of sets ``S_0 .. S_{n-1}`` over ``{0..m-1}``.

    Indices exposed by the public API are the *original* set indices (e.g.
    item ids in frequent pair mining); the width-sorted order used internally
    for device scheduling is available as :attr:`order`.
    """

    def __init__(
        self,
        family: HashFamily,
        config: BatmapConfig,
        batmaps: list[Batmap],
        order: np.ndarray,
        universe_size: int,
    ) -> None:
        self.family = family
        self.config = config
        self._batmaps_sorted = batmaps          # in width-sorted order
        self.order = order                      # order[k] = original index of sorted slot k
        self.universe_size = universe_size
        self.rank = np.empty_like(order)
        self.rank[order] = np.arange(order.size)
        self._device_buffer: DeviceBuffer | None = None
        self._batch_counter: BatchPairCounter | None = None
        #: The construction planner's verdict for this collection (set by
        #: :meth:`build`; ``None`` for hand-assembled collections).
        self.build_plan = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        sets: Sequence[np.ndarray],
        universe_size: int,
        *,
        config: BatmapConfig = DEFAULT_CONFIG,
        rng: RngLike = None,
        sort_by_size: bool = True,
        family: HashFamily | None = None,
        build_compute: str = "auto",
        build_workers: int | None = None,
        memory_budget: int | None = None,
    ) -> "BatmapCollection":
        """Build batmaps for every set in ``sets``.

        ``sets[i]`` is an array-like of element ids in ``[0, universe_size)``.

        ``build_compute`` selects the construction engine through the
        workload planner (:func:`~repro.core.plan.plan_build`): ``"host"``
        is the serial per-element inserter (the oracle), ``"bulk"`` the
        round-based vectorized engine (:mod:`repro.core.bulk_build`),
        ``"parallel"`` the multiprocess bulk builder over set shards
        (:mod:`repro.parallel.build`; demoted to ``"bulk"`` below its
        pay-off floor), and ``"auto"`` (default) lets the planner pick.
        All engines yield collections with identical pair counts on every
        counting path; the bulk engines additionally pre-assemble the
        packed device buffer, so :meth:`device_buffer` is free afterwards.

        ``memory_budget`` (bytes) tightens the bulk engine's group chunking
        so its slot tables respect a resident-set ceiling — placements are
        per-set independent, so the budget changes working-set size only,
        never a byte of the output.
        """
        from repro.core.plan import plan_build  # avoid an import cycle at module load

        require_positive(universe_size, "universe_size")
        require(len(sets) > 0, "cannot build an empty collection")
        if family is None:
            shift = config.shift_for_universe(universe_size)
            family = HashFamily.create(universe_size, shift=shift, rng=rng)
        else:
            require(family.universe_size == universe_size,
                    "family universe size does not match universe_size")

        # Deduplicate each set exactly once; sizes, ranges and the build
        # loop below all reuse the same arrays (the seed ran np.unique
        # twice per set — one pass for sizes, another inside the loop).
        dedup = [_dedup_sorted(s) for s in sets]
        for elements in dedup:
            if elements.size and (elements[0] < 0
                                  or elements[-1] >= universe_size):
                raise ValueError(
                    "element id out of range for the hash family's universe")
        sizes = np.array([d.size for d in dedup], dtype=np.int64)
        order = np.argsort(sizes, kind="stable") if sort_by_size else np.arange(len(sets))
        # Keep the packed-word path available even for tiny sets.  Sizes
        # repeat heavily across a large collection, so the range arithmetic
        # is memoised per distinct size.  Range floors derive from the
        # family's range universe (the capacity, for extensible families) so
        # builds before and after a universe growth stay bit-identical.
        range_universe = family.range_universe
        range_cache: dict[int, int] = {}
        rs = []
        for size in sizes.tolist():
            r = range_cache.get(size)
            if r is None:
                r = range_cache[size] = max(
                    4, config.range_for_size(size, range_universe))
            rs.append(r)

        plan = plan_build(len(sets), int(sizes.sum()),
                          requested=build_compute, workers=build_workers)
        if plan.backend == "host":
            batmaps: list[Batmap] = []
            for k in order.tolist():
                placement = place_set(dedup[k], family, rs[k], config,
                                      assume_unique=True)
                batmaps.append(Batmap.from_placement(
                    placement, family, config, set_size=int(sizes[k])))
            collection = cls(family, config, batmaps,
                             np.asarray(order, dtype=np.int64), universe_size)
            collection.build_plan = plan
            return collection
        return cls._build_bulk(dedup, rs, family, config, order,
                               universe_size, plan, memory_budget)

    @classmethod
    def _build_bulk(cls, dedup, rs, family, config, order, universe_size,
                    plan, memory_budget=None) -> "BatmapCollection":
        """Assemble the collection from the bulk (or parallel-bulk) engine.

        Batmap entries stay views into the chunk-stacked arrays the encoder
        produced, and the same stacks are packed straight into the
        :class:`DeviceBuffer` (identical bytes to the lazy per-set packing
        of :meth:`device_buffer`) — no per-set re-stacking ever runs for
        bulk-built collections.
        """
        from repro.core.bulk_build import (
            bulk_build_chunks,
            chunk_built_sets,
            device_word_layout,
            pack_group_words,
            sets_from_chunks,
        )

        sorted_sets = [dedup[k] for k in order.tolist()]
        sorted_rs = [rs[k] for k in order.tolist()]
        if plan.backend == "parallel":
            from repro.parallel.build import parallel_bulk_build_sets

            built = parallel_bulk_build_sets(sorted_sets, sorted_rs, family,
                                             config, workers=plan.workers)
            # Re-stack per width-group chunk for packing (one pass of copies;
            # the in-process path below reuses the encoder's stacks as-is).
            pack_jobs = chunk_built_sets(built)
        else:
            # The bulk engine keeps roughly six 8-byte per-slot arrays alive
            # while a group places (~45 B per slot measured); a budget caps
            # the slots per chunk so the placement working set stays near a
            # quarter of the ceiling.
            slot_budget = (None if memory_budget is None
                           else max(1, memory_budget // 192))
            chunks = bulk_build_chunks(sorted_sets, sorted_rs, family, config,
                                       slot_budget=slot_budget)
            built = sets_from_chunks(chunks, len(sorted_sets))
            pack_jobs = [(chunk.indices, chunk.entries) for chunk in chunks]

        batmaps = [
            Batmap(family=family, config=config, r=b.r, entries=b.entries,
                   set_size=int(sorted_sets[k].size), failed=b.failed,
                   stats=b.stats)
            for k, b in enumerate(built)
        ]
        collection = cls(family, config, batmaps,
                         np.asarray(order, dtype=np.int64), universe_size)
        collection.build_plan = plan

        if config.entry_storage_bits == 8:
            r0 = min(b.r for b in built)
            widths, offsets, total = device_word_layout([b.r for b in built])
            words = np.zeros(total, dtype=np.uint32)
            for slots, entries in pack_jobs:
                packed, _ = pack_group_words(entries, r0)
                words[offsets[slots][:, None] + np.arange(packed.shape[1])] = packed
            collection._device_buffer = DeviceBuffer(
                words=words, offsets=offsets, widths=widths, r0=r0)
        return collection

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._batmaps_sorted)

    def batmap(self, original_index: int) -> Batmap:
        """Batmap of the set with the given *original* index."""
        return self._batmaps_sorted[int(self.rank[original_index])]

    def batmap_sorted(self, sorted_index: int) -> Batmap:
        """Batmap at a width-sorted slot (device scheduling order)."""
        return self._batmaps_sorted[sorted_index]

    @property
    def batmaps_sorted(self) -> list[Batmap]:
        return list(self._batmaps_sorted)

    @property
    def r0(self) -> int:
        """Collection-wide block granularity: the smallest range present."""
        return min(b.r for b in self._batmaps_sorted)

    @property
    def memory_bytes(self) -> int:
        """Total compressed size of all batmaps (the device transfer size)."""
        return sum(b.memory_bytes for b in self._batmaps_sorted)

    def failed_insertions(self) -> dict[int, list[int]]:
        """Map ``element -> [original set indices]`` whose insertion of that element failed.

        In the frequent-pair-mining context the element is a transaction id
        ``b`` and the returned lists are the sets ``F_b`` of Section III-C.
        """
        failures: dict[int, list[int]] = {}
        for sorted_idx, bm in enumerate(self._batmaps_sorted):
            original = int(self.order[sorted_idx])
            for element in bm.failed:
                failures.setdefault(int(element), []).append(original)
        return failures

    # ------------------------------------------------------------------ #
    # Host-side pair counting (batch engine)
    # ------------------------------------------------------------------ #
    def has_batch_counter(self) -> bool:
        """Whether the batch engine has already been built for this collection.

        A planner feature (:class:`~repro.core.plan.PlanFeatures`): once the
        packed buffer has been gathered, even point queries are cheaper
        through the engine than through the per-pair reference.
        """
        return self._batch_counter is not None

    def batch_counter(self) -> BatchPairCounter:
        """The vectorised batch pair-counting engine for this collection (cached).

        Built once; every host-side counting query — :meth:`count_pair`,
        :meth:`count_all_pairs`, the boolean-matrix product and the mining
        pipeline's host compute mode — goes through it.
        """
        if self._batch_counter is None:
            self._batch_counter = BatchPairCounter(self)
        return self._batch_counter

    def count_pair(self, i: int, j: int) -> int:
        """Stored-copy intersection count of original sets ``i`` and ``j``.

        A point query stays O(one pair): it only goes through the batch
        engine once some bulk query has already built it (building the engine
        gathers the whole packed buffer, which a single pair never amortises;
        an existing engine also implies the word-aligned r0 >= 4 it validates).
        """
        if self._batch_counter is None:
            return count_common(self.batmap(i), self.batmap(j))
        return self._batch_counter.count_pair(i, j)

    def count_all_pairs(
        self,
        *,
        parallel=False,
        workers: int | None = None,
        compute: str | None = None,
        result_format: str = "dense",
        min_support: int = 0,
        top_k: int | None = None,
        memory_budget: int | None = None,
    ):
        """Stored-copy intersection counts of every pair.

        Backend selection goes through the workload planner
        (:func:`~repro.core.plan.plan_counts`); all backends are
        bit-identical to looping :func:`~repro.core.intersection.count_common`
        over every pair.  The diagonal holds each set's stored element count.

        ``result_format="dense"`` (the default) keeps the legacy contract —
        a dense ``n x n`` ``int64`` ndarray.  Any other format (or a
        ``top_k``) returns a :class:`~repro.core.results.CountResult`
        instead: ``"sparse"`` holds COO triplets with tiles below
        ``min_support`` pruned before any SWAR work, and ``"auto"`` demotes
        dense to sparse when the dense matrix alone would exceed
        ``memory_budget`` (dense-mode callers are unaffected; sparse-mode
        results warn ``DeprecationWarning`` only if their raw matrix is
        materialised through ``matrix()``).

        ``compute`` names a backend explicitly (``"auto"``, ``"host"``,
        ``"batch"`` or ``"parallel"``).  ``parallel`` is the older shorthand
        for ``compute="parallel"``: pass ``True`` to auto-select the worker
        count, or an integer (equivalently ``workers=``) to pin it; small
        collections still fall back to the serial batch engine.  With
        neither argument the serial engines are used (the batch engine when
        the layout is word-packable, the per-pair loop otherwise).
        """
        from repro.core.plan import plan_counts  # parallel sits above core

        require(compute in (None, "auto", "host", "batch", "parallel"),
                f"compute must be 'auto', 'host', 'batch' or 'parallel', got {compute!r}")
        if workers is None and parallel and not isinstance(parallel, bool):
            workers = int(parallel)
        if result_format != "dense" or top_k is not None:
            requested = compute if compute is not None else (
                "parallel" if parallel else None)
            return self.count_result(
                compute=requested, workers=workers,
                result_format=result_format, min_support=min_support,
                top_k=top_k, memory_budget=memory_budget)
        byte_packable = self.r0 >= 4 and self.config.entry_storage_bits == 8
        requested = compute if compute is not None else (
            "parallel" if parallel else ("batch" if byte_packable else "host")
        )
        plan = plan_counts(self, requested=requested, workers=workers)
        if plan.backend == "parallel" and byte_packable:
            from repro.parallel.executor import ParallelPairCounter

            with ParallelPairCounter(self, workers=workers) as counter:
                return counter.count_all_pairs()
        if plan.backend == "host" or not byte_packable:
            return self._count_all_pairs_loop()
        return self.batch_counter().count_all_pairs()

    def count_result(
        self,
        *,
        compute: str | None = None,
        workers: int | None = None,
        result_format: str = "auto",
        min_support: int = 0,
        top_k: int | None = None,
        memory_budget: int | None = None,
    ):
        """All-pairs counts as a :class:`~repro.core.results.CountResult`.

        The format-aware twin of :meth:`count_all_pairs`: ``"auto"``
        resolves against ``memory_budget``
        (:func:`~repro.core.plan.resolve_result_format`), ``min_support``
        becomes the engines' tile-pruning bound, and ``top_k`` returns the
        running-heap result.  Every backend produces bit-identical surviving
        counts; the dense format remains the oracle.
        """
        from repro.core.plan import (  # parallel sits above core
            PlanFeatures,
            plan_counts,
            resolve_result_format,
        )

        require(compute in (None, "auto", "host", "batch", "parallel"),
                f"compute must be 'auto', 'host', 'batch' or 'parallel', got {compute!r}")
        fmt = resolve_result_format(result_format, len(self), memory_budget)
        byte_packable = self.r0 >= 4 and self.config.entry_storage_bits == 8
        requested = compute if compute is not None else (
            "batch" if byte_packable else "host")
        features = PlanFeatures.from_collection(
            self, result_format=fmt, min_support=min_support)
        plan = plan_counts(features, requested=requested, workers=workers)
        if plan.backend == "parallel" and byte_packable:
            from repro.parallel.executor import ParallelPairCounter

            with ParallelPairCounter(self, workers=workers) as counter:
                return counter.count_result(
                    result_format=fmt, min_support=min_support, top_k=top_k)
        if plan.backend == "host" or not byte_packable:
            return self._loop_count_result(fmt, min_support, top_k)
        return self.batch_counter().count_result(
            result_format=fmt, min_support=min_support, top_k=top_k)

    def _loop_count_result(self, fmt: str, min_support: int, top_k):
        """Reference-loop counts converted to the requested result shape.

        The per-pair loop computes everything (no tiles exist to prune), so
        the conversion is pure reshaping and the result carries no pruning
        floor.
        """
        from repro.core.results import (
            DenseCountResult,
            SparseCountResult,
            TopKAccumulator,
        )

        dense = self._count_all_pairs_loop()
        n = dense.shape[0]
        if top_k is not None:
            acc = TopKAccumulator(top_k)
            iu, ju = np.triu_indices(n, k=1)
            values = dense[iu, ju]
            keep = values >= max(1, min_support)
            acc.push(iu[keep], ju[keep], values[keep])
            return acc.result(n, min_support=min_support,
                              fill_zeros=min_support <= 1)
        if fmt == "dense":
            return DenseCountResult(dense)
        iu, ju = np.triu_indices(n, k=0)
        values = dense[iu, ju]
        keep = values != 0
        return SparseCountResult(n, rows=iu[keep], cols=ju[keep],
                                 values=values[keep])

    def _count_all_pairs_loop(self) -> np.ndarray:
        """Per-pair reference loop, kept for sub-word ranges and verification."""
        n = len(self)
        out = np.zeros((n, n), dtype=np.int64)
        for a in range(n):
            bm_a = self._batmaps_sorted[a]
            ia = int(self.order[a])
            out[ia, ia] = bm_a.stored_count
            for b in range(a + 1, n):
                ib = int(self.order[b])
                c = count_common(bm_a, self._batmaps_sorted[b])
                out[ia, ib] = c
                out[ib, ia] = c
        return out

    # ------------------------------------------------------------------ #
    # Device packing
    # ------------------------------------------------------------------ #
    def device_buffer(self) -> DeviceBuffer:
        """Pack every batmap into one flat word buffer (built once, cached).

        Each batmap is padded to a 16-word (64-byte) boundary so that the
        16-wide coalesced reads of the pair-count kernel start on an aligned
        segment — the alignment requirement the paper's best-practice guide
        [19] calls out.  The padding words are never read (folding uses the
        true width), they only shift the next batmap's offset.  The buffer
        geometry comes from :func:`~repro.core.bulk_build.device_word_layout`
        — the same function the bulk build path assembles its (pre-built,
        byte-identical) buffer from.
        """
        if self._device_buffer is None:
            from repro.core.bulk_build import device_word_layout

            r0 = self.r0
            widths, offsets, total = device_word_layout(
                [bm.r for bm in self._batmaps_sorted])
            words = np.zeros(total, dtype=np.uint32)
            for k, bm in enumerate(self._batmaps_sorted):
                packed = pack_bytes_to_words(bm.device_array(r0))
                words[offsets[k]:offsets[k] + packed.size] = packed
            self._device_buffer = DeviceBuffer(
                words=words, offsets=offsets, widths=widths, r0=r0)
        return self._device_buffer
