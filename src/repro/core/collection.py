"""A collection of batmaps sharing one hash family, ready for bulk intersection.

This is the host-side object the mining pipeline builds during preprocessing
(Section III-C of the paper):

* all sets are converted to batmaps with the *same* three hash permutations,
  so any two of them are positionally comparable;
* batmaps are sorted by increasing width, so that the GPU's 16-wide work
  groups spend little time on narrow batmaps;
* all batmaps are packed into one flat device buffer (the interleaved layout
  of Figure 4, four 8-bit entries per 32-bit word) that is shipped to the
  device once;
* failed cuckoo insertions are recorded per transaction so the host can
  repair the affected pair counts after the device pass.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.batch import BatchPairCounter
from repro.core.batmap import Batmap
from repro.core.builder import place_set
from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.core.hashing import HashFamily
from repro.core.intersection import count_common
from repro.utils.bits import pack_bytes_to_words
from repro.utils.rng import RngLike
from repro.utils.validation import require, require_positive

__all__ = ["DeviceBuffer", "BatmapCollection"]


@dataclass(frozen=True)
class DeviceBuffer:
    """Flat packed representation of every batmap, as transferred to the device.

    Attributes
    ----------
    words:
        ``uint32`` array holding all batmaps back to back (interleaved layout,
        4 entries per word).
    offsets:
        ``offsets[k]`` is the first word of batmap ``k`` (in sorted order).
    widths:
        ``widths[k]`` is the number of words of batmap ``k``.
    r0:
        The collection-wide block granularity (smallest hash range).
    """

    words: np.ndarray
    offsets: np.ndarray
    widths: np.ndarray
    r0: int

    @property
    def nbytes(self) -> int:
        return int(self.words.nbytes)

    def slice(self, k: int) -> np.ndarray:
        """Word view of batmap ``k`` (sorted order)."""
        o = int(self.offsets[k])
        return self.words[o:o + int(self.widths[k])]


class BatmapCollection:
    """Batmaps for a family of sets ``S_0 .. S_{n-1}`` over ``{0..m-1}``.

    Indices exposed by the public API are the *original* set indices (e.g.
    item ids in frequent pair mining); the width-sorted order used internally
    for device scheduling is available as :attr:`order`.
    """

    def __init__(
        self,
        family: HashFamily,
        config: BatmapConfig,
        batmaps: list[Batmap],
        order: np.ndarray,
        universe_size: int,
    ) -> None:
        self.family = family
        self.config = config
        self._batmaps_sorted = batmaps          # in width-sorted order
        self.order = order                      # order[k] = original index of sorted slot k
        self.universe_size = universe_size
        self.rank = np.empty_like(order)
        self.rank[order] = np.arange(order.size)
        self._device_buffer: DeviceBuffer | None = None
        self._batch_counter: BatchPairCounter | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        sets: Sequence[np.ndarray],
        universe_size: int,
        *,
        config: BatmapConfig = DEFAULT_CONFIG,
        rng: RngLike = None,
        sort_by_size: bool = True,
        family: HashFamily | None = None,
    ) -> "BatmapCollection":
        """Build batmaps for every set in ``sets``.

        ``sets[i]`` is an array-like of element ids in ``[0, universe_size)``.
        """
        require_positive(universe_size, "universe_size")
        require(len(sets) > 0, "cannot build an empty collection")
        if family is None:
            shift = config.shift_for_universe(universe_size)
            family = HashFamily.create(universe_size, shift=shift, rng=rng)
        else:
            require(family.universe_size == universe_size,
                    "family universe size does not match universe_size")

        sizes = np.array([len(np.unique(np.asarray(s, dtype=np.int64))) for s in sets])
        order = np.argsort(sizes, kind="stable") if sort_by_size else np.arange(len(sets))

        batmaps: list[Batmap] = []
        for k in order.tolist():
            elements = np.unique(np.asarray(sets[k], dtype=np.int64))
            # Keep the packed-word path available even for tiny sets.
            r = max(4, config.range_for_size(int(elements.size), universe_size))
            placement = place_set(elements, family, r, config)
            batmaps.append(
                Batmap.from_placement(placement, family, config, set_size=int(elements.size))
            )
        return cls(family, config, batmaps, np.asarray(order, dtype=np.int64), universe_size)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._batmaps_sorted)

    def batmap(self, original_index: int) -> Batmap:
        """Batmap of the set with the given *original* index."""
        return self._batmaps_sorted[int(self.rank[original_index])]

    def batmap_sorted(self, sorted_index: int) -> Batmap:
        """Batmap at a width-sorted slot (device scheduling order)."""
        return self._batmaps_sorted[sorted_index]

    @property
    def batmaps_sorted(self) -> list[Batmap]:
        return list(self._batmaps_sorted)

    @property
    def r0(self) -> int:
        """Collection-wide block granularity: the smallest range present."""
        return min(b.r for b in self._batmaps_sorted)

    @property
    def memory_bytes(self) -> int:
        """Total compressed size of all batmaps (the device transfer size)."""
        return sum(b.memory_bytes for b in self._batmaps_sorted)

    def failed_insertions(self) -> dict[int, list[int]]:
        """Map ``element -> [original set indices]`` whose insertion of that element failed.

        In the frequent-pair-mining context the element is a transaction id
        ``b`` and the returned lists are the sets ``F_b`` of Section III-C.
        """
        failures: dict[int, list[int]] = {}
        for sorted_idx, bm in enumerate(self._batmaps_sorted):
            original = int(self.order[sorted_idx])
            for element in bm.failed:
                failures.setdefault(int(element), []).append(original)
        return failures

    # ------------------------------------------------------------------ #
    # Host-side pair counting (batch engine)
    # ------------------------------------------------------------------ #
    def has_batch_counter(self) -> bool:
        """Whether the batch engine has already been built for this collection.

        A planner feature (:class:`~repro.core.plan.PlanFeatures`): once the
        packed buffer has been gathered, even point queries are cheaper
        through the engine than through the per-pair reference.
        """
        return self._batch_counter is not None

    def batch_counter(self) -> BatchPairCounter:
        """The vectorised batch pair-counting engine for this collection (cached).

        Built once; every host-side counting query — :meth:`count_pair`,
        :meth:`count_all_pairs`, the boolean-matrix product and the mining
        pipeline's host compute mode — goes through it.
        """
        if self._batch_counter is None:
            self._batch_counter = BatchPairCounter(self)
        return self._batch_counter

    def count_pair(self, i: int, j: int) -> int:
        """Stored-copy intersection count of original sets ``i`` and ``j``.

        A point query stays O(one pair): it only goes through the batch
        engine once some bulk query has already built it (building the engine
        gathers the whole packed buffer, which a single pair never amortises;
        an existing engine also implies the word-aligned r0 >= 4 it validates).
        """
        if self._batch_counter is None:
            return count_common(self.batmap(i), self.batmap(j))
        return self._batch_counter.count_pair(i, j)

    def count_all_pairs(
        self,
        *,
        parallel=False,
        workers: int | None = None,
        compute: str | None = None,
    ) -> np.ndarray:
        """Dense ``n x n`` matrix of stored-copy intersection counts.

        Backend selection goes through the workload planner
        (:func:`~repro.core.plan.plan_counts`); all backends are
        bit-identical to looping :func:`~repro.core.intersection.count_common`
        over every pair.  The diagonal holds each set's stored element count.

        ``compute`` names a backend explicitly (``"auto"``, ``"host"``,
        ``"batch"`` or ``"parallel"``).  ``parallel`` is the older shorthand
        for ``compute="parallel"``: pass ``True`` to auto-select the worker
        count, or an integer (equivalently ``workers=``) to pin it; small
        collections still fall back to the serial batch engine.  With
        neither argument the serial engines are used (the batch engine when
        the layout is word-packable, the per-pair loop otherwise).
        """
        from repro.core.plan import plan_counts  # parallel sits above core

        require(compute in (None, "auto", "host", "batch", "parallel"),
                f"compute must be 'auto', 'host', 'batch' or 'parallel', got {compute!r}")
        if workers is None and parallel and not isinstance(parallel, bool):
            workers = int(parallel)
        byte_packable = self.r0 >= 4 and self.config.entry_storage_bits == 8
        requested = compute if compute is not None else (
            "parallel" if parallel else ("batch" if byte_packable else "host")
        )
        plan = plan_counts(self, requested=requested, workers=workers)
        if plan.backend == "parallel" and byte_packable:
            from repro.parallel.executor import ParallelPairCounter

            with ParallelPairCounter(self, workers=workers) as counter:
                return counter.count_all_pairs()
        if plan.backend == "host" or not byte_packable:
            return self._count_all_pairs_loop()
        return self.batch_counter().count_all_pairs()

    def _count_all_pairs_loop(self) -> np.ndarray:
        """Per-pair reference loop, kept for sub-word ranges and verification."""
        n = len(self)
        out = np.zeros((n, n), dtype=np.int64)
        for a in range(n):
            bm_a = self._batmaps_sorted[a]
            ia = int(self.order[a])
            out[ia, ia] = bm_a.stored_count
            for b in range(a + 1, n):
                ib = int(self.order[b])
                c = count_common(bm_a, self._batmaps_sorted[b])
                out[ia, ib] = c
                out[ib, ia] = c
        return out

    # ------------------------------------------------------------------ #
    # Device packing
    # ------------------------------------------------------------------ #
    def device_buffer(self) -> DeviceBuffer:
        """Pack every batmap into one flat word buffer (built once, cached).

        Each batmap is padded to a 16-word (64-byte) boundary so that the
        16-wide coalesced reads of the pair-count kernel start on an aligned
        segment — the alignment requirement the paper's best-practice guide
        [19] calls out.  The padding words are never read (folding uses the
        true width), they only shift the next batmap's offset.
        """
        if self._device_buffer is None:
            r0 = self.r0
            chunks = []
            widths = []
            offsets = []
            cursor = 0
            for bm in self._batmaps_sorted:
                words = pack_bytes_to_words(bm.device_array(r0))
                offsets.append(cursor)
                widths.append(words.size)
                padded_len = ((words.size + 15) // 16) * 16
                if padded_len != words.size:
                    words = np.concatenate(
                        [words, np.zeros(padded_len - words.size, dtype=np.uint32)]
                    )
                chunks.append(words)
                cursor += padded_len
            self._device_buffer = DeviceBuffer(
                words=np.concatenate(chunks),
                offsets=np.asarray(offsets, dtype=np.int64),
                widths=np.asarray(widths, dtype=np.int64),
                r0=r0,
            )
        return self._device_buffer
