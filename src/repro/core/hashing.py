"""Hash functions for the batmap layout (Section III-A of the paper).

The paper defines three permutations ``pi_t : {1..m} -> {1..m}`` and derives
the per-batmap hash functions

.. math::

    h_t^{(i)}(x) = |B_0| \\lfloor (\\pi_t(x) \\bmod r_i) / r_0 \\rfloor
                   + (\\pi_t(x) \\bmod r_0) + (t - 1) r_0

where ``r_i`` is the (power-of-two) hash range of batmap ``B_i`` and
``r_0`` the smallest range in the collection.  Two properties matter:

* **Range nesting** — because every ``r_i`` is a power of two,
  ``pi_t(x) mod r_i == (pi_t(x) mod r_j) mod r_i`` whenever ``r_i <= r_j``,
  so a position in a large batmap folds onto a unique position in a small one
  (this is what makes unequal-size comparisons a pure ``mod`` operation).
* **Determinism across sets** — all sets use the *same* permutations, only the
  range differs, so corresponding positions in two batmaps refer to the same
  candidate element.

Elements in this implementation are 0-based: ``x in {0, ..., m-1}``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import Protocol

import numpy as np

from repro.utils.bits import next_power_of_two
from repro.utils.rng import RngLike, make_rng
from repro.utils.validation import require, require_positive, require_power_of_two

__all__ = [
    "Permutation",
    "ArrayPermutation",
    "FeistelPermutation",
    "HashFamily",
    "ExtensibleHashFamily",
    "make_permutations",
    "save_family",
    "load_family",
]


class Permutation(Protocol):
    """A bijection on ``{0, ..., m-1}`` applied element-wise to integer arrays."""

    domain_size: int

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Return ``pi(x)`` for an array of element ids."""
        ...

    def invert(self, y: np.ndarray) -> np.ndarray:
        """Return ``pi^{-1}(y)``."""
        ...


@dataclass(frozen=True, eq=False)
class ArrayPermutation:
    """A permutation stored explicitly as a lookup table.

    Fast and exactly uniform; memory is ``O(m)`` per permutation, which is
    fine for the transaction counts used in the experiments (``m`` up to a
    few million).

    Equality is *structural* (same lookup table), not identity-based, so a
    permutation survives a pickle round-trip into a worker process and still
    compares equal to the original — batmaps built on both sides of the
    process boundary remain comparable.  Comparison goes through a cached
    content digest, so per-pair compatibility checks stay O(1) after the
    first comparison instead of re-scanning an O(m) table every time.
    """

    table: np.ndarray
    inverse: np.ndarray

    @cached_property
    def _fingerprint(self) -> bytes:
        return hashlib.sha256(self.table.tobytes()).digest()

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, ArrayPermutation):
            return NotImplemented
        if self.table is other.table:
            return True
        return (self.table.size == other.table.size
                and self._fingerprint == other._fingerprint)

    def __hash__(self) -> int:
        return hash((int(self.table.size), self._fingerprint))

    @property
    def domain_size(self) -> int:
        return int(self.table.size)

    @classmethod
    def random(cls, m: int, rng: RngLike = None) -> "ArrayPermutation":
        require_positive(m, "m")
        rng = make_rng(rng)
        table = rng.permutation(m).astype(np.int64)
        inverse = np.empty(m, dtype=np.int64)
        inverse[table] = np.arange(m, dtype=np.int64)
        return cls(table=table, inverse=inverse)

    def apply(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.int64)
        if x.size and (x.min() < 0 or x.max() >= self.domain_size):
            raise ValueError("element id out of range for permutation")
        return self.table[x]

    def invert(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=np.int64)
        if y.size and (y.min() < 0 or y.max() >= self.domain_size):
            raise ValueError("value out of range for permutation inverse")
        return self.inverse[y]


@dataclass(frozen=True)
class FeistelPermutation:
    """A keyed bijection on ``{0..m-1}`` via a Feistel network with cycle walking.

    Uses O(1) memory, so it scales to arbitrarily large universes.  The
    Feistel network operates on ``2k`` bits where ``4**k >= m`` is the
    smallest power-of-four cover of the domain; outputs that fall outside
    ``[0, m)`` are re-encrypted until they land inside (cycle walking), which
    preserves bijectivity on the restricted domain.
    """

    domain_size: int
    keys: tuple[int, ...]
    half_bits: int

    ROUNDS = 4
    _MASK32 = 0xFFFFFFFF

    @classmethod
    def random(cls, m: int, rng: RngLike = None) -> "FeistelPermutation":
        require_positive(m, "m")
        rng = make_rng(rng)
        # number of bits per Feistel half: cover m with an even bit count
        total_bits = max(2, next_power_of_two(m).bit_length() - 1)
        if total_bits % 2:
            total_bits += 1
        keys = tuple(int(rng.integers(1, 1 << 31)) for _ in range(cls.ROUNDS))
        return cls(domain_size=m, keys=keys, half_bits=total_bits // 2)

    def _round(self, value: np.ndarray, key: int) -> np.ndarray:
        # A cheap invertible-free mixing function (only used inside Feistel,
        # where invertibility of the round function is not required).
        v = ((value.astype(np.uint64) * np.uint64(0x9E3779B1) + np.uint64(key))
             & np.uint64(self._MASK32))
        v ^= v >> np.uint64(15)
        v = (v * np.uint64(0x85EBCA77)) & np.uint64(self._MASK32)
        v ^= v >> np.uint64(13)
        return v

    def _encrypt_once(self, x: np.ndarray) -> np.ndarray:
        half = np.uint64(self.half_bits)
        mask = np.uint64((1 << self.half_bits) - 1)
        left = (x >> half) & mask
        right = x & mask
        for key in self.keys:
            left, right = right, (left ^ (self._round(right, key) & mask))
        return (left << half) | right

    def _decrypt_once(self, y: np.ndarray) -> np.ndarray:
        half = np.uint64(self.half_bits)
        mask = np.uint64((1 << self.half_bits) - 1)
        left = (y >> half) & mask
        right = y & mask
        for key in reversed(self.keys):
            left, right = (right ^ (self._round(left, key) & mask)), left
        return (left << half) | right

    def _walk(self, x: np.ndarray, step) -> np.ndarray:
        out = step(x.astype(np.uint64))
        bad = out >= np.uint64(self.domain_size)
        # Cycle walking terminates because the map is a bijection on the
        # covering power-of-four domain, so every cycle re-enters [0, m).
        while np.any(bad):
            out[bad] = step(out[bad])
            bad = out >= np.uint64(self.domain_size)
        return out.astype(np.int64)

    def apply(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.int64)
        if x.size and (x.min() < 0 or x.max() >= self.domain_size):
            raise ValueError("element id out of range for permutation")
        if x.size == 0:
            return x.copy()
        return self._walk(x, self._encrypt_once)

    def invert(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=np.int64)
        if y.size and (y.min() < 0 or y.max() >= self.domain_size):
            raise ValueError("value out of range for permutation inverse")
        if y.size == 0:
            return y.copy()
        return self._walk(y, self._decrypt_once)


#: Universe size above which the explicit table permutation is replaced by Feistel.
_ARRAY_PERMUTATION_LIMIT = 1 << 22


def make_permutations(
    m: int, count: int = 3, rng: RngLike = None, *, force: str | None = None
) -> tuple[Permutation, ...]:
    """Create ``count`` independent permutations of ``{0..m-1}``.

    ``force`` may be ``"array"`` or ``"feistel"`` to pin the implementation
    (used in tests); by default small universes get exact table permutations
    and large universes get the O(1)-memory Feistel construction.
    """
    require_positive(m, "m")
    require_positive(count, "count")
    rng = make_rng(rng)
    perms: list[Permutation] = []
    for _ in range(count):
        kind = force or ("array" if m <= _ARRAY_PERMUTATION_LIMIT else "feistel")
        if kind == "array":
            perms.append(ArrayPermutation.random(m, rng))
        elif kind == "feistel":
            perms.append(FeistelPermutation.random(m, rng))
        else:
            raise ValueError(f"unknown permutation kind {force!r}")
    return tuple(perms)


@dataclass(frozen=True, eq=False)
class HashFamily:
    """The three shared permutations plus the layout arithmetic of Section III-A.

    A single ``HashFamily`` is shared by *all* batmaps in a collection; only
    the per-batmap range ``r_i`` varies.  Positions returned by
    :meth:`positions` are *within one hash table* (row-local, in ``[0, r)``);
    the interleaved device layout offsets of the paper's formula are produced
    by :meth:`device_positions`.

    Equality is *structural*: two families are equal iff they have the same
    universe, shift and permutations, even when one is a pickled copy of the
    other (e.g. shipped to a worker process for sharded serving).  The
    identity fast path keeps the common same-object comparison O(1).
    """

    universe_size: int
    permutations: tuple[Permutation, ...]
    shift: int

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, HashFamily):
            return NotImplemented
        return (
            self.universe_size == other.universe_size
            and self.shift == other.shift
            and self.permutations == other.permutations
        )

    def __hash__(self) -> int:
        return hash((self.universe_size, self.shift,
                     tuple(hash(p) for p in self.permutations)))

    def __post_init__(self) -> None:
        require_positive(self.universe_size, "universe_size")
        require(len(self.permutations) == 3, "HashFamily requires exactly 3 permutations")
        require(self.shift >= 0, "shift must be >= 0")
        for perm in self.permutations:
            require(perm.domain_size == self.universe_size,
                    "all permutations must share the universe size")

    @classmethod
    def create(
        cls,
        universe_size: int,
        *,
        shift: int = 0,
        rng: RngLike = None,
        force_permutation: str | None = None,
    ) -> "HashFamily":
        perms = make_permutations(universe_size, 3, rng, force=force_permutation)
        return cls(universe_size=universe_size, permutations=perms, shift=shift)

    # ------------------------------------------------------------------ #
    # Row-local positions and payloads
    # ------------------------------------------------------------------ #
    def permuted(self, table: int, elements: np.ndarray) -> np.ndarray:
        """Return ``pi_t(x)`` for table ``t`` (0-based) over an array of elements."""
        require(0 <= table < 3, f"table index must be 0, 1 or 2, got {table}")
        return self.permutations[table].apply(np.asarray(elements, dtype=np.int64))

    def positions(self, table: int, elements: np.ndarray, r: int) -> np.ndarray:
        """Row-local slot indices ``pi_t(x) mod r`` for hash range ``r`` (power of two)."""
        require_power_of_two(r, "r")
        return self.permuted(table, elements) & np.int64(r - 1)

    def payloads(self, table: int, elements: np.ndarray) -> np.ndarray:
        """Compressed payload stored for each element in table ``t``.

        The payload is ``(pi_t(x) >> shift) + 1`` so that 0 is reserved for
        empty slots (NULL).  With the shift chosen by
        :meth:`BatmapConfig.shift_for_universe` the result always fits in the
        configured payload width.
        """
        return (self.permuted(table, elements) >> np.int64(self.shift)) + 1

    def decode(self, table: int, payload: np.ndarray, position: np.ndarray, r: int) -> np.ndarray:
        """Recover element ids from (payload, row-local position) pairs.

        Only valid when ``r >= 2**shift`` (the compression floor), in which
        case the position determines the ``shift`` low-order bits of
        ``pi_t(x)`` exactly.
        """
        require_power_of_two(r, "r")
        require(r >= (1 << self.shift),
                f"decoding requires r >= 2**shift ({1 << self.shift}), got r={r}")
        payload = np.asarray(payload, dtype=np.int64)
        position = np.asarray(position, dtype=np.int64)
        high = (payload - 1) << np.int64(self.shift)
        low = position & np.int64((1 << self.shift) - 1)
        return self.permutations[table].invert(high | low)

    # ------------------------------------------------------------------ #
    # Device (interleaved) layout of Section III-A, Figure 4
    # ------------------------------------------------------------------ #
    @staticmethod
    def device_positions(row_positions: np.ndarray, table: int, r: int, r0: int) -> np.ndarray:
        """Map row-local positions to offsets in the interleaved 1-D device layout.

        ``h = 3*r0 * floor(p / r0) + (p mod r0) + t*r0`` where ``p`` is the
        row-local position (``pi_t(x) mod r``).  Folding a large batmap onto a
        smaller one is then simply ``h mod (3 * r_small)``.
        """
        require_power_of_two(r, "r")
        require_power_of_two(r0, "r0")
        require(r0 <= r, f"r0 ({r0}) must not exceed r ({r})")
        require(0 <= table < 3, f"table index must be 0, 1 or 2, got {table}")
        p = np.asarray(row_positions, dtype=np.int64)
        return 3 * r0 * (p // r0) + (p % r0) + table * r0

    @staticmethod
    def device_size(r: int, r0: int) -> int:
        """Length (in entries) of the interleaved device array for range ``r``."""
        require_power_of_two(r, "r")
        require_power_of_two(r0, "r0")
        require(r0 <= r, f"r0 ({r0}) must not exceed r ({r})")
        return 3 * r

    def max_payload(self) -> int:
        """Largest payload value this family can produce."""
        return ((self.universe_size - 1) >> self.shift) + 1

    @property
    def range_universe(self) -> int:
        """Universe used for hash-range floors.

        For the eager family this is just the universe; extensible families
        return their full :attr:`~ExtensibleHashFamily.capacity` so range
        floors stay stable as the universe grows.
        """
        return self.universe_size


@dataclass(frozen=True, eq=False)
class ExtensibleHashFamily(HashFamily):
    """A hash family whose universe can grow without re-placing anything.

    The eager :class:`HashFamily` materializes permutations of exactly the
    universe, so growing the universe means new permutations and a full
    rehash of every shard — E15's second known limit.  This variant instead
    fixes the permutation domain at a *capacity* chosen so the payload
    compression shift is the same for every universe up to it
    (``BatmapConfig.universe_capacity``), and derives each element's
    parameters lazily from the keyed Feistel permutations — O(1) resident
    memory, O(items touched) work, never O(universe).

    :meth:`grow` is then free: it only widens the admissible element range.
    Because the permutations and shift are untouched, every placement made
    before the growth is bit-identical to one made after — and to a
    from-scratch build at the grown universe with the same seed, since the
    capacity (and hence the derived keys) depends only on the shift plateau,
    not on the exact universe.

    Growth *beyond* the capacity is a genuine payload-encoding limit (the
    compression shift would have to change, invalidating every stored
    payload) and raises ``ValueError``.
    """

    capacity: int = 0

    def __post_init__(self) -> None:
        require_positive(self.universe_size, "universe_size")
        require_positive(self.capacity, "capacity")
        require(self.capacity >= self.universe_size,
                f"capacity ({self.capacity}) must cover the universe "
                f"({self.universe_size})")
        require(len(self.permutations) == 3, "HashFamily requires exactly 3 permutations")
        require(self.shift >= 0, "shift must be >= 0")
        for perm in self.permutations:
            require(perm.domain_size == self.capacity,
                    "extensible family permutations must span the capacity")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, HashFamily):
            return NotImplemented
        return (
            self.universe_size == other.universe_size
            and self.shift == other.shift
            and getattr(other, "capacity", other.universe_size) == self.capacity
            and self.permutations == other.permutations
        )

    def __hash__(self) -> int:
        return hash((self.universe_size, self.shift, self.capacity,
                     tuple(hash(p) for p in self.permutations)))

    @classmethod
    def create(  # type: ignore[override]
        cls,
        universe_size: int,
        *,
        capacity: int,
        shift: int = 0,
        rng: RngLike = None,
    ) -> "ExtensibleHashFamily":
        """Create a lazy family over ``{0..capacity-1}`` serving ``{0..universe_size-1}``.

        The permutations are always Feistel (O(1) memory); with the same
        ``rng`` seed and capacity the derived keys — and therefore every
        placement — are deterministic.
        """
        perms = make_permutations(capacity, 3, rng, force="feistel")
        return cls(universe_size=universe_size, permutations=perms,
                   shift=shift, capacity=capacity)

    def grow(self, new_universe_size: int) -> "ExtensibleHashFamily":
        """Return a family accepting ``{0..new_universe_size-1}``; placements unchanged."""
        require(new_universe_size >= self.universe_size,
                f"cannot shrink the universe ({self.universe_size} -> "
                f"{new_universe_size})")
        if new_universe_size > self.capacity:
            raise ValueError(
                f"universe {new_universe_size} exceeds the family capacity "
                f"{self.capacity}: the payload compression shift would change, "
                "invalidating every stored payload — rebuild the collection "
                "with a larger capacity")
        if new_universe_size == self.universe_size:
            return self
        return ExtensibleHashFamily(
            universe_size=new_universe_size, permutations=self.permutations,
            shift=self.shift, capacity=self.capacity)

    def max_payload(self) -> int:
        """Largest payload value this family can produce (capacity-stable)."""
        return ((self.capacity - 1) >> self.shift) + 1

    @property
    def range_universe(self) -> int:
        """Range floors derive from the capacity so they survive growth."""
        return self.capacity


# --------------------------------------------------------------------------- #
# Persistence (``.npz``, no pickling — families ship inside serving artifacts)
# --------------------------------------------------------------------------- #
def save_family(path, family: HashFamily) -> None:
    """Serialise a :class:`HashFamily` to an ``.npz`` archive.

    Array permutations store their lookup table (the inverse is recomputed on
    load); Feistel permutations store their keys and half width.  The format
    deliberately avoids pickling so spill artifacts stay inspectable and safe
    to load in a serving process.
    """
    arrays: dict[str, np.ndarray] = {
        "universe_size": np.int64(family.universe_size),
        "shift": np.int64(family.shift),
    }
    if isinstance(family, ExtensibleHashFamily):
        arrays["capacity"] = np.int64(family.capacity)
    kinds = []
    for t, perm in enumerate(family.permutations):
        if isinstance(perm, ArrayPermutation):
            kinds.append("array")
            arrays[f"table_{t}"] = perm.table
        elif isinstance(perm, FeistelPermutation):
            kinds.append("feistel")
            arrays[f"feistel_keys_{t}"] = np.asarray(perm.keys, dtype=np.int64)
            arrays[f"feistel_half_bits_{t}"] = np.int64(perm.half_bits)
        else:
            raise TypeError(
                f"cannot serialise permutation of type {type(perm).__name__}")
    arrays["kinds"] = np.array(kinds)
    np.savez(path, **arrays)


def load_family(path) -> HashFamily:
    """Load a :class:`HashFamily` saved by :func:`save_family`.

    The loaded family compares structurally equal to the original, so batmaps
    built before saving remain comparable with ones built after loading.
    """
    with np.load(path, allow_pickle=False) as data:
        universe_size = int(data["universe_size"])
        shift = int(data["shift"])
        capacity = int(data["capacity"]) if "capacity" in data else None
        domain = capacity if capacity is not None else universe_size
        perms: list[Permutation] = []
        for t, kind in enumerate(data["kinds"].tolist()):
            if kind == "array":
                table = np.asarray(data[f"table_{t}"], dtype=np.int64)
                inverse = np.empty(table.size, dtype=np.int64)
                inverse[table] = np.arange(table.size, dtype=np.int64)
                perms.append(ArrayPermutation(table=table, inverse=inverse))
            elif kind == "feistel":
                perms.append(FeistelPermutation(
                    domain_size=domain,
                    keys=tuple(int(k) for k in data[f"feistel_keys_{t}"]),
                    half_bits=int(data[f"feistel_half_bits_{t}"]),
                ))
            else:
                raise ValueError(f"unknown permutation kind {kind!r} in {path}")
    if capacity is not None:
        return ExtensibleHashFamily(universe_size=universe_size,
                                    permutations=tuple(perms), shift=shift,
                                    capacity=capacity)
    return HashFamily(universe_size=universe_size,
                      permutations=tuple(perms), shift=shift)
