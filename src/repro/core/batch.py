"""Vectorized batch pair counting over a packed :class:`BatmapCollection`.

The host-side reference path used to compute every intersection count with a
per-pair Python call (``count_common`` inside a double loop): one
``_check_compatible`` validation, one re-tiling of the smaller batmap and one
SWAR pass *per pair*.  For ``n`` sets that is ``O(n^2)`` interpreter overhead
dominating the actual bit work.

This module replaces that loop with a **batch engine** that operates directly
on the flat device buffer the collection already builds for the GPU
simulator:

* batmaps are grouped into *width classes* (same packed word width, i.e. the
  same hash range ``r``); each class is materialised as one dense
  ``(n_class, width)`` ``uint32`` matrix gathered from the device buffer;
* all pairs within a class — and all cross-class pairs, folded through the
  range-nesting property ``h mod r_small == (h mod r_large) mod r_small`` —
  are counted with *one broadcasted SWAR comparison per class pair*, chunked
  to bound peak memory;
* compatibility (shared hash family, compression floor) is validated **once**
  per engine, not once per pair.

Because the interleaved device layout of Figure 4 is block-aligned to the
collection granularity ``r0 >= 4`` (a power of two, so every table slice is
32-bit aligned), folding word position ``p`` of a wide batmap onto word
position ``p mod width_small`` of a narrow one matches exactly the per-row
``mod r_small`` folding of :func:`repro.core.intersection.count_common` —
the engine's counts are bit-identical to the per-pair reference.

The engine is the shared hot path for :meth:`BatmapCollection.count_all_pairs`,
the boolean-matrix workloads (:mod:`repro.matrix.multiply`) and the mining
pipeline's host compute mode (:mod:`repro.mining.pair_mining`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import LayoutError
from repro.core.intersection import require_compression_floor, require_same_family
from repro.utils.validation import require, require_positive

__all__ = ["WidthClass", "BatchPairCounter", "DEFAULT_BLOCK_WORDS"]

#: Upper bound on the number of packed words materialised by one broadcasted
#: comparison (the engine chunks the outer operand to stay below it).
DEFAULT_BLOCK_WORDS = 1 << 23

# SWAR constants for both lane widths.  The engine processes two packed
# 32-bit device words per operation (uint64 lanes) whenever the row width is
# even; byte order is preserved by the little-endian view, so the per-byte
# match condition is exactly the one of :mod:`repro.core.swar`.
_MSB = {np.dtype(np.uint32): np.uint32(0x80808080),
        np.dtype(np.uint64): np.uint64(0x8080808080808080)}
_LSB = {np.dtype(np.uint32): np.uint32(0x01010101),
        np.dtype(np.uint64): np.uint64(0x0101010101010101)}
_ONES = {np.dtype(np.uint32): np.uint32(0xFFFFFFFF),
         np.dtype(np.uint64): np.uint64(0xFFFFFFFFFFFFFFFF)}
_SEVEN = {np.dtype(np.uint32): np.uint32(7), np.dtype(np.uint64): np.uint64(7)}

#: Words per width chunk: each byte lane accumulates at most one match per
#: word, so chunks of <= 255 words cannot overflow a uint8 lane counter.
_LANE_CHUNK = 252


def _view_widest(a: np.ndarray) -> np.ndarray:
    """Reinterpret a ``(n, w)`` uint32 matrix as uint64 lanes when ``w`` is even."""
    if a.shape[1] % 2 == 0:
        return a.view(np.uint64)
    return a


def _match_count_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs match counts between the rows of ``a`` (n_a, w) and ``b`` (n_b, w).

    One fused SWAR pass per width chunk: compute the per-byte match mask
    (payloads equal, indicator OR set — the condition of
    :func:`repro.core.swar.match_bits`), turn the masked MSBs into per-byte
    0/1 lanes, sum the lanes along the width axis (safe from overflow within
    a chunk) and fold the byte lanes into the int64 result.
    """
    dt = a.dtype
    msb, lsb, ones, seven = _MSB[dt], _LSB[dt], _ONES[dt], _SEVEN[dt]
    n_a, w = a.shape
    n_b = b.shape[0]
    out = np.zeros((n_a, n_b), dtype=np.int64)
    for start in range(0, w, _LANE_CHUNK):
        stop = min(w, start + _LANE_CHUNK)
        x = a[:, None, start:stop]
        y = b[None, :, start:stop]
        p = ((x ^ y) | msb) - lsb
        matched = (p ^ ones) & ((x | y) & msb)
        # per-byte 0/1 lanes; lane sums stay < 256 within a chunk, so the
        # reduction cannot carry across byte lanes (dtype pinned: NumPy would
        # otherwise promote uint32 to uint64)
        lanes = np.add.reduce((matched >> seven) & lsb, axis=2, dtype=dt)
        out += lanes.view(np.uint8).reshape(n_a, n_b, dt.itemsize).sum(axis=2, dtype=np.int64)
    return out


def _match_count_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-aligned match counts: row ``k`` of ``a`` against row ``k`` of ``b``."""
    dt = a.dtype
    msb, lsb, ones, seven = _MSB[dt], _LSB[dt], _ONES[dt], _SEVEN[dt]
    n, w = a.shape
    out = np.zeros(n, dtype=np.int64)
    for start in range(0, w, _LANE_CHUNK):
        stop = min(w, start + _LANE_CHUNK)
        x = a[:, start:stop]
        y = b[:, start:stop]
        p = ((x ^ y) | msb) - lsb
        matched = (p ^ ones) & ((x | y) & msb)
        lanes = np.add.reduce((matched >> seven) & lsb, axis=1, dtype=dt)
        out += lanes.view(np.uint8).reshape(n, dt.itemsize).sum(axis=1, dtype=np.int64)
    return out


@dataclass(frozen=True, eq=False)
class WidthClass:
    """All batmaps of one packed width, gathered into a dense word matrix.

    ``eq=False``: the ndarray fields make the generated ``__eq__`` raise on
    ambiguous truth values; identity comparison is the meaningful one here.
    """

    width: int                  #: packed width in 32-bit words (3 * r / 4)
    sorted_indices: np.ndarray  #: sorted-order slots of the members, ascending
    words: np.ndarray           #: uint32 matrix of shape (n_members, width)

    def __len__(self) -> int:
        return int(self.sorted_indices.size)


class BatchPairCounter:
    """All-pairs / pairs-list / top-k intersection counts for one collection.

    The engine validates compatibility once, gathers the packed words once,
    and answers every subsequent query with broadcasted NumPy SWAR — no
    per-pair Python call.  Build it through
    :meth:`repro.core.collection.BatmapCollection.batch_counter`, which caches
    one instance per collection.
    """

    def __init__(self, collection, *, block_words: int = DEFAULT_BLOCK_WORDS) -> None:
        require_positive(block_words, "block_words")
        self.collection = collection
        self.block_words = int(block_words)
        self._validate(collection)

        buffer = collection.device_buffer()
        self._widths = np.asarray(buffer.widths, dtype=np.int64)
        self._counts_sorted: np.ndarray | None = None

        n = len(collection)
        self.classes: list[WidthClass] = []
        #: per sorted slot: index of its width class / its row inside the class
        self._class_of = np.empty(n, dtype=np.int64)
        self._row_of = np.empty(n, dtype=np.int64)
        for class_index, width in enumerate(np.unique(self._widths).tolist()):
            members = np.nonzero(self._widths == width)[0]
            gather = buffer.offsets[members][:, None] + np.arange(int(width))[None, :]
            self.classes.append(WidthClass(
                width=int(width),
                sorted_indices=members,
                words=buffer.words[gather],
            ))
            self._class_of[members] = class_index
            self._row_of[members] = np.arange(members.size)
        for small, large in zip(self.classes, self.classes[1:]):
            require(large.width % small.width == 0,
                    f"width {large.width} is not a multiple of width {small.width}; "
                    "ranges must be nested powers of two")

    # ------------------------------------------------------------------ #
    # Validation (once per engine, replacing the per-pair _check_compatible)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(collection) -> None:
        batmaps = collection.batmaps_sorted
        require(len(batmaps) > 0, "cannot build a batch counter for an empty collection")
        family = batmaps[0].family
        for bm in batmaps[1:]:
            require_same_family(family, bm.family)
        r0 = collection.r0
        require_compression_floor(r0, family.shift)
        if r0 < 4:
            raise LayoutError(
                f"batch counting requires word-aligned ranges (r0 >= 4), got r0 = {r0}"
            )

    # ------------------------------------------------------------------ #
    # Low-level blocked SWAR comparisons
    # ------------------------------------------------------------------ #
    def _equal_width_counts(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Pairwise match counts between two word matrices of the same width.

        Chunks the rows of ``a`` so no broadcast temporary exceeds the block
        budget, and widens to uint64 lanes (two device words per operation)
        whenever the width allows.
        """
        aw = _view_widest(a)
        bw = _view_widest(b)
        n_a, width = aw.shape
        n_b = bw.shape[0]
        out = np.empty((n_a, n_b), dtype=np.int64)
        rows = max(1, self.block_words // max(1, n_b * max(1, width)))
        for start in range(0, n_a, rows):
            stop = min(n_a, start + rows)
            out[start:stop] = _match_count_matrix(aw[start:stop], bw)
        return out

    def _folded_counts(self, large: np.ndarray, small: np.ndarray) -> np.ndarray:
        """Pairwise counts (rows of ``large`` x rows of ``small``), folding wide onto narrow.

        Word position ``p`` of a wide batmap compares against position
        ``p mod width_small`` of the narrow one, so the wide matrix is
        processed as ``reps`` contiguous blocks each compared against the
        whole narrow matrix.
        """
        width_small = small.shape[1]
        reps = large.shape[1] // width_small
        if reps == 1:
            return self._equal_width_counts(large, small)
        total = np.zeros((large.shape[0], small.shape[0]), dtype=np.int64)
        for block in range(reps):
            sl = slice(block * width_small, (block + 1) * width_small)
            total += self._equal_width_counts(large[:, sl], small)
        return total

    def _class_cross_counts(self, ci: WidthClass, cj: WidthClass) -> np.ndarray:
        """Counts for every (member of ``ci``) x (member of ``cj``) pair."""
        if ci.width >= cj.width:
            return self._folded_counts(ci.words, cj.words)
        return self._folded_counts(cj.words, ci.words).T

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def counts_sorted(self) -> np.ndarray:
        """Dense ``n x n`` count matrix in width-sorted (device) order, cached.

        The diagonal needs no special-casing: comparing a batmap with itself
        matches exactly the slots whose indicator bit is set, one per stored
        element, i.e. :attr:`Batmap.stored_count`.
        """
        if self._counts_sorted is None:
            n = len(self.collection)
            out = np.zeros((n, n), dtype=np.int64)
            for i, ci in enumerate(self.classes):
                block = self._equal_width_counts(ci.words, ci.words)
                out[np.ix_(ci.sorted_indices, ci.sorted_indices)] = block
                for cj in self.classes[i + 1:]:
                    cross = self._folded_counts(cj.words, ci.words)  # (n_j, n_i)
                    out[np.ix_(cj.sorted_indices, ci.sorted_indices)] = cross
                    out[np.ix_(ci.sorted_indices, cj.sorted_indices)] = cross.T
            self._counts_sorted = out
        return self._counts_sorted

    def count_all_pairs(self) -> np.ndarray:
        """Dense ``n x n`` count matrix indexed by *original* set indices."""
        order = self.collection.order
        out = np.empty_like(self.counts_sorted())
        out[np.ix_(order, order)] = self.counts_sorted()
        return out

    def count_pairs(self, pairs) -> np.ndarray:
        """Counts for an explicit list of ``(i, j)`` original-index pairs.

        Pairs are grouped by their (width, width) class combination so each
        group is answered with one vectorised folded comparison; the result
        keeps the input order.
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        require(pairs.ndim == 2 and pairs.shape[1] == 2,
                f"pairs must have shape (k, 2), got {pairs.shape}")
        if pairs.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        rank = self.collection.rank
        a = rank[pairs[:, 0]]
        b = rank[pairs[:, 1]]
        # orient every pair as (wide, narrow)
        swap = self._widths[a] < self._widths[b]
        wide = np.where(swap, b, a)
        narrow = np.where(swap, a, b)
        out = np.empty(pairs.shape[0], dtype=np.int64)
        combos = np.stack([self._class_of[wide], self._class_of[narrow]], axis=1)
        for ci_idx, cj_idx in np.unique(combos, axis=0).tolist():
            mask = (combos[:, 0] == ci_idx) & (combos[:, 1] == cj_idx)
            ci, cj = self.classes[ci_idx], self.classes[cj_idx]
            large = ci.words[self._row_of[wide[mask]]]
            small = cj.words[self._row_of[narrow[mask]]]
            width_small = cj.width
            reps = ci.width // width_small
            acc = np.zeros(int(mask.sum()), dtype=np.int64)
            small_w = _view_widest(small)
            for block in range(reps):
                sl = slice(block * width_small, (block + 1) * width_small)
                acc += _match_count_rows(_view_widest(large[:, sl]), small_w)
            out[mask] = acc
        return out

    def count_pair(self, i: int, j: int) -> int:
        """Stored-copy intersection count of original sets ``i`` and ``j``."""
        return int(self.count_pairs(np.array([[i, j]], dtype=np.int64))[0])

    def count_cross(self, rows, cols) -> np.ndarray:
        """Rectangular count matrix between two lists of original indices.

        This is the boolean-matrix-product shape: entry ``(p, q)`` is the
        intersection count of original sets ``rows[p]`` and ``cols[q]``.
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        rank = self.collection.rank
        row_slots = rank[rows]
        col_slots = rank[cols]
        out = np.zeros((rows.size, cols.size), dtype=np.int64)
        row_classes = np.unique(self._class_of[row_slots]) if rows.size else []
        col_classes = np.unique(self._class_of[col_slots]) if cols.size else []
        for ci_idx in np.asarray(row_classes).tolist():
            row_mask = self._class_of[row_slots] == ci_idx
            ci = self.classes[ci_idx]
            a = ci.words[self._row_of[row_slots[row_mask]]]
            for cj_idx in np.asarray(col_classes).tolist():
                col_mask = self._class_of[col_slots] == cj_idx
                cj = self.classes[cj_idx]
                b = cj.words[self._row_of[col_slots[col_mask]]]
                if ci.width >= cj.width:
                    block = self._folded_counts(a, b)
                else:
                    block = self._folded_counts(b, a).T
                out[np.ix_(np.nonzero(row_mask)[0], np.nonzero(col_mask)[0])] = block
        return out

    def top_k(self, k: int) -> list[tuple[tuple[int, int], int]]:
        """The ``k`` off-diagonal pairs with the largest counts.

        Returns ``[((i, j), count), ...]`` with ``i < j`` in original indices,
        descending by count with ties broken by the index pair (the same
        ranking convention as :meth:`repro.mining.support.PairSupports.top_k`).
        """
        require_positive(k, "k")
        counts = self.count_all_pairs()
        n = counts.shape[0]
        iu, ju = np.triu_indices(n, 1)
        values = counts[iu, ju]
        k = min(k, values.size)
        if k == 0:
            return []
        # partial-select then exact-sort only the selected candidates
        candidate = np.argpartition(values, -k)[-k:]
        order = np.lexsort((ju[candidate], iu[candidate], -values[candidate]))
        ranked = candidate[order]
        return [((int(iu[idx]), int(ju[idx])), int(values[idx])) for idx in ranked]
