"""Vectorized batch pair counting over a packed :class:`BatmapCollection`.

The host-side reference path used to compute every intersection count with a
per-pair Python call (``count_common`` inside a double loop): one
``_check_compatible`` validation, one re-tiling of the smaller batmap and one
SWAR pass *per pair*.  For ``n`` sets that is ``O(n^2)`` interpreter overhead
dominating the actual bit work.

This module replaces that loop with a **batch engine** that operates directly
on the flat device buffer the collection already builds for the GPU
simulator:

* batmaps are grouped into *width classes* (same packed word width, i.e. the
  same hash range ``r``); each class is materialised as one dense
  ``(n_class, width)`` ``uint32`` matrix gathered from the device buffer;
* all pairs within a class — and all cross-class pairs, folded through the
  range-nesting property ``h mod r_small == (h mod r_large) mod r_small`` —
  are counted with *one broadcasted SWAR comparison per class pair*, chunked
  to bound peak memory;
* compatibility (shared hash family, compression floor) is validated **once**
  per engine, not once per pair.

Because the interleaved device layout of Figure 4 is block-aligned to the
collection granularity ``r0 >= 4`` (a power of two, so every table slice is
32-bit aligned), folding word position ``p`` of a wide batmap onto word
position ``p mod width_small`` of a narrow one matches exactly the per-row
``mod r_small`` folding of :func:`repro.core.intersection.count_common` —
the engine's counts are bit-identical to the per-pair reference.

The module is split into two layers:

* :class:`WidthClassIndex` — the pure *layout-level* engine.  It knows only
  the flat ``uint32`` word buffer plus per-slot offsets and widths; every
  query is expressed in width-sorted **slot** indices.  Because it needs no
  :class:`Batmap` objects, hash family or original-index mapping, the
  multiprocess executor (:mod:`repro.parallel.executor`) can rebuild one
  inside each worker over a shared-memory view of the same buffer.
* :class:`BatchPairCounter` — the collection-level wrapper: validates
  compatibility once, owns the original-index <-> slot mapping and the
  cached all-pairs matrix.

The engine is the shared hot path for :meth:`BatmapCollection.count_all_pairs`,
the boolean-matrix workloads (:mod:`repro.matrix.multiply`), the mining
pipeline's host compute mode (:mod:`repro.mining.pair_mining`) and the
per-tile work of the multiprocess executor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import LayoutError
from repro.core.intersection import require_compression_floor, require_same_family
from repro.core.results import (
    DenseCountResult,
    SparseAccumulator,
    TopKAccumulator,
)
from repro.utils.validation import require, require_positive

__all__ = [
    "WidthClass",
    "WidthClassIndex",
    "BatchPairCounter",
    "DEFAULT_BLOCK_WORDS",
    "SPARSE_TILE_ENTRIES",
    "sparse_all_pairs",
    "sparse_cross",
    "width_slot_bounds",
]

#: Upper bound on the number of packed words materialised by one broadcasted
#: comparison (the engine chunks the outer operand to stay below it).  Sized
#: for cache residency, not allocator limits: 2**17 words keep each SWAR
#: temporary around 1 MB, which on the E12 instance counts ~10x faster than
#: the 2**23 budget this started with (25 MB temporaries thrash the LLC, and
#: pathologically so when several executor workers compete for it).
DEFAULT_BLOCK_WORDS = 1 << 17

# SWAR constants for both lane widths.  The engine processes two packed
# 32-bit device words per operation (uint64 lanes) whenever the row width is
# even; byte order is preserved by the little-endian view, so the per-byte
# match condition is exactly the one of :mod:`repro.core.swar`.
_MSB = {np.dtype(np.uint32): np.uint32(0x80808080),
        np.dtype(np.uint64): np.uint64(0x8080808080808080)}
_LSB = {np.dtype(np.uint32): np.uint32(0x01010101),
        np.dtype(np.uint64): np.uint64(0x0101010101010101)}
_ONES = {np.dtype(np.uint32): np.uint32(0xFFFFFFFF),
         np.dtype(np.uint64): np.uint64(0xFFFFFFFFFFFFFFFF)}
_SEVEN = {np.dtype(np.uint32): np.uint32(7), np.dtype(np.uint64): np.uint64(7)}

#: Words per width chunk: each byte lane accumulates at most one match per
#: word, so chunks of <= 255 words cannot overflow a uint8 lane counter.
_LANE_CHUNK = 252


def _view_widest(a: np.ndarray) -> np.ndarray:
    """Reinterpret a ``(n, w)`` uint32 matrix as uint64 lanes when ``w`` is even."""
    if a.shape[1] % 2 == 0:
        return a.view(np.uint64)
    return a


def _match_count_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs match counts between the rows of ``a`` (n_a, w) and ``b`` (n_b, w).

    One fused SWAR pass per width chunk: compute the per-byte match mask
    (payloads equal, indicator OR set — the condition of
    :func:`repro.core.swar.match_bits`), turn the masked MSBs into per-byte
    0/1 lanes, sum the lanes along the width axis (safe from overflow within
    a chunk) and fold the byte lanes into the int64 result.
    """
    dt = a.dtype
    msb, lsb, ones, seven = _MSB[dt], _LSB[dt], _ONES[dt], _SEVEN[dt]
    n_a, w = a.shape
    n_b = b.shape[0]
    out = np.zeros((n_a, n_b), dtype=np.int64)
    for start in range(0, w, _LANE_CHUNK):
        stop = min(w, start + _LANE_CHUNK)
        x = a[:, None, start:stop]
        y = b[None, :, start:stop]
        p = ((x ^ y) | msb) - lsb
        matched = (p ^ ones) & ((x | y) & msb)
        # per-byte 0/1 lanes; lane sums stay < 256 within a chunk, so the
        # reduction cannot carry across byte lanes (dtype pinned: NumPy would
        # otherwise promote uint32 to uint64)
        lanes = np.add.reduce((matched >> seven) & lsb, axis=2, dtype=dt)
        out += lanes.view(np.uint8).reshape(n_a, n_b, dt.itemsize).sum(axis=2, dtype=np.int64)
    return out


def _match_count_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-aligned match counts: row ``k`` of ``a`` against row ``k`` of ``b``."""
    dt = a.dtype
    msb, lsb, ones, seven = _MSB[dt], _LSB[dt], _ONES[dt], _SEVEN[dt]
    n, w = a.shape
    out = np.zeros(n, dtype=np.int64)
    for start in range(0, w, _LANE_CHUNK):
        stop = min(w, start + _LANE_CHUNK)
        x = a[:, start:stop]
        y = b[:, start:stop]
        p = ((x ^ y) | msb) - lsb
        matched = (p ^ ones) & ((x | y) & msb)
        lanes = np.add.reduce((matched >> seven) & lsb, axis=1, dtype=dt)
        out += lanes.view(np.uint8).reshape(n, dt.itemsize).sum(axis=1, dtype=np.int64)
    return out


@dataclass(frozen=True, eq=False)
class WidthClass:
    """All batmaps of one packed width, gathered into a dense word matrix.

    ``eq=False``: the ndarray fields make the generated ``__eq__`` raise on
    ambiguous truth values; identity comparison is the meaningful one here.
    """

    width: int                  #: packed width in 32-bit words (3 * r / 4)
    sorted_indices: np.ndarray  #: sorted-order slots of the members, ascending
    words: np.ndarray           #: uint32 matrix of shape (n_members, width)

    def __len__(self) -> int:
        return int(self.sorted_indices.size)


class WidthClassIndex:
    """Width-class pair-counting engine over a flat packed word buffer.

    The layout-level half of the batch engine: it is built from the three
    arrays of a :class:`~repro.core.collection.DeviceBuffer` (``words``,
    ``offsets``, ``widths``) and answers counting queries in width-sorted
    *slot* indices.  It never touches :class:`Batmap` objects, so it can be
    reconstructed inside a worker process over a zero-copy
    ``multiprocessing.shared_memory`` view of the very same words array —
    which is how :mod:`repro.parallel.executor` distributes tiles.

    Dense per-class matrices are materialised lazily: whole-class queries
    (:meth:`all_pairs`) gather and cache them, while tile-shaped queries
    (:meth:`cross_slots`, :meth:`pairwise_slots`) gather only the rows they
    need — a worker that processes a few tiles never copies the full buffer.
    """

    def __init__(
        self,
        words: np.ndarray,
        offsets: np.ndarray,
        widths: np.ndarray,
        *,
        block_words: int = DEFAULT_BLOCK_WORDS,
    ) -> None:
        require_positive(block_words, "block_words")
        self.words = words
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.widths = np.asarray(widths, dtype=np.int64)
        self.block_words = int(block_words)
        self.n_slots = int(self.offsets.size)
        require(self.n_slots > 0, "cannot index an empty device buffer")
        require(self.widths.size == self.n_slots,
                "offsets and widths must have the same length")

        self.class_widths = np.unique(self.widths)      # ascending
        #: per sorted slot: index of its width class / its row inside the class
        self.class_of = np.empty(self.n_slots, dtype=np.int64)
        self.row_of = np.empty(self.n_slots, dtype=np.int64)
        self.members: list[np.ndarray] = []
        for class_index, width in enumerate(self.class_widths.tolist()):
            slots = np.nonzero(self.widths == width)[0]
            self.members.append(slots)
            self.class_of[slots] = class_index
            self.row_of[slots] = np.arange(slots.size)
        for small, large in zip(self.class_widths[:-1], self.class_widths[1:]):
            require(int(large) % int(small) == 0,
                    f"width {int(large)} is not a multiple of width {int(small)}; "
                    "ranges must be nested powers of two")
        self._class_words: list = [None] * len(self.members)

    @property
    def n_classes(self) -> int:
        return len(self.members)

    # ------------------------------------------------------------------ #
    # Gathering
    # ------------------------------------------------------------------ #
    def class_words(self, class_index: int) -> np.ndarray:
        """Dense ``(n_members, width)`` matrix of one width class (cached)."""
        if self._class_words[class_index] is None:
            self._class_words[class_index] = self._gather(self.members[class_index])
        return self._class_words[class_index]

    def width_class(self, class_index: int) -> WidthClass:
        return WidthClass(
            width=int(self.class_widths[class_index]),
            sorted_indices=self.members[class_index],
            words=self.class_words(class_index),
        )

    def _gather(self, slots: np.ndarray) -> np.ndarray:
        """Word matrix for slots that all share one width (direct buffer gather)."""
        width = int(self.widths[slots[0]]) if slots.size else 0
        gather = self.offsets[slots][:, None] + np.arange(width)[None, :]
        return self.words[gather]

    def _rows(self, slots: np.ndarray, class_index: int) -> np.ndarray:
        """Rows for same-class slots; reuses the class cache when it exists."""
        cached = self._class_words[class_index]
        if cached is not None:
            return cached[self.row_of[slots]]
        return self._gather(slots)

    # ------------------------------------------------------------------ #
    # Low-level blocked SWAR comparisons
    # ------------------------------------------------------------------ #
    def _equal_width_counts(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Pairwise match counts between two word matrices of the same width.

        Chunks the rows of ``a`` so no broadcast temporary exceeds the block
        budget, and widens to uint64 lanes (two device words per operation)
        whenever the width allows.
        """
        aw = _view_widest(a)
        bw = _view_widest(b)
        n_a, width = aw.shape
        n_b = bw.shape[0]
        out = np.empty((n_a, n_b), dtype=np.int64)
        rows = max(1, self.block_words // max(1, n_b * max(1, width)))
        for start in range(0, n_a, rows):
            stop = min(n_a, start + rows)
            out[start:stop] = _match_count_matrix(aw[start:stop], bw)
        return out

    def _folded_counts(self, large: np.ndarray, small: np.ndarray) -> np.ndarray:
        """Pairwise counts (rows of ``large`` x rows of ``small``), folding wide onto narrow.

        Word position ``p`` of a wide batmap compares against position
        ``p mod width_small`` of the narrow one, so the wide matrix is
        processed as ``reps`` contiguous blocks each compared against the
        whole narrow matrix.
        """
        width_small = small.shape[1]
        reps = large.shape[1] // width_small
        if reps == 1:
            return self._equal_width_counts(large, small)
        total = np.zeros((large.shape[0], small.shape[0]), dtype=np.int64)
        for block in range(reps):
            sl = slice(block * width_small, (block + 1) * width_small)
            total += self._equal_width_counts(large[:, sl], small)
        return total

    # ------------------------------------------------------------------ #
    # Slot-level queries
    # ------------------------------------------------------------------ #
    def all_pairs(self) -> np.ndarray:
        """Dense ``n x n`` count matrix in width-sorted (slot) order.

        The diagonal needs no special-casing: comparing a batmap with itself
        matches exactly the slots whose indicator bit is set, one per stored
        element, i.e. :attr:`Batmap.stored_count`.
        """
        n = self.n_slots
        out = np.zeros((n, n), dtype=np.int64)
        for i in range(self.n_classes):
            words_i = self.class_words(i)
            slots_i = self.members[i]
            out[np.ix_(slots_i, slots_i)] = self._equal_width_counts(words_i, words_i)
            for j in range(i + 1, self.n_classes):
                cross = self._folded_counts(self.class_words(j), words_i)  # (n_j, n_i)
                slots_j = self.members[j]
                out[np.ix_(slots_j, slots_i)] = cross
                out[np.ix_(slots_i, slots_j)] = cross.T
        return out

    def cross_slots(self, row_slots, col_slots) -> np.ndarray:
        """Rectangular count matrix between two lists of width-sorted slots."""
        row_slots = np.asarray(row_slots, dtype=np.int64).ravel()
        col_slots = np.asarray(col_slots, dtype=np.int64).ravel()
        out = np.zeros((row_slots.size, col_slots.size), dtype=np.int64)
        if row_slots.size == 0 or col_slots.size == 0:
            return out
        for ci_idx in np.unique(self.class_of[row_slots]).tolist():
            row_mask = self.class_of[row_slots] == ci_idx
            a = self._rows(row_slots[row_mask], ci_idx)
            for cj_idx in np.unique(self.class_of[col_slots]).tolist():
                col_mask = self.class_of[col_slots] == cj_idx
                b = self._rows(col_slots[col_mask], cj_idx)
                if a.shape[1] >= b.shape[1]:
                    block = self._folded_counts(a, b)
                else:
                    block = self._folded_counts(b, a).T
                out[np.ix_(np.nonzero(row_mask)[0], np.nonzero(col_mask)[0])] = block
        return out

    def cross_index(self, other: "WidthClassIndex", row_slots=None, col_slots=None) -> np.ndarray:
        """Rectangular counts: rows of *this* buffer against columns of *another*.

        The cross-shard primitive of the out-of-core pipeline
        (:mod:`repro.core.sharded`): two collections spilled as separate
        packed buffers are compared without ever concatenating them — rows
        are gathered from each side's own (possibly memory-mapped) words.
        Correctness requires both buffers to be interleaved with the *same*
        block granularity ``r0`` (the spill format pins a collection-wide
        ``r0`` for exactly this reason) and every pair of widths to nest;
        the nesting is checked here, the shared ``r0`` is the caller's
        contract.  With ``other is self`` this degenerates to
        :meth:`cross_slots`.
        """
        row_slots = (np.arange(self.n_slots) if row_slots is None
                     else np.asarray(row_slots, dtype=np.int64).ravel())
        col_slots = (np.arange(other.n_slots) if col_slots is None
                     else np.asarray(col_slots, dtype=np.int64).ravel())
        out = np.zeros((row_slots.size, col_slots.size), dtype=np.int64)
        if row_slots.size == 0 or col_slots.size == 0:
            return out
        merged = np.unique(np.concatenate([self.class_widths, other.class_widths]))
        for small, large in zip(merged[:-1], merged[1:]):
            require(int(large) % int(small) == 0,
                    f"cross-buffer widths {int(large)} and {int(small)} do not nest; "
                    "both shards must be packed from the same nested range family")
        for ci_idx in np.unique(self.class_of[row_slots]).tolist():
            row_mask = self.class_of[row_slots] == ci_idx
            a = self._rows(row_slots[row_mask], ci_idx)
            for cj_idx in np.unique(other.class_of[col_slots]).tolist():
                col_mask = other.class_of[col_slots] == cj_idx
                b = other._rows(col_slots[col_mask], cj_idx)
                if a.shape[1] >= b.shape[1]:
                    block = self._folded_counts(a, b)
                else:
                    block = self._folded_counts(b, a).T
                out[np.ix_(np.nonzero(row_mask)[0], np.nonzero(col_mask)[0])] = block
        return out

    def pairwise_slots(self, a_slots, b_slots) -> np.ndarray:
        """Aligned counts: slot ``a_slots[k]`` intersected with ``b_slots[k]``.

        Pairs are grouped by their (width, width) class combination so each
        group is answered with one vectorised folded comparison; the result
        keeps the input order.
        """
        a_slots = np.asarray(a_slots, dtype=np.int64).ravel()
        b_slots = np.asarray(b_slots, dtype=np.int64).ravel()
        require(a_slots.size == b_slots.size,
                "pairwise_slots operands must have the same length")
        out = np.empty(a_slots.size, dtype=np.int64)
        if a_slots.size == 0:
            return out
        # orient every pair as (wide, narrow)
        swap = self.widths[a_slots] < self.widths[b_slots]
        wide = np.where(swap, b_slots, a_slots)
        narrow = np.where(swap, a_slots, b_slots)
        combos = np.stack([self.class_of[wide], self.class_of[narrow]], axis=1)
        for ci_idx, cj_idx in np.unique(combos, axis=0).tolist():
            mask = (combos[:, 0] == ci_idx) & (combos[:, 1] == cj_idx)
            large = self._rows(wide[mask], ci_idx)
            small = self._rows(narrow[mask], cj_idx)
            width_small = int(self.class_widths[cj_idx])
            reps = int(self.class_widths[ci_idx]) // width_small
            acc = np.zeros(int(mask.sum()), dtype=np.int64)
            small_w = _view_widest(small)
            for block in range(reps):
                sl = slice(block * width_small, (block + 1) * width_small)
                acc += _match_count_rows(_view_widest(large[:, sl]), small_w)
            out[mask] = acc
        return out

    def pairwise_index(self, other: "WidthClassIndex", a_slots, b_slots) -> np.ndarray:
        """Aligned cross-buffer counts: *this* slot ``a_slots[k]`` vs ``other``'s ``b_slots[k]``.

        The pairs-list counterpart of :meth:`cross_index`: each requested pair
        straddles two packed buffers (e.g. two spilled shards), and pairs are
        grouped by their (width, width) class combination so every group runs
        as one vectorised row-aligned fold instead of a dense rectangle.  As
        with :meth:`cross_index`, both buffers must be interleaved at the same
        granularity ``r0``; width nesting is checked here.  With
        ``other is self`` this matches :meth:`pairwise_slots` exactly.
        """
        a_slots = np.asarray(a_slots, dtype=np.int64).ravel()
        b_slots = np.asarray(b_slots, dtype=np.int64).ravel()
        require(a_slots.size == b_slots.size,
                "pairwise_index operands must have the same length")
        out = np.empty(a_slots.size, dtype=np.int64)
        if a_slots.size == 0:
            return out
        merged = np.unique(np.concatenate([self.class_widths, other.class_widths]))
        for small, large in zip(merged[:-1], merged[1:]):
            require(int(large) % int(small) == 0,
                    f"cross-buffer widths {int(large)} and {int(small)} do not nest; "
                    "both shards must be packed from the same nested range family")
        combos = np.stack([self.class_of[a_slots], other.class_of[b_slots]], axis=1)
        for ci_idx, cj_idx in np.unique(combos, axis=0).tolist():
            mask = (combos[:, 0] == ci_idx) & (combos[:, 1] == cj_idx)
            a = self._rows(a_slots[mask], ci_idx)
            b = other._rows(b_slots[mask], cj_idx)
            width_a = int(self.class_widths[ci_idx])
            width_b = int(other.class_widths[cj_idx])
            if width_a >= width_b:
                wide, narrow, width_small = a, b, width_b
            else:
                wide, narrow, width_small = b, a, width_a
            reps = max(width_a, width_b) // width_small
            acc = np.zeros(int(mask.sum()), dtype=np.int64)
            narrow_w = _view_widest(narrow)
            for block in range(reps):
                sl = slice(block * width_small, (block + 1) * width_small)
                acc += _match_count_rows(_view_widest(wide[:, sl]), narrow_w)
            out[mask] = acc
        return out


#: Upper bound on the entries of one sparse-mode count tile (the dense
#: ``(rows, cols)`` int64 block that exists only transiently between the
#: SWAR fold and the nonzero extraction).  2**20 entries keep each
#: temporary at 8 MB — small enough that the sparse path's peak is governed
#: by the stored nonzeros, not by tile scratch.
SPARSE_TILE_ENTRIES = 1 << 20


def width_slot_bounds(widths, failed_per_slot=None) -> np.ndarray:
    """Per-slot count upper bounds derived from packed row widths alone.

    A row of ``w`` words holds ``4 * w = 3r`` byte entries, and every stored
    element occupies two cuckoo copies, so at most ``2 * w`` elements are
    stored; adding the per-set failed-insertion count bounds the *repaired*
    set size as well.  Exact set sizes (when the caller knows them — the
    miner's item supports, a live collection's ``Batmap.set_size``) give a
    tighter bound; this is the fallback for mmap'd spilled shards where
    only the layout is resident.
    """
    bounds = 2 * np.asarray(widths, dtype=np.int64)
    if failed_per_slot is not None:
        bounds = bounds + np.asarray(failed_per_slot, dtype=np.int64)
    return bounds


def sparse_all_pairs(
    index: WidthClassIndex,
    *,
    consume,
    bounds=None,
    threshold=None,
    tile_entries: int = SPARSE_TILE_ENTRIES,
) -> dict:
    """All-pairs counting as a stream of pruned tiles instead of one matrix.

    Walks the same class-pair structure as :meth:`WidthClassIndex.all_pairs`
    but chunks each class pair into row tiles of at most ``tile_entries``
    entries and hands every *computed* tile to ``consume(rows, cols, block)``
    (slot-space axes) instead of scattering into a preallocated ``n x n``
    result.  Before any SWAR work, each tile's count upper bound —
    ``min(max(bounds[rows]), max(bounds[cols]))`` — is tested against the
    caller's running ``threshold()``; tiles strictly below it are skipped
    entirely.  Same-class tiles are pre-masked to the slot-space upper
    triangle so each unordered pair reaches ``consume`` exactly once
    (diagonal self-counts included).

    Returns pruning telemetry: ``{"tiles_total": ..., "tiles_skipped": ...}``.
    """
    require_positive(tile_entries, "tile_entries")
    thr = threshold if threshold is not None else (lambda: 0)
    if bounds is not None:
        bounds = np.asarray(bounds, dtype=np.int64)
    stats = {"tiles_total": 0, "tiles_skipped": 0}
    for ci in range(index.n_classes):
        cols = index.members[ci]
        b = index.class_words(ci)
        col_bound = int(bounds[cols].max()) if bounds is not None else None
        for cj in range(ci, index.n_classes):
            rows_all = index.members[cj]
            chunk = max(1, tile_entries // max(1, cols.size))
            for start in range(0, rows_all.size, chunk):
                rows = rows_all[start:start + chunk]
                stats["tiles_total"] += 1
                floor = thr()
                if floor > 0 and bounds is not None:
                    if min(int(bounds[rows].max()), col_bound) < floor:
                        stats["tiles_skipped"] += 1
                        continue
                a = index._rows(rows, cj)
                block = index._folded_counts(a, b)
                if ci == cj:
                    block = np.where(rows[:, None] <= cols[None, :], block, 0)
                consume(rows, cols, block)
    return stats


def sparse_cross(
    index: WidthClassIndex,
    other: WidthClassIndex,
    *,
    consume,
    row_slots=None,
    col_slots=None,
    row_bounds=None,
    col_bounds=None,
    threshold=None,
    tile_entries: int = SPARSE_TILE_ENTRIES,
) -> dict:
    """Rectangular counting as a stream of pruned tiles (cross-buffer safe).

    The sparse counterpart of :meth:`WidthClassIndex.cross_index`: rows are
    gathered from ``index``, columns from ``other`` (which may be ``index``
    itself), grouped by width-class pair, chunked to ``tile_entries`` and
    pruned against ``threshold()`` exactly as :func:`sparse_all_pairs` does.
    ``consume(rows, cols, block)`` receives *slot ids* on each side — every
    ordered (row, col) pair exactly once, no triangle masking — so the
    caller owns the slot-to-global mapping and any symmetry canonicalisation.
    """
    require_positive(tile_entries, "tile_entries")
    thr = threshold if threshold is not None else (lambda: 0)
    row_slots = (np.arange(index.n_slots) if row_slots is None
                 else np.asarray(row_slots, dtype=np.int64).ravel())
    col_slots = (np.arange(other.n_slots) if col_slots is None
                 else np.asarray(col_slots, dtype=np.int64).ravel())
    stats = {"tiles_total": 0, "tiles_skipped": 0}
    if row_slots.size == 0 or col_slots.size == 0:
        return stats
    if row_bounds is not None:
        row_bounds = np.asarray(row_bounds, dtype=np.int64)
    if col_bounds is not None:
        col_bounds = np.asarray(col_bounds, dtype=np.int64)
    merged = np.unique(np.concatenate([index.class_widths, other.class_widths]))
    for small, large in zip(merged[:-1], merged[1:]):
        require(int(large) % int(small) == 0,
                f"cross-buffer widths {int(large)} and {int(small)} do not nest; "
                "both shards must be packed from the same nested range family")
    for cj_idx in np.unique(other.class_of[col_slots]).tolist():
        cols = col_slots[other.class_of[col_slots] == cj_idx]
        b = other._rows(cols, cj_idx)
        col_bound = (int(col_bounds[cols].max())
                     if col_bounds is not None else None)
        for ci_idx in np.unique(index.class_of[row_slots]).tolist():
            rows_in_class = row_slots[index.class_of[row_slots] == ci_idx]
            chunk = max(1, tile_entries // max(1, cols.size))
            for start in range(0, rows_in_class.size, chunk):
                rows = rows_in_class[start:start + chunk]
                stats["tiles_total"] += 1
                floor = thr()
                if (floor > 0 and row_bounds is not None
                        and col_bounds is not None):
                    if min(int(row_bounds[rows].max()), col_bound) < floor:
                        stats["tiles_skipped"] += 1
                        continue
                a = index._rows(rows, ci_idx)
                if a.shape[1] >= b.shape[1]:
                    block = index._folded_counts(a, b)
                else:
                    block = index._folded_counts(b, a).T
                consume(rows, cols, block)
    return stats


class BatchPairCounter:
    """All-pairs / pairs-list / top-k intersection counts for one collection.

    The engine validates compatibility once, gathers the packed words once,
    and answers every subsequent query with broadcasted NumPy SWAR — no
    per-pair Python call.  Build it through
    :meth:`repro.core.collection.BatmapCollection.batch_counter`, which caches
    one instance per collection.
    """

    def __init__(self, collection, *, block_words: int = DEFAULT_BLOCK_WORDS) -> None:
        self.collection = collection
        self.block_words = int(block_words)
        self._validate(collection)
        buffer = collection.device_buffer()
        self.index = WidthClassIndex(
            buffer.words, buffer.offsets, buffer.widths, block_words=block_words
        )
        self._counts_sorted = None

    @property
    def classes(self) -> list[WidthClass]:
        """The width classes as dense matrices (materialised on access)."""
        return [self.index.width_class(i) for i in range(self.index.n_classes)]

    # ------------------------------------------------------------------ #
    # Validation (once per engine, replacing the per-pair _check_compatible)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate(collection) -> None:
        batmaps = collection.batmaps_sorted
        require(len(batmaps) > 0, "cannot build a batch counter for an empty collection")
        family = batmaps[0].family
        for bm in batmaps[1:]:
            require_same_family(family, bm.family)
        r0 = collection.r0
        require_compression_floor(r0, family.shift)
        if r0 < 4:
            raise LayoutError(
                f"batch counting requires word-aligned ranges (r0 >= 4), got r0 = {r0}"
            )
        if collection.config.entry_storage_bits != 8:
            raise LayoutError(
                "batch counting requires one-byte entries; "
                f"payload_bits={collection.config.payload_bits} stores "
                f"{collection.config.entry_dtype} — use the per-pair reference path"
            )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def counts_sorted(self) -> np.ndarray:
        """Dense ``n x n`` count matrix in width-sorted (device) order, cached."""
        if self._counts_sorted is None:
            self._counts_sorted = self.index.all_pairs()
        return self._counts_sorted

    def count_all_pairs(self) -> np.ndarray:
        """Dense ``n x n`` count matrix indexed by *original* set indices."""
        order = self.collection.order
        out = np.empty_like(self.counts_sorted())
        out[np.ix_(order, order)] = self.counts_sorted()
        return out

    def count_pairs(self, pairs) -> np.ndarray:
        """Counts for an explicit list of ``(i, j)`` original-index pairs."""
        pairs = np.asarray(pairs, dtype=np.int64)
        require(pairs.ndim == 2 and pairs.shape[1] == 2,
                f"pairs must have shape (k, 2), got {pairs.shape}")
        if pairs.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        rank = self.collection.rank
        return self.index.pairwise_slots(rank[pairs[:, 0]], rank[pairs[:, 1]])

    def count_pair(self, i: int, j: int) -> int:
        """Stored-copy intersection count of original sets ``i`` and ``j``."""
        return int(self.count_pairs(np.array([[i, j]], dtype=np.int64))[0])

    def count_cross(self, rows, cols) -> np.ndarray:
        """Rectangular count matrix between two lists of original indices.

        This is the boolean-matrix-product shape: entry ``(p, q)`` is the
        intersection count of original sets ``rows[p]`` and ``cols[q]``.
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        rank = self.collection.rank
        return self.index.cross_slots(rank[rows], rank[cols])

    def top_k(self, k: int) -> list:
        """The ``k`` off-diagonal pairs with the largest counts.

        Returns ``[((i, j), count), ...]`` with ``i < j`` in original indices,
        descending by count with ties broken by the index pair (the same
        ranking convention as :meth:`repro.mining.support.PairSupports.top_k`).
        """
        require_positive(k, "k")
        counts = self.count_all_pairs()
        n = counts.shape[0]
        iu, ju = np.triu_indices(n, 1)
        values = counts[iu, ju]
        k = min(k, values.size)
        if k == 0:
            return []
        # partial-select, then widen to every pair tied at the selection
        # boundary so rank ties resolve by the index convention (argpartition
        # alone picks an arbitrary subset of boundary ties), then exact-sort
        # only that candidate pool
        candidate = np.argpartition(values, -k)[-k:]
        boundary = int(values[candidate].min())
        pool = np.nonzero(values >= boundary)[0]
        order = np.lexsort((ju[pool], iu[pool], -values[pool]))
        ranked = pool[order][:k]
        return [((int(iu[idx]), int(ju[idx])), int(values[idx])) for idx in ranked]

    # ------------------------------------------------------------------ #
    # CountResult-producing queries (sparse / pruned / top-k)
    # ------------------------------------------------------------------ #
    def slot_bounds(self) -> np.ndarray:
        """Per-slot count upper bounds from exact set sizes.

        ``Batmap.set_size`` counts stored *and* failed insertions, so the
        bound holds for the post-repair support too — which is what makes
        tile skipping sound for the miner's ``min_support`` filter (repair
        runs after counting and only ever adds).
        """
        return np.array([bm.set_size for bm in self.collection.batmaps_sorted],
                        dtype=np.int64)

    def count_result(
        self,
        *,
        result_format: str = "dense",
        min_support: int = 0,
        top_k: int | None = None,
        bounds=None,
        tile_entries: int = SPARSE_TILE_ENTRIES,
    ):
        """All-pairs counts as a :class:`~repro.core.results.CountResult`.

        ``result_format="dense"`` wraps the cached dense matrix (the oracle
        path, unchanged).  ``"sparse"`` streams pruned tiles through
        :func:`sparse_all_pairs`: tiles whose count upper bound (from
        ``bounds``, default :meth:`slot_bounds`) falls below ``min_support``
        are skipped before any SWAR work, and surviving nonzeros accumulate
        as COO triplets in original index order.  ``top_k=k`` instead keeps
        a running heap whose floor tightens the pruning threshold as it
        fills, returning a :class:`~repro.core.results.TopKCountResult`.
        """
        require(result_format in ("dense", "sparse"),
                f"result_format must be 'dense' or 'sparse', got {result_format!r}")
        require(min_support >= 0, f"min_support must be >= 0, got {min_support}")
        order = self.collection.order
        n = len(order)
        if bounds is None:
            bounds = self.slot_bounds()
        if top_k is not None:
            acc = TopKAccumulator(top_k)

            def consume_topk(rows, cols, block):
                floor = max(1, min_support, acc.floor)
                r_local, c_local = np.nonzero(block >= floor)
                if r_local.size == 0:
                    return
                oi = order[rows[r_local]]
                oj = order[cols[c_local]]
                keep = oi != oj
                if not keep.any():
                    return
                values = block[r_local, c_local][keep]
                oi, oj = oi[keep], oj[keep]
                acc.push(np.minimum(oi, oj), np.maximum(oi, oj), values)

            stats = sparse_all_pairs(
                self.index, consume=consume_topk, bounds=bounds,
                threshold=lambda: max(min_support, acc.floor),
                tile_entries=tile_entries)
            return acc.result(n, min_support=min_support, stats=stats,
                              fill_zeros=min_support <= 1)
        if result_format == "dense":
            # the dense path computes every count — nothing is pruned, so
            # the result carries no filtering floor
            return DenseCountResult(self.count_all_pairs())
        sparse = SparseAccumulator(n, min_support=min_support)

        def consume(rows, cols, block):
            sparse.add_block(order[rows], order[cols], block)

        stats = sparse_all_pairs(
            self.index, consume=consume, bounds=bounds,
            threshold=lambda: min_support, tile_entries=tile_entries)
        sparse.tiles_total = stats["tiles_total"]
        sparse.tiles_skipped = stats["tiles_skipped"]
        return sparse.finalize()

    def count_cross_result(
        self,
        rows,
        cols,
        *,
        min_support: int = 0,
        bounds=None,
        tile_entries: int = SPARSE_TILE_ENTRIES,
    ):
        """Rectangular counts (:meth:`count_cross` shape) as a sparse result.

        ``rows`` / ``cols`` are *original* set indices (each side free of
        duplicates); the returned non-symmetric
        :class:`~repro.core.results.SparseCountResult` is indexed by
        position within those lists — entry ``(p, q)`` is the count of
        ``rows[p]`` x ``cols[q]``.  With ``min_support > 0``, tiles whose
        set-size bound cannot reach the threshold are skipped before any
        SWAR work (sound for the matrix product: repair only adds).
        """
        require(min_support >= 0, f"min_support must be >= 0, got {min_support}")
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        require(np.unique(rows).size == rows.size
                and np.unique(cols).size == cols.size,
                "count_cross_result requires duplicate-free index lists")
        rank = self.collection.rank
        row_slots = rank[rows]
        col_slots = rank[cols]
        n = len(self.collection)
        row_of = np.full(n, -1, dtype=np.int64)
        row_of[row_slots] = np.arange(rows.size)
        col_of = np.full(n, -1, dtype=np.int64)
        col_of[col_slots] = np.arange(cols.size)
        if bounds is None:
            bounds = self.slot_bounds()
        acc = SparseAccumulator(rows.size, cols.size, symmetric=False,
                                min_support=min_support)

        def consume(r_slots, c_slots, block):
            acc.add_block(row_of[r_slots], col_of[c_slots], block)

        stats = sparse_cross(
            self.index, self.index, consume=consume,
            row_slots=row_slots, col_slots=col_slots,
            row_bounds=bounds, col_bounds=bounds,
            threshold=(lambda: min_support) if min_support > 0 else None,
            tile_entries=tile_entries)
        acc.tiles_total = stats["tiles_total"]
        acc.tiles_skipped = stats["tiles_skipped"]
        return acc.finalize()
