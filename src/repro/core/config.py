"""Configuration of the batmap layout and cuckoo construction.

The knobs here correspond directly to choices made in the paper:

* ``range_multiplier`` — the hash range is a power of two at least
  ``range_multiplier * |S|``; the paper uses ``2 * 2**ceil(log2(|S|))``
  (Section IV, "Throughput computation") and the analysis requires
  ``r >= (2 + eps) * n`` (Section II-B).
* ``max_loop`` — the MaxLoop bound of the INSERT procedure (Section II-A).
* ``payload_bits`` — bits kept from the permuted element id; the paper keeps
  the 7 most significant bits and 1 indicator bit per entry (Section III-A).
* ``entry_bits`` — total bits per batmap entry; 8 in the compressed layout so
  four entries pack into a 32-bit word.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.utils.bits import next_power_of_two
from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class BatmapConfig:
    """Parameters controlling batmap construction and layout.

    Attributes
    ----------
    range_multiplier:
        Lower bound on ``r / |S|`` before rounding up to a power of two.
        The cuckoo failure analysis of Section II-B assumes a value of at
        least 2; smaller values (down to 1.0) are allowed — they trade space
        for more failed insertions, which the repair path of the mining
        pipeline handles exactly — but void the O(1/eps) insertion-time bound.
    max_loop:
        Maximum number of element moves in one cuckoo insertion before it is
        declared failed.  ``None`` selects the adaptive default
        ``max(32, 8 * ceil(log2(r + 1)))``.
    payload_bits:
        Number of significant bits of the permuted element stored per entry.
        The remaining low-order bits are implied by the entry's position.
    seed:
        Seed for the three hash permutations.
    """

    range_multiplier: float = 2.0
    max_loop: int | None = None
    payload_bits: int = 7
    seed: int = 0x5EED_BA7

    #: Number of hash tables (rows); the paper's scheme is 2-of-3.
    num_tables: int = field(default=3, init=False)
    #: Copies stored per element.
    copies: int = field(default=2, init=False)

    def __post_init__(self) -> None:
        require(self.range_multiplier >= 1.0,
                f"range_multiplier must be >= 1, got {self.range_multiplier}")
        require(1 <= self.payload_bits <= 31,
                f"payload_bits must be in [1, 31], got {self.payload_bits}")
        if self.max_loop is not None:
            require_positive(self.max_loop, "max_loop")

    @property
    def entry_bits(self) -> int:
        """Bits per stored entry: payload plus the cyclic-order indicator bit."""
        return self.payload_bits + 1

    @property
    def is_byte_packed(self) -> bool:
        """True when entries are exactly one byte, enabling the SWAR word tricks."""
        return self.entry_bits == 8

    @property
    def entry_storage_bits(self) -> int:
        """Bits of the unsigned integer an entry is *stored* in (8, 16 or 32).

        Entries are kept in the smallest machine dtype that fits
        :attr:`entry_bits`; narrower-than-default payloads (< 7 bits) still
        occupy one byte, so every ``payload_bits <= 7`` layout stays
        compatible with the packed SWAR comparison paths.
        """
        for bits in (8, 16, 32):
            if self.entry_bits <= bits:
                return bits
        raise AssertionError("entry_bits > 32 is rejected by __post_init__")

    @property
    def entry_dtype(self) -> np.dtype:
        """NumPy dtype backing the entries array (uint8/uint16/uint32)."""
        return np.dtype(f"uint{self.entry_storage_bits}")

    @property
    def payload_mask(self) -> int:
        """Mask extracting the payload from a stored entry.

        Derived from :attr:`payload_bits` — the single source every decode /
        membership / comparison path must use.  (The seed hardcoded ``0x7F``
        in several places, silently corrupting any non-default width.)
        """
        return (1 << self.payload_bits) - 1

    @property
    def indicator_shift(self) -> int:
        """Bit position of the cyclic-order indicator: the storage dtype's top bit.

        Pinning the indicator to the *storage* top bit (not bit
        ``payload_bits``) keeps every ``payload_bits <= 7`` layout
        bit-compatible with the byte-packed SWAR engines, whose masks assume
        bit 7.
        """
        return self.entry_storage_bits - 1

    @property
    def indicator_mask(self) -> int:
        """Mask selecting the indicator bit of a stored entry."""
        return 1 << self.indicator_shift

    def shift_for_universe(self, universe_size: int) -> int:
        """Number of low-order bits ``s`` dropped from permuted ids for universe ``{0..m-1}``.

        Chosen as the smallest ``s`` such that ``(m - 1) >> s`` fits in
        ``payload_bits`` bits *with one codepoint reserved for NULL*
        (the all-zero byte).  The paper reserves no explicit NULL codepoint;
        we shift by one extra unit of headroom when needed so that empty
        slots can never collide with a stored value — see DESIGN.md.
        """
        require_positive(universe_size, "universe_size")
        max_payload = (1 << self.payload_bits) - 2  # reserve 0 for NULL
        s = 0
        while ((universe_size - 1) >> s) > max_payload:
            s += 1
        return s

    def universe_capacity(self, universe_size: int) -> int:
        """Largest universe that shares ``universe_size``'s compression shift.

        ``payload_mask << s`` is exactly the largest ``m`` with
        ``shift_for_universe(m) == s``.  An extensible hash family built over
        this capacity can absorb any universe growth up to it without
        changing the payload compression — and therefore without re-placing
        a single already-built set.
        """
        return self.payload_mask << self.shift_for_universe(universe_size)

    def min_range(self, universe_size: int) -> int:
        """Smallest admissible hash range for this universe (the compression floor ``2**s``)."""
        return max(1, 1 << self.shift_for_universe(universe_size))

    def range_for_size(self, set_size: int, universe_size: int) -> int:
        """Hash range ``r`` for a set of ``set_size`` elements over ``{0..m-1}``.

        A power of two, at least ``range_multiplier * set_size`` and at least
        the compression floor ``2**s``.  Empty sets get the floor.
        """
        require(set_size >= 0, f"set_size must be >= 0, got {set_size}")
        floor = self.min_range(universe_size)
        if set_size == 0:
            return floor
        needed = next_power_of_two(math.ceil(self.range_multiplier * set_size))
        return max(needed, floor)

    def effective_max_loop(self, r: int) -> int:
        """MaxLoop bound actually used for a table of range ``r``."""
        if self.max_loop is not None:
            return self.max_loop
        return max(32, 8 * (int(r).bit_length()))

    def with_(self, **kwargs) -> "BatmapConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = BatmapConfig()
