"""Vectorized bulk construction: round-based cuckoo placement for whole groups.

:func:`repro.core.builder.place_set` inserts one copy at a time in a pure
Python loop — per-element dict lookups, per-move branches.  That was fine
when construction was a rounding error next to the O(n^2) counting phase,
but PRs 1-3 made the counting side vectorized and parallel, so on real
mining and matrix workloads the pre-processing phase (Sections II-A/III-A of
the paper) now dominates.  This module rebuilds it as a **bulk engine**:

* all sets sharing one hash range ``r`` form a *group*; their elements are
  concatenated once and hashed with **one vectorized call per table**
  (``family.positions`` over the whole group);
* placement runs in **rounds**: every pending copy across every set of the
  group claims its current candidate slot simultaneously with one NumPy
  scatter (last writer wins); losers and displaced occupants form the next
  round's frontier with their table advanced cyclically, exactly the walk
  the serial INSERT procedure performs one element at a time;
* per-copy move budgets enforce the MaxLoop bound; exhausted walks evict
  their element in bulk (all stored copies cleared, sibling walks dropped);
* sets that recorded *any* failure are rebuilt with the serial inserter —
  the oracle — so wherever the bulk engine detects trouble, failure
  semantics (which elements end up on the ``failed`` list) are exactly the
  serial ones.  This routing is one-directional by construction: it fires
  on *bulk* failures, and the bulk per-walk budget
  (:data:`BULK_MOVE_BUDGET`, far below the serial walk's ``3 * MaxLoop``
  allowance) makes the engine strictly quicker to declare failure than the
  serial walker, so in practice every serially-failing set takes the
  oracle path too — the test suite and the build benchmark pin
  ``failed_insertions()`` equality (and hence count equality on every
  counting path) across all covered workloads, including failure-heavy
  ones.  A set the serial inserter's deterministic cyclic walk cannot
  place but the bulk rounds can is not provably impossible, merely
  unobserved; if one ever appears, stored-copy counts would differ while
  the repaired end-to-end mining results stay exact (Section III-C repair
  is failure-list-driven per build);
* the byte encoding of :meth:`Batmap.from_placement` is applied to the whole
  group at once (one scatter for all sets), and the packed device-word
  layout of Figure 4 is produced group-wise, skipping the per-set
  re-stacking entirely.

Because every slot array is per-set (claims from different sets can never
collide), a set's placement depends only on its own elements — group
composition, sharding and build order do not change the result.  That is
what lets :mod:`repro.parallel.build` fan shards out to worker processes
and still produce bit-identical collections.

Placements differ from the serial insertion order (copies may settle in a
different 2-of-3 table pair), but the layout's pair counts are
placement-independent: for any two table pairs the indicator-bit convention
counts a common element exactly once (see :mod:`repro.core.intersection`),
so all existing counting backends return identical matrices.  The serial
inserter remains the oracle in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import EMPTY, Placement, PlacementStats, place_set
from repro.core.config import BatmapConfig, DEFAULT_CONFIG
from repro.core.errors import LayoutError
from repro.core.hashing import HashFamily
from repro.utils.validation import require, require_power_of_two

__all__ = [
    "GROUP_SLOT_BUDGET",
    "GroupPlacement",
    "bulk_place_group",
    "bulk_place_sets",
    "padded_width_words",
    "device_word_layout",
    "pack_group_words",
    "BulkBuiltSet",
    "BulkChunk",
    "bulk_build_chunks",
    "bulk_build_sets",
    "sets_from_chunks",
    "chunk_built_sets",
]

#: Upper bound on the slot-table size (``n_sets * 3 * r``) one bulk round
#: operates over.  Width groups larger than this are processed in chunks of
#: sets — placements are per-set independent, so chunking cannot change any
#: result; it only bounds the working set.  4M slots keep the two int32
#: per-slot arrays (occupancy + claims) at ~32 MB, small enough to stay
#: cache-friendly on the compression-floor-inflated ranges of large
#: universes, where dense per-slot arrays are ~50x bigger than the live
#: entries they track.
GROUP_SLOT_BUDGET = 1 << 22

#: Cyclic table advance (1, 2, 3, 1, ... in the paper's 1-based notation).
_NEXT_TABLE = np.array([1, 2, 0], dtype=np.int32)

#: Per-walk move budget of the round engine.  One bulk round advances every
#: live walk by one move, so the round count is bounded by the longest walk;
#: at sane loads almost all walks settle within a handful of moves, and the
#: serial MaxLoop budget (3 * max_loop, typically ~200 moves) would make the
#: engine spend hundreds of nearly-empty rounds — each a fixed slate of
#: NumPy calls — escorting a few doomed walks.  Walks that exceed this cap
#: are declared failed instead, which merely routes their *sets* to the
#: serial oracle (the fallback every bulk-failing set takes anyway), so
#: placements stay exactly serial for them.  The cap is per-walk, hence
#: independent of grouping/sharding — chunked, whole-group and multiprocess
#: builds remain bit-identical.
BULK_MOVE_BUDGET = 48


@dataclass
class GroupPlacement:
    """Raw result of placing one width group (all sets share the range ``r``).

    Rows are stored as *flat element indices* into :attr:`elements` (or
    :data:`~repro.core.builder.EMPTY`), which is what the group encoder
    consumes directly; :meth:`placements` converts to per-set element-id
    :class:`~repro.core.builder.Placement` objects for validation and tests.
    """

    r: int
    n_sets: int
    elements: np.ndarray       #: concatenated (deduplicated, sorted) element ids
    set_of: np.ndarray         #: owning set of each flat element
    starts: np.ndarray         #: first flat index of each set
    lengths: np.ndarray        #: deduplicated size of each set
    positions: np.ndarray      #: (3, n_elements) row-local slot of each element
    payloads: np.ndarray       #: (3, n_elements) compressed payload of each element
    slots: np.ndarray          #: (3, n_elements) flat slot index of each element
    rows_flat: np.ndarray      #: (n_sets * 3 * r,) flat element index or EMPTY
    failed_mask: np.ndarray    #: (n_elements,) True where the insertion failed
    set_moves: np.ndarray      #: per-set total cuckoo moves
    set_transcript: np.ndarray  #: per-set longest single walk
    rounds: int                #: number of bulk rounds executed

    def failed_lists(self) -> list[list[int]]:
        """Sorted failed element ids per set."""
        out: list[list[int]] = [[] for _ in range(self.n_sets)]
        for idx in np.nonzero(self.failed_mask)[0].tolist():
            out[int(self.set_of[idx])].append(int(self.elements[idx]))
        return out

    def stats(self, set_index: int, n_failed: int) -> PlacementStats:
        return PlacementStats(
            inserted=int(self.lengths[set_index]),
            failed=n_failed,
            total_moves=int(self.set_moves[set_index]),
            max_transcript=int(self.set_transcript[set_index]),
        )

    def placements(self) -> list[Placement]:
        """Per-set :class:`Placement` objects (element-id rows)."""
        rows_elem = np.full(self.rows_flat.shape, EMPTY, dtype=np.int64)
        mask = self.rows_flat != EMPTY
        rows_elem[mask] = self.elements[self.rows_flat[mask]]
        rows_elem = rows_elem.reshape(self.n_sets, 3, self.r)
        failed = self.failed_lists()
        return [
            Placement(rows=rows_elem[k], r=self.r, failed=failed[k],
                      stats=self.stats(k, len(failed[k])))
            for k in range(self.n_sets)
        ]

    def encode(self, family: HashFamily, config: BatmapConfig) -> np.ndarray:
        """Byte-encode the whole group at once: ``(n_sets, 3, r)`` entries.

        The same layout :meth:`Batmap.from_placement` produces per set —
        payload in the low bits, the cyclic-order indicator pinned to the
        storage top bit — computed with one gather/scatter pass over every
        stored element of every set in the group.
        """
        n = self.elements.size
        entries_flat = np.zeros(self.n_sets * 3 * self.r, dtype=config.entry_dtype)
        if n == 0:
            return entries_flat.reshape(self.n_sets, 3, self.r)
        present = self.rows_flat[self.slots] == np.arange(n)[None, :]  # (3, n)
        copies = present.sum(axis=0)
        bad = (copies != 2) & ~self.failed_mask | (copies != 0) & self.failed_mask
        if np.any(bad):  # pragma: no cover - engine invariant
            offender = int(self.elements[np.argmax(bad)])
            raise LayoutError(
                f"element {offender} stored in {int(copies[np.argmax(bad)])} "
                "tables after bulk placement"
            )
        stored = np.nonzero(copies == 2)[0]
        if stored.size == 0:
            return entries_flat.reshape(self.n_sets, 3, self.r)
        payloads = self.payloads
        if payloads[:, stored].max(initial=0) > config.payload_mask:
            raise LayoutError(
                "payload overflow: increase payload_bits or the hash-family shift"
            )
        # Exactly two of the three tables hold each stored element, so the
        # first is 0 unless only {1, 2} are set, and the last is 2 unless
        # only {0, 1} are set — two O(1) selects instead of two argmax scans.
        pres = present[:, stored]
        table_a = np.where(pres[0], 0, 1)
        table_b = np.where(pres[2], 2, 1)
        # Indicator convention of Batmap._INDICATOR: only the pair {0, 2} is
        # cyclically ordered 2 -> 0, so only there the first table gets bit 1.
        ind = np.int64(config.indicator_shift)
        bit_a = ((table_a == 0) & (table_b == 2)).astype(np.int64)
        bit_b = np.int64(1) - bit_a
        dtype = config.entry_dtype
        entries_flat[self.slots[table_a, stored]] = (
            (bit_a << ind) | payloads[table_a, stored]
        ).astype(dtype)
        entries_flat[self.slots[table_b, stored]] = (
            (bit_b << ind) | payloads[table_b, stored]
        ).astype(dtype)
        return entries_flat.reshape(self.n_sets, 3, self.r)


# --------------------------------------------------------------------------- #
# The round engine
# --------------------------------------------------------------------------- #
def _run_rounds(
    slots: np.ndarray,
    set_of: np.ndarray,
    n_slots_total: int,
    max_moves: int,
    n_sets: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Round-based 2-of-3 cuckoo placement over flat element indices.

    Every pending *copy* is a walk ``(element, table, budget)``.  Each round
    all walks claim their candidate slot with one scatter; one winner per
    slot survives (last writer), displacing the previous occupant into the
    next round's frontier, while same-round losers advance to their next
    table.  Budgets decrease along every walk each round, so the loop
    terminates within ``max_moves`` rounds; walks that exhaust their budget
    evict their element in bulk (stored copies cleared, sibling walks
    dropped, element marked failed).
    """
    n = set_of.size
    rows = np.full(n_slots_total, EMPTY, dtype=np.int32)
    failed_mask = np.zeros(n, dtype=bool)
    set_moves = np.zeros(n_sets, dtype=np.int64)
    set_transcript = np.zeros(n_sets, dtype=np.int64)
    if n == 0:
        return rows, failed_mask, set_moves, set_transcript, 0

    # The two copies of every element start in *different* tables.  The
    # serial inserter starts both at table 0 (the second copy then swaps
    # with the first and walks on); here that would make every element's
    # copies collide in round 1 by construction.  Any 2-of-3 walk is a valid
    # placement — pair counts are placement-independent — so the stagger
    # only removes guaranteed contention.
    fe = np.concatenate([np.arange(n, dtype=np.int32)] * 2)  # element of each walk
    ft = np.repeat(np.array([0, 1], dtype=np.int32), n)    # current table
    fm = np.zeros(2 * n, dtype=np.int32)                   # moves made so far
    # The remaining budget is implicit: a walk dies when fm reaches
    # max_moves, exactly the serial walk's total move allowance.
    claim = np.full(n_slots_total, -1, dtype=np.int32)
    rounds = 0

    def settle(elements: np.ndarray, moves: np.ndarray) -> None:
        """Fold a batch of terminated walks into the per-set statistics."""
        if elements.size:
            owners = set_of[elements]
            np.add.at(set_moves, owners, moves.astype(np.int64))
            np.maximum.at(set_transcript, owners, moves.astype(np.int64))

    while fe.size:
        rounds += 1
        target = slots[ft, fe]
        idx = np.arange(fe.size, dtype=np.int32)
        claim[target] = idx                                # last writer wins
        win = claim[target] == idx
        claim[target] = -1                                 # reset touched slots
        fm += 1

        wslots = target[win]
        displaced = rows[wslots]                           # fancy index: a copy
        rows[wslots] = fe[win]
        disp = displaced != EMPTY
        settle(fe[win][~disp], fm[win][~disp])             # walks that found a nest

        lose = ~win
        nfe = np.concatenate([fe[lose], displaced[disp]])
        nft = _NEXT_TABLE[np.concatenate([ft[lose], ft[win][disp]])]
        nfm = np.concatenate([fm[lose], fm[win][disp]])

        dead = nfm >= max_moves
        if dead.any():
            newly = np.unique(nfe[dead])
            newly = newly[~failed_mask[newly]]
            if newly.size:
                failed_mask[newly] = True
                cand = slots[:, newly]                     # the 3 candidate slots
                hit = rows[cand] == newly[None, :]
                rows[cand[hit]] = EMPTY                    # evict stored copies
        keep = ~dead & ~failed_mask[nfe]
        ended = ~keep
        settle(nfe[ended], nfm[ended])                     # dead or dropped walks
        fe, ft, fm = nfe[keep], nft[keep], nfm[keep]
    return rows, failed_mask, set_moves, set_transcript, rounds


def bulk_place_group(
    sets: list[np.ndarray],
    family: HashFamily,
    r: int,
    config: BatmapConfig = DEFAULT_CONFIG,
    *,
    oracle_on_failure: bool = True,
) -> GroupPlacement:
    """Place every set of one width group with the round-based bulk engine.

    ``sets`` must hold sorted, deduplicated ``int64`` element-id arrays (the
    collection builder deduplicates once and passes them through).  With
    ``oracle_on_failure`` (the default) any set that records a failed
    insertion is rebuilt with the serial inserter, so its placement —
    including *which* elements fail — matches :func:`place_set` exactly.
    """
    require_power_of_two(r, "r")
    n_sets = len(sets)
    lengths = np.array([s.size for s in sets], dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.int64)
    flat = (np.concatenate(sets) if int(lengths.sum()) else
            np.zeros(0, dtype=np.int64))
    if flat.size and (flat.min() < 0 or flat.max() >= family.universe_size):
        raise ValueError("element id out of range for the hash family's universe")
    set_of = np.repeat(np.arange(n_sets, dtype=np.int64), lengths)

    # One permutation gather per table serves both the slot positions and
    # (later) the encoded payloads — they are two bit-fields of pi_t(x).
    permuted = np.stack([family.permuted(t, flat) for t in range(3)], axis=0)
    positions = permuted & np.int64(r - 1)
    payloads = (permuted >> np.int64(family.shift)) + 1
    row_span = 3 * r
    require(n_sets * row_span < (1 << 31),
            "group slot table exceeds the int32 engine range; chunk the "
            "group (bulk_build_sets does this automatically)")
    slots = (set_of[None, :] * row_span
             + np.arange(3, dtype=np.int64)[:, None] * r
             + positions).astype(np.int32)
    max_moves = min(3 * config.effective_max_loop(r), BULK_MOVE_BUDGET)
    rows_flat, failed_mask, set_moves, set_transcript, rounds = _run_rounds(
        slots, set_of, n_sets * row_span, max_moves, n_sets
    )

    if oracle_on_failure and failed_mask.any():
        for s in np.unique(set_of[failed_mask]).tolist():
            seg = slice(int(starts[s]), int(starts[s] + lengths[s]))
            oracle = place_set(flat[seg], family, r, config, assume_unique=True)
            region = rows_flat[s * row_span:(s + 1) * row_span]
            region[:] = EMPTY
            stored = oracle.rows != EMPTY
            region.reshape(3, r)[stored] = (
                starts[s] + np.searchsorted(flat[seg], oracle.rows[stored])
            )
            failed_mask[seg] = False
            if oracle.failed:
                failed_mask[starts[s] + np.searchsorted(
                    flat[seg], np.asarray(oracle.failed, dtype=np.int64))] = True
            set_moves[s] = oracle.stats.total_moves
            set_transcript[s] = oracle.stats.max_transcript

    return GroupPlacement(
        r=r, n_sets=n_sets, elements=flat, set_of=set_of, starts=starts,
        lengths=lengths, positions=positions, payloads=payloads, slots=slots,
        rows_flat=rows_flat, failed_mask=failed_mask, set_moves=set_moves,
        set_transcript=set_transcript, rounds=rounds,
    )


def bulk_place_sets(
    sets,
    family: HashFamily,
    r: int,
    config: BatmapConfig = DEFAULT_CONFIG,
    *,
    oracle_on_failure: bool = True,
) -> list[Placement]:
    """Bulk counterpart of calling :func:`place_set` per set at one range ``r``.

    Accepts arbitrary array-likes (deduplicated here) and returns per-set
    :class:`Placement` objects satisfying the same 2-of-3 invariants the
    serial inserter guarantees (``Placement.validate`` passes on every one).
    """
    dedup = [np.unique(np.asarray(s, dtype=np.int64)) for s in sets]
    out: list[Placement] = []
    for lo, hi in _group_chunks(len(dedup), r):
        out.extend(bulk_place_group(
            dedup[lo:hi], family, r, config,
            oracle_on_failure=oracle_on_failure,
        ).placements())
    return out


def _group_chunks(n_sets: int, r: int, slot_budget: int | None = None) -> list[tuple[int, int]]:
    """Contiguous set ranges keeping each chunk within the slot budget.

    ``slot_budget`` overrides :data:`GROUP_SLOT_BUDGET` when a caller must
    bound the working set tighter than the cache-friendliness default — the
    out-of-core pipeline derives it from its resident-set ceiling.  A chunk
    never goes below one set: a single placement's tables are the engine's
    memory floor.
    """
    budget = GROUP_SLOT_BUDGET if slot_budget is None else slot_budget
    per_chunk = max(1, budget // (3 * r))
    return [(lo, min(lo + per_chunk, n_sets))
            for lo in range(0, n_sets, per_chunk)]


# --------------------------------------------------------------------------- #
# Group packing (the Figure 4 interleave, whole group at once)
# --------------------------------------------------------------------------- #
def padded_width_words(width: int) -> int:
    """Packed row width rounded up to a 16-word (64-byte) boundary.

    The alignment the 16-wide coalesced reads of the pair-count kernel
    require (the paper's best-practice guide [19]); the single source of
    the padding rule shared by the lazy per-set packer
    (:meth:`BatmapCollection.device_buffer`), the group packer below and
    the bulk collection assembler.
    """
    return ((width + 15) // 16) * 16


def device_word_layout(rs) -> tuple[np.ndarray, np.ndarray, int]:
    """Per-slot ``(widths, offsets, total_words)`` of the packed device buffer.

    ``rs[k]`` is the hash range of the batmap at width-sorted slot ``k``;
    widths are the *true* packed widths (``3r/4`` words), offsets reflect
    the padded layout.  Both the lazy per-set packer and the bulk
    assembler derive their buffer geometry from this one function, so the
    two construction paths cannot drift apart.
    """
    widths = np.array([3 * int(r) // 4 for r in rs], dtype=np.int64)
    padded = (widths + 15) // 16 * 16
    offsets = np.concatenate([[0], np.cumsum(padded)[:-1]]).astype(np.int64)
    return widths, offsets, int(padded.sum())


def pack_group_words(entries: np.ndarray, r0: int) -> tuple[np.ndarray, int]:
    """Pack ``(n, 3, r)`` byte entries into padded device words, group-wise.

    Returns ``(words, width_words)`` where ``words`` has shape
    ``(n, padded_width)`` (each row 16-word aligned, zero padded — identical
    bytes to :meth:`Batmap.device_array` followed by
    :func:`~repro.utils.bits.pack_bytes_to_words`) and ``width_words`` is the
    *true* per-row width ``3 * r / 4``.
    """
    require(entries.dtype == np.uint8,
            "the interleaved device layout packs one byte per slot")
    n, _, r = entries.shape
    require_power_of_two(r0, "r0")
    require(r0 <= r, f"r0 ({r0}) must not exceed r ({r})")
    blocks = r // r0
    interleaved = (entries.reshape(n, 3, blocks, r0)
                   .transpose(0, 2, 1, 3)
                   .reshape(n, 3 * r))
    width = (3 * r) // 4
    padded = padded_width_words(width)
    out = np.zeros((n, padded * 4), dtype=np.uint8)
    out[:, :3 * r] = interleaved
    return np.ascontiguousarray(out).view("<u4"), width


# --------------------------------------------------------------------------- #
# Whole-collection construction
# --------------------------------------------------------------------------- #
@dataclass
class BulkBuiltSet:
    """One set's construction output: entries plus failure/stats metadata.

    ``entries`` is a view into its chunk's stacked ``(m, 3, r)`` array — the
    chunk *is* the storage; no per-set re-stacking happens anywhere in the
    bulk pipeline.
    """

    r: int
    entries: np.ndarray          #: (3, r) in the configured entry dtype
    failed: tuple[int, ...]
    stats: PlacementStats


@dataclass
class BulkChunk:
    """One placed-and-encoded chunk of a width group."""

    r: int
    indices: list[int]           #: positions of the members in the input order
    entries: np.ndarray          #: stacked (len(indices), 3, r) entries
    failed: list[list[int]]      #: per-member failed element ids
    stats: list[PlacementStats]  #: per-member construction statistics


def bulk_build_chunks(
    sets: list[np.ndarray],
    rs: list[int],
    family: HashFamily,
    config: BatmapConfig = DEFAULT_CONFIG,
    *,
    slot_budget: int | None = None,
) -> list[BulkChunk]:
    """Build every set with the bulk engine, grouped by hash range.

    ``sets`` are sorted, deduplicated element arrays; ``rs[k]`` is the hash
    range for ``sets[k]``.  Groups are formed per distinct range, split into
    chunks within :data:`GROUP_SLOT_BUDGET`, and each chunk is placed and
    encoded with one vectorized pass.  Per-set results are independent of
    the grouping (claims never cross sets), so neither the chunking nor any
    sharding of this call can change a single byte of the output.

    The chunk form keeps each chunk's entries stacked — exactly what the
    device-buffer packer and the shared-memory writer of the parallel
    builder consume — while :func:`bulk_build_sets` flattens to per-set
    views for callers that want one object per set.
    """
    require(len(sets) == len(rs), "sets and rs must have the same length")
    by_range: dict[int, list[int]] = {}
    for k, r in enumerate(rs):
        by_range.setdefault(int(r), []).append(k)
    chunks: list[BulkChunk] = []
    for r, members in by_range.items():
        for lo, hi in _group_chunks(len(members), r, slot_budget):
            chunk = members[lo:hi]
            group = bulk_place_group([sets[k] for k in chunk], family, r, config)
            failed = group.failed_lists()
            chunks.append(BulkChunk(
                r=r,
                indices=chunk,
                entries=group.encode(family, config),
                failed=failed,
                stats=[group.stats(row, len(failed[row]))
                       for row in range(len(chunk))],
            ))
    return chunks


def sets_from_chunks(chunks: list[BulkChunk], n_sets: int) -> list[BulkBuiltSet]:
    """Flatten chunk results into one :class:`BulkBuiltSet` per input set.

    Entries stay views into the chunk stacks — no copies.
    """
    out: list[BulkBuiltSet | None] = [None] * n_sets
    for chunk in chunks:
        for row, k in enumerate(chunk.indices):
            out[k] = BulkBuiltSet(
                r=chunk.r,
                entries=chunk.entries[row],
                failed=tuple(chunk.failed[row]),
                stats=chunk.stats[row],
            )
    return out  # type: ignore[return-value]


def chunk_built_sets(built: list[BulkBuiltSet]) -> list[tuple[list[int], np.ndarray]]:
    """Regroup per-set outputs into packable ``(indices, stacked entries)`` chunks.

    The inverse of :func:`sets_from_chunks` as far as packing is concerned:
    used when the per-set results arrived individually (e.g. out of the
    parallel builder's shared buffer) and the device packer wants the same
    width-grouped, budget-chunked batches :func:`bulk_build_chunks`
    produces.  One stack copy per chunk.
    """
    by_range: dict[int, list[int]] = {}
    for slot, b in enumerate(built):
        by_range.setdefault(int(b.r), []).append(slot)
    return [
        (members[lo:hi], np.stack([built[s].entries for s in members[lo:hi]]))
        for r, members in by_range.items()
        for lo, hi in _group_chunks(len(members), r)
    ]


def bulk_build_sets(
    sets: list[np.ndarray],
    rs: list[int],
    family: HashFamily,
    config: BatmapConfig = DEFAULT_CONFIG,
) -> list[BulkBuiltSet]:
    """Per-set view of :func:`bulk_build_chunks`, in input order."""
    return sets_from_chunks(bulk_build_chunks(sets, rs, family, config),
                            len(sets))
