"""SWAR (SIMD-within-a-register) primitives for packed batmap comparison.

Section III-A of the paper packs four 8-bit batmap entries into one 32-bit
word (1 indicator bit + 7 payload bits per entry, indicator in the most
significant bit of each byte) and counts matches without any conditional
code:

.. code-block:: text

    p  = ((x XOR y) OR 0x80808080) - 0x01010101
    p' = (p XOR 0xffffffff) AND ((x OR y) AND 0x80808080)

After these two lines the most significant bit of byte ``k`` of ``p'`` is 1
exactly when the two corresponding entries have equal payload bits *and* at
least one of their indicator bits is set — which is the paper's counting
condition ``(A_i[p] == A_j[p]) and (b_i[p] or b_j[p])``.  The number of
matches contributed by the word pair is then
``((p' >> 7) + (p' >> 15) + (p' >> 23) + (p' >> 31)) & 7``.

All functions below are vectorised over NumPy ``uint32`` arrays; they are the
"device code" executed by both the GPU-simulator kernels and the CPU
throughput experiments (Figure 11).
"""

from __future__ import annotations

import numpy as np

from repro.utils.bits import popcount_array

__all__ = [
    "MSB_MASK",
    "LSB_MASK",
    "PAYLOAD_MASK",
    "match_bits",
    "count_matches_per_word",
    "count_matches",
    "count_matches_folded",
]

MSB_MASK = np.uint32(0x80808080)
LSB_MASK = np.uint32(0x01010101)
PAYLOAD_MASK = np.uint32(0x7F7F7F7F)
_ALL_ONES = np.uint32(0xFFFFFFFF)


def _as_u32(a: np.ndarray) -> np.ndarray:
    out = np.asarray(a)
    if out.dtype != np.uint32:
        out = out.astype(np.uint32)
    return out


def match_bits(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Return ``p'`` from the paper: per-byte MSB set iff the entries match.

    ``x`` and ``y`` are arrays of packed 32-bit words of identical shape.
    The result has the same shape; only the four MSBs per word carry
    information.
    """
    x = _as_u32(x)
    y = _as_u32(y)
    try:
        np.broadcast_shapes(x.shape, y.shape)
    except ValueError as exc:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}") from exc
    # Every byte of ((x ^ y) | 0x80) is at least 0x80, so subtracting 0x01
    # from each byte never borrows across byte boundaries.
    p = ((x ^ y) | MSB_MASK) - LSB_MASK
    return (p ^ _ALL_ONES) & ((x | y) & MSB_MASK)


def count_matches_per_word(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Per-word match counts in ``0..4`` using the paper's shift-add reduction."""
    pprime = match_bits(x, y)
    counts = (
        (pprime >> np.uint32(7))
        + (pprime >> np.uint32(15))
        + (pprime >> np.uint32(23))
        + (pprime >> np.uint32(31))
    ) & np.uint32(7)
    return counts


def count_matches(x: np.ndarray, y: np.ndarray) -> int:
    """Total number of matching entries between two packed word arrays."""
    # popcount of the isolated MSBs equals the number of matching bytes and
    # is cheaper than the shift-add reduction when summing over a whole array.
    return int(popcount_array(match_bits(x, y)).sum())


def count_matches_folded(large: np.ndarray, small: np.ndarray) -> int:
    """Match count when the two batmaps have different ranges.

    ``large`` is compared against ``small`` tiled (repeated) to the same
    length — the word-level equivalent of folding positions of the larger
    batmap onto the smaller one via ``mod r_small`` (Figure 1, bottom).
    ``len(large)`` must be a multiple of ``len(small)``.
    """
    large = _as_u32(large).ravel()
    small = _as_u32(small).ravel()
    if small.size == 0:
        raise ValueError("small batmap has no words")
    if large.size % small.size != 0:
        raise ValueError(
            f"large word count ({large.size}) must be a multiple of the "
            f"small word count ({small.size})"
        )
    reps = large.size // small.size
    if reps == 1:
        return count_matches(large, small)
    tiled = np.tile(small, reps)
    return count_matches(large, tiled)
