"""Exception hierarchy for the BATMAP core."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class BatmapError(ReproError):
    """Base class for errors raised by the batmap data structure."""


class InsertionFailure(BatmapError):
    """Raised when a cuckoo insertion cannot place an element within MaxLoop moves.

    The mining pipeline normally *handles* failed insertions through the
    repair path (Section III-C of the paper); this exception is only raised
    when the caller asked for strict construction (``on_failure="raise"``).
    """

    def __init__(self, element: int, message: str | None = None) -> None:
        self.element = int(element)
        super().__init__(message or f"cuckoo insertion failed for element {element}")


class CapacityError(BatmapError):
    """Raised when a batmap or device buffer would exceed its configured capacity."""


class LayoutError(BatmapError):
    """Raised when two batmaps have incompatible layouts for a packed comparison."""


class DeviceError(ReproError):
    """Base class for GPU-simulator errors (bad launch geometry, memory misuse)."""


class KernelLaunchError(DeviceError):
    """Raised when a kernel launch has inconsistent global/local sizes."""


class SharedMemoryError(DeviceError):
    """Raised when a work group over-allocates or misuses shared memory."""


class DataFormatError(ReproError):
    """Raised on malformed transaction-database input (FIMI parsing, bad ids)."""
