"""Exception hierarchy for the BATMAP core."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class BatmapError(ReproError):
    """Base class for errors raised by the batmap data structure."""


class InsertionFailure(BatmapError):
    """Raised when a cuckoo insertion cannot place an element within MaxLoop moves.

    The mining pipeline normally *handles* failed insertions through the
    repair path (Section III-C of the paper); this exception is only raised
    when the caller asked for strict construction (``on_failure="raise"``).
    """

    def __init__(self, element: int, message: str | None = None) -> None:
        self.element = int(element)
        super().__init__(message or f"cuckoo insertion failed for element {element}")


class CapacityError(BatmapError):
    """Raised when a batmap or device buffer would exceed its configured capacity."""


class LayoutError(BatmapError):
    """Raised when two batmaps have incompatible layouts for a packed comparison."""


class DeviceError(ReproError):
    """Base class for GPU-simulator errors (bad launch geometry, memory misuse)."""


class KernelLaunchError(DeviceError):
    """Raised when a kernel launch has inconsistent global/local sizes."""


class SharedMemoryError(DeviceError):
    """Raised when a work group over-allocates or misuses shared memory."""


class DatasetError(ReproError):
    """Base class for dataset-layer errors (readers, containers, spill files).

    Catch this to handle any malformed or unreadable input uniformly; the
    FIMI readers (:mod:`repro.datasets.fimi_io`,
    :mod:`repro.datasets.streaming`) raise subclasses carrying the source
    name and line number instead of letting a bare ``ValueError`` escape.
    """


class DataFormatError(DatasetError):
    """Raised on malformed transaction-database input (FIMI parsing, bad ids)."""


class SpillFormatError(DatasetError):
    """Raised when an on-disk shard spill directory is missing files or inconsistent."""


class IntegrityError(DatasetError):
    """Raised when an artifact's durability invariants cannot be restored.

    :func:`repro.core.integrity.repair_spill` raises this when there is no
    committed manifest to roll back to — the one situation rollback repair
    cannot handle (the artifact must be rebuilt).  Detected-but-repairable
    damage is *reported* (via :class:`repro.core.integrity.IntegrityReport`),
    not raised.
    """
