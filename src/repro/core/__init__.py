"""The BATMAP core: data layout, construction and intersection counting.

Public entry points:

* :class:`~repro.core.config.BatmapConfig` — layout / construction knobs.
* :func:`~repro.core.batmap.build_batmap` — build one batmap.
* :class:`~repro.core.collection.BatmapCollection` — build and compare many
  sets sharing one hash family (the normal way to use the library).
* :func:`~repro.core.intersection.count_common` — intersection size of two
  batmaps.
* :class:`~repro.core.batch.BatchPairCounter` — vectorised all-pairs /
  pairs-list / top-k counting over a whole collection (the host hot path).
* :func:`~repro.core.plan.plan_counts` — the workload planner that picks a
  counting backend (host / batch / parallel / kernel / sharded) per request.
* :class:`~repro.core.sharded.ShardedCollection` — out-of-core collections:
  build shard by shard, spill packed buffers to disk, re-attach memory-mapped.
"""

from repro.core.batch import BatchPairCounter, WidthClass, WidthClassIndex
from repro.core.batmap import Batmap, build_batmap
from repro.core.builder import EMPTY, Placement, PlacementStats, place_set
from repro.core.collection import BatmapCollection, DeviceBuffer
from repro.core.config import DEFAULT_CONFIG, BatmapConfig
from repro.core.errors import (
    BatmapError,
    CapacityError,
    DataFormatError,
    DatasetError,
    DeviceError,
    InsertionFailure,
    KernelLaunchError,
    LayoutError,
    ReproError,
    SharedMemoryError,
    SpillFormatError,
)
from repro.core.sharded import ShardedCollection, ShardedCollectionBuilder
from repro.core.hashing import (
    ArrayPermutation,
    FeistelPermutation,
    HashFamily,
    make_permutations,
)
from repro.core.intersection import (
    count_common,
    count_common_bytes,
    count_common_packed,
    exact_intersection_size,
)
from repro.core.plan import (
    CountPlan,
    PlanFeatures,
    plan_counts,
    plan_levelwise,
)
from repro.core.swar import (
    count_matches,
    count_matches_folded,
    count_matches_per_word,
    match_bits,
)

__all__ = [
    "Batmap",
    "BatchPairCounter",
    "WidthClass",
    "WidthClassIndex",
    "build_batmap",
    "EMPTY",
    "Placement",
    "PlacementStats",
    "place_set",
    "BatmapCollection",
    "DeviceBuffer",
    "BatmapConfig",
    "DEFAULT_CONFIG",
    "HashFamily",
    "ArrayPermutation",
    "FeistelPermutation",
    "make_permutations",
    "count_common",
    "count_common_bytes",
    "count_common_packed",
    "exact_intersection_size",
    "CountPlan",
    "PlanFeatures",
    "plan_counts",
    "plan_levelwise",
    "count_matches",
    "count_matches_folded",
    "count_matches_per_word",
    "match_bits",
    "ReproError",
    "BatmapError",
    "InsertionFailure",
    "CapacityError",
    "LayoutError",
    "DeviceError",
    "KernelLaunchError",
    "SharedMemoryError",
    "DatasetError",
    "DataFormatError",
    "SpillFormatError",
    "ShardedCollection",
    "ShardedCollectionBuilder",
]
