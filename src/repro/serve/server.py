"""The asyncio TCP server behind `repro serve`.

:class:`BatmapServer` attaches one spill artifact at startup (mmap'd shard
indexes plus the persisted hash family) and serves the line-delimited JSON
protocol of :mod:`repro.serve.protocol`.  The data path per request::

    readline -> decode/normalize -> cache lookup ------------------- hit -> respond
                                        | miss
                                        v
                                  batcher queue (bounded, rejects when full)
                                        |
                            drain task: coalesce up to max_batch,
                            one vectorized engine call per op group
                                        |
                            future resolved -> cache fill -> respond

Graceful degradation is explicit: a full queue answers ``overloaded``
immediately, a request older than ``request_timeout`` answers ``timeout``
(its batch slot is skipped, not executed), and shutdown drains in-flight
requests before detaching the memory maps.

:class:`BackgroundServer` runs the same server on a private event loop in a
daemon thread — the harness used by the tests, the load-generator benchmark
and any synchronous embedder.
"""

from __future__ import annotations

import asyncio
import threading
import time
from pathlib import Path

from repro.core.errors import DatasetError
from repro.core.sharded import ShardedCollection
from repro.serve.batcher import QueueFullError, RequestBatcher
from repro.serve.cache import LRUResultCache, MISS
from repro.serve.engine import DEFAULT_BATMAP_CACHE_SETS, SpillQueryEngine
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    encode_message,
    error_response,
    normalize_params,
    ok_response,
    query_digest,
    CACHEABLE_OPS,
)

__all__ = ["BatmapServer", "BackgroundServer",
           "DEFAULT_MAX_BATCH", "DEFAULT_MAX_QUEUE", "DEFAULT_REQUEST_TIMEOUT",
           "DEFAULT_CACHE_ENTRIES"]

DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_QUEUE = 1024
DEFAULT_REQUEST_TIMEOUT = 30.0
DEFAULT_CACHE_ENTRIES = 1024


class BatmapServer:
    """Long-lived query server over one spilled collection.

    Typical embedding (the CLI does exactly this)::

        server = BatmapServer("/data/spill", port=0)
        asyncio.run(server.run())          # serves until request_shutdown()

    ``port=0`` binds an ephemeral port; :meth:`start` returns the bound
    address.  ``max_requests`` shuts the server down after that many
    request lines — the hook CI smoke tests use to serve a finite session.
    """

    def __init__(
        self,
        spill_dir,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_queue: int = DEFAULT_MAX_QUEUE,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
        block_words: int | None = None,
        batmap_cache_sets: int = DEFAULT_BATMAP_CACHE_SETS,
        max_requests: int | None = None,
        result_format: str = "dense",
    ) -> None:
        """Configure a server; nothing is attached until :meth:`start`."""
        self.spill_dir = Path(spill_dir)
        self.host = host
        self.port = int(port)
        self.result_format = result_format
        self.max_batch = int(max_batch)
        self.max_queue = int(max_queue)
        self.request_timeout = float(request_timeout)
        self.cache_entries = int(cache_entries)
        self.block_words = block_words
        self.batmap_cache_sets = int(batmap_cache_sets)
        self.max_requests = max_requests
        self.metrics = ServerMetrics()
        self.cache = LRUResultCache(cache_entries)
        self.engine: SpillQueryEngine | None = None
        self.batcher: RequestBatcher | None = None
        self.bound_host: str | None = None
        self.bound_port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._request_tasks: set = set()
        self._conn_tasks: set = set()
        self._served = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> tuple:
        """Attach the artifact, start the batcher and bind the socket.

        Returns ``(host, port)`` actually bound (resolving ``port=0``).
        """
        self._shutdown_event = asyncio.Event()
        self._reload_lock = asyncio.Lock()
        self.engine = self._attach_engine()
        self.batcher = RequestBatcher(
            self.engine, self.metrics,
            max_batch=self.max_batch, max_queue=self.max_queue)
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port, limit=MAX_LINE_BYTES)
        sockname = self._server.sockets[0].getsockname()
        self.bound_host, self.bound_port = sockname[0], int(sockname[1])
        return self.bound_host, self.bound_port

    def _attach_engine(self) -> SpillQueryEngine:
        """Attach the spill directory's current generation as a fresh engine."""
        sharded = ShardedCollection.from_spill(self.spill_dir)
        return SpillQueryEngine(
            sharded, block_words=self.block_words,
            batmap_cache_sets=self.batmap_cache_sets,
            result_format=self.result_format)

    async def _reload(self) -> dict:
        """Swap to the spill directory's current generation without downtime.

        The fresh attach happens in the executor (off the event loop); the
        batcher then routes new queries to the new engine while queries that
        were already queued finish against the old one, which is closed only
        after its last batch completes.  Cache entries from the old
        generation become unreachable automatically because cache keys are
        namespaced by the engine's artifact token.
        """
        async with self._reload_lock:
            loop = asyncio.get_running_loop()
            try:
                engine = await loop.run_in_executor(None, self._attach_engine)
            except (DatasetError, OSError) as exc:
                # The artifact on disk is damaged or mid-commit.  The old
                # engine is untouched and keeps serving; the caller gets a
                # structured error naming the damage so it can repair (or
                # wait for the mutator's commit) and retry the reload.
                raise ProtocolError(
                    f"reload failed, still serving generation "
                    f"{self.engine.generation}: {type(exc).__name__}: {exc} "
                    "— run 'repro verify' / 'repro repair' and retry",
                    code="reload-failed") from exc
            old = await self.batcher.swap_engine(engine)
            self.engine = engine
            old.close()
            return {
                "generation": engine.generation,
                "n_sets": engine.n_sets,
                "n_shards": engine.sharded.n_shards,
                "artifact_token": engine.artifact_token,
            }

    def request_shutdown(self) -> None:
        """Signal the serve loop to drain and stop (loop-thread safe only).

        Cross-thread callers must route through
        ``loop.call_soon_threadsafe(server.request_shutdown)`` — exactly
        what :class:`BackgroundServer` does.
        """
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`request_shutdown`, then :meth:`stop`."""
        await self._shutdown_event.wait()
        await self.stop()

    async def run(self) -> tuple:
        """Start, serve until shutdown, and return the final metrics snapshot."""
        await self.start()
        await self.serve_until_shutdown()
        return self.metrics.snapshot()

    async def stop(self) -> None:
        """Graceful shutdown: drain requests, close connections, detach mmaps."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._request_tasks:
            await asyncio.gather(*list(self._request_tasks),
                                 return_exceptions=True)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        if self.batcher is not None:
            await self.batcher.stop()
        if self.engine is not None:
            self.engine.close()

    # ------------------------------------------------------------------ #
    # Connection / request handling
    # ------------------------------------------------------------------ #
    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        write_lock = asyncio.Lock()
        local_tasks: set = set()
        loop = asyncio.get_running_loop()
        # A manual read loop instead of ``reader.readline()``: the stream
        # limit turns an oversized line into a fatal stream error, but the
        # connection must *survive* one bad request.  The oversized line is
        # answered with a structured error and discarded up to its newline;
        # pipelined requests after it still execute.
        buffer = bytearray()
        discarding = False
        try:
            while not self._shutdown_event.is_set():
                newline = buffer.find(b"\n")
                if newline >= 0:
                    line = bytes(buffer[:newline + 1])
                    del buffer[:newline + 1]
                    if discarding:          # tail of an oversized line
                        discarding = False
                        continue
                    if len(line) > MAX_LINE_BYTES:
                        await self._send_error(
                            writer, write_lock, None, "bad-request",
                            f"request line exceeds {MAX_LINE_BYTES} bytes")
                        continue
                    request_task = loop.create_task(
                        self._handle_request(line, writer, write_lock))
                    for registry in (local_tasks, self._request_tasks):
                        registry.add(request_task)
                        request_task.add_done_callback(registry.discard)
                    continue
                if not discarding and len(buffer) > MAX_LINE_BYTES:
                    discarding = True
                    await self._send_error(
                        writer, write_lock, None, "bad-request",
                        f"request line exceeds {MAX_LINE_BYTES} bytes")
                if discarding:
                    buffer.clear()
                chunk = await reader.read(1 << 16)
                if not chunk:
                    break
                buffer += chunk
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            if local_tasks:
                await asyncio.gather(*list(local_tasks), return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._conn_tasks.discard(task)

    async def _handle_request(self, line: bytes, writer, write_lock) -> None:
        started = time.perf_counter()
        request_id = None
        try:
            request = decode_request(line)
            request_id = request.get("id")
            params = normalize_params(request)
            op = params["op"]
            if self._shutdown_event.is_set():
                raise ProtocolError("server is shutting down",
                                    code="shutting-down")
            result = await self._dispatch(op, params)
            self.metrics.record_request(op, time.perf_counter() - started)
            await self._send(writer, write_lock, ok_response(request_id, result))
        except ProtocolError as exc:
            await self._send_error(writer, write_lock, request_id,
                                   exc.code, str(exc))
        except QueueFullError as exc:
            await self._send_error(writer, write_lock, request_id,
                                   "overloaded", str(exc))
        except asyncio.TimeoutError:
            await self._send_error(
                writer, write_lock, request_id, "timeout",
                f"request exceeded {self.request_timeout}s deadline")
        except (IndexError, ValueError) as exc:
            await self._send_error(writer, write_lock, request_id,
                                   "bad-request", str(exc))
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception as exc:  # noqa: BLE001 — last-resort request isolation
            await self._send_error(writer, write_lock, request_id,
                                   "server-error", f"{type(exc).__name__}: {exc}")
        finally:
            self._served += 1
            if self.max_requests is not None and self._served >= self.max_requests:
                self.request_shutdown()

    async def _dispatch(self, op: str, params: dict):
        """Answer one normalised request, through cache and batcher."""
        if op == "ping":
            return "pong"
        if op == "stats":
            return self.engine.stats()
        if op == "metrics":
            snapshot = self.metrics.snapshot()
            snapshot["cache"] = self.cache.snapshot()
            snapshot["served_lines"] = self._served
            return snapshot
        if op == "reload":
            return await self._reload()
        # Cache keys are namespaced by the artifact token so a reload to a
        # new generation can never serve a stale pre-ingest result, and by
        # the engine's result format so dense- and sparse-served entries
        # (identical today, but format-dependent by contract) never alias.
        token = self.engine.artifact_token
        digest = (f"{token}:{self.engine.result_format}:{query_digest(params)}"
                  if op in CACHEABLE_OPS else None)
        if digest is not None:
            cached = self.cache.get(digest)
            if cached is not MISS:
                return cached
        future = self.batcher.submit(op, params)
        try:
            result = await asyncio.wait_for(future, self.request_timeout)
        except asyncio.TimeoutError:
            # wait_for cancelled the future; the drain loop skips done
            # (cancelled) entries, so the work is shed, not just abandoned.
            raise
        if digest is not None and self.engine.artifact_token == token:
            # A reload that raced this request may have executed it against
            # the *new* generation; skip the fill rather than poison the old
            # token's namespace.
            self.cache.put(digest, result)
        return result

    async def _send(self, writer, write_lock, message: dict) -> None:
        async with write_lock:
            writer.write(encode_message(message))
            await writer.drain()

    async def _send_error(self, writer, write_lock, request_id,
                          code: str, message: str) -> None:
        self.metrics.record_error(code)
        try:
            await self._send(writer, write_lock,
                             error_response(request_id, code, message))
        except (ConnectionResetError, BrokenPipeError):
            pass


class BackgroundServer:
    """A :class:`BatmapServer` on a private event loop in a daemon thread.

    The synchronous harness for tests, the latency benchmark and the CLI's
    ``--max-requests`` smoke path::

        with BackgroundServer(spill_dir, max_batch=32) as server:
            with ServeClient(server.host, server.port) as client:
                client.ping()

    ``start()`` blocks until the socket is bound (or raises the startup
    error); ``stop()`` requests graceful shutdown and joins the thread.
    """

    def __init__(self, spill_dir, **server_kwargs) -> None:
        """Store the server configuration; nothing starts until :meth:`start`."""
        self._spill_dir = spill_dir
        self._server_kwargs = server_kwargs
        self.host: str | None = None
        self.port: int | None = None
        self.final_metrics: dict | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: BatmapServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "BackgroundServer":
        """Launch the server thread and wait until the socket is bound."""
        self._thread = threading.Thread(target=self._thread_main, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise TimeoutError("server did not start within 60s")
        if self._startup_error is not None:
            self._thread.join(timeout=10)
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Request graceful shutdown and join the server thread."""
        if self._loop is not None and self._server is not None:
            try:
                self._loop.call_soon_threadsafe(self._server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=60)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced via start()
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _main(self) -> None:
        server = BatmapServer(self._spill_dir, **self._server_kwargs)
        try:
            self.host, self.port = await server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._server = server
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await server.serve_until_shutdown()
        self.final_metrics = server.metrics.snapshot()
