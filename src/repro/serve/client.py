"""Synchronous TCP client for the `repro serve` protocol.

A thin blocking wrapper over one socket: it sends one request line, reads
one response line, and maps protocol errors to :class:`ServeError`.  Used
by the tests, the load-generator benchmark (one client per simulated user)
and the ``repro query`` CLI; anything async should speak the line protocol
directly.
"""

from __future__ import annotations

import json
import socket

from repro.serve.protocol import encode_message

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """An error response from the server, carrying its protocol code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.server.BatmapServer`.

    Requests are issued one at a time per client (send, then block for the
    response); concurrency is modelled with one client per thread, which is
    exactly how the latency benchmark drives the server.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        """Connect to ``host:port``; ``timeout`` bounds every socket wait."""
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------------ #
    def request(self, op: str, **params):
        """Send one request and return its ``result`` (or raise ServeError)."""
        self._next_id += 1
        request_id = self._next_id
        self._file.write(encode_message({"id": request_id, "op": op, **params}))
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        response = json.loads(raw)
        if response.get("id") != request_id:
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}")
        if response.get("ok"):
            return response["result"]
        error = response.get("error") or {}
        raise ServeError(error.get("code", "server-error"),
                         error.get("message", "malformed error response"))

    # Convenience wrappers, one per operation -------------------------- #
    def ping(self) -> str:
        """Round-trip liveness check."""
        return self.request("ping")

    def stats(self) -> dict:
        """Summary of the attached artifact."""
        return self.request("stats")

    def metrics(self) -> dict:
        """Live server counters (latency percentiles, cache, batching)."""
        return self.request("metrics")

    def reload(self) -> dict:
        """Swap the server to the spill directory's current generation."""
        return self.request("reload")

    def member(self, set_id: int, elements) -> list:
        """Membership of ``elements`` in set ``set_id`` (list of bools)."""
        return self.request("member", set=int(set_id),
                            elements=[int(e) for e in elements])

    def count(self, pairs) -> list:
        """Intersection counts for a list of ``(i, j)`` set pairs."""
        return self.request("count",
                            pairs=[[int(i), int(j)] for i, j in pairs])

    def multiway(self, sets) -> dict:
        """Exact multiway intersection of several sets."""
        return self.request("multiway", sets=[int(s) for s in sets])

    def topk(self, set_id: int, k: int) -> list:
        """Top-``k`` most similar sets to ``set_id`` as ``[[j, count], ...]``."""
        return self.request("topk", set=int(set_id), k=int(k))

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
