"""Synchronous TCP client for the `repro serve` protocol.

A thin blocking wrapper over one socket: it sends one request line, reads
one response line, and maps protocol errors to :class:`ServeError`.  Used
by the tests, the load-generator benchmark (one client per simulated user)
and the ``repro query`` CLI; anything async should speak the line protocol
directly.
"""

from __future__ import annotations

import json
import socket
import time

from repro.serve.protocol import encode_message

__all__ = ["ServeClient", "ServeError"]


class ServeError(Exception):
    """An error response from the server, carrying its protocol code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.server.BatmapServer`.

    Requests are issued one at a time per client (send, then block for the
    response); concurrency is modelled with one client per thread, which is
    exactly how the latency benchmark drives the server.

    A dropped connection (server restart, reset mid-flight) is retried
    transparently: the client reconnects and resends the request up to
    ``retries`` times with exponential backoff.  Every protocol operation
    is idempotent — queries are pure reads and ``reload`` converges on the
    directory's committed generation — so resending a possibly-executed
    request is safe.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 60.0,
                 retries: int = 2, backoff: float = 0.05) -> None:
        """Connect to ``host:port``; ``timeout`` bounds every socket wait.

        ``retries`` is the number of reconnect attempts after a connection
        failure (0 disables retrying); ``backoff`` is the first retry delay
        in seconds, doubling per attempt.
        """
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retries = max(0, int(retries))
        self._backoff = backoff
        self._sock = None
        self._file = None
        self._next_id = 0
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout)
        self._file = self._sock.makefile("rwb")

    def _disconnect(self) -> None:
        try:
            if self._file is not None:
                self._file.close()
        except OSError:
            pass
        finally:
            self._file = None
        try:
            if self._sock is not None:
                self._sock.close()
        except OSError:
            pass
        finally:
            self._sock = None

    # ------------------------------------------------------------------ #
    def request(self, op: str, **params):
        """Send one request and return its ``result`` (or raise ServeError)."""
        self._next_id += 1
        request_id = self._next_id
        line = encode_message({"id": request_id, "op": op, **params})
        last_error = None
        for attempt in range(self._retries + 1):
            if attempt:
                self._disconnect()
                time.sleep(self._backoff * (2 ** (attempt - 1)))
                try:
                    self._connect()
                except OSError as exc:
                    last_error = exc
                    continue
            try:
                return self._roundtrip(line, request_id)
            except (ConnectionError, OSError) as exc:
                last_error = exc
        raise ConnectionError(
            f"request failed after {self._retries + 1} attempts: "
            f"{last_error}") from last_error

    def _roundtrip(self, line: bytes, request_id: int):
        if self._file is None:
            self._connect()
        self._file.write(line)
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        response = json.loads(raw)
        if response.get("id") != request_id:
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}")
        if response.get("ok"):
            return response["result"]
        error = response.get("error") or {}
        raise ServeError(error.get("code", "server-error"),
                         error.get("message", "malformed error response"))

    # Convenience wrappers, one per operation -------------------------- #
    def ping(self) -> str:
        """Round-trip liveness check."""
        return self.request("ping")

    def stats(self) -> dict:
        """Summary of the attached artifact."""
        return self.request("stats")

    def metrics(self) -> dict:
        """Live server counters (latency percentiles, cache, batching)."""
        return self.request("metrics")

    def reload(self) -> dict:
        """Swap the server to the spill directory's current generation."""
        return self.request("reload")

    def member(self, set_id: int, elements) -> list:
        """Membership of ``elements`` in set ``set_id`` (list of bools)."""
        return self.request("member", set=int(set_id),
                            elements=[int(e) for e in elements])

    def count(self, pairs) -> list:
        """Intersection counts for a list of ``(i, j)`` set pairs."""
        return self.request("count",
                            pairs=[[int(i), int(j)] for i, j in pairs])

    def multiway(self, sets) -> dict:
        """Exact multiway intersection of several sets."""
        return self.request("multiway", sets=[int(s) for s in sets])

    def topk(self, set_id: int, k: int) -> list:
        """Top-``k`` most similar sets to ``set_id`` as ``[[j, count], ...]``."""
        return self.request("topk", set=int(set_id), k=int(k))

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the connection (idempotent)."""
        self._disconnect()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
