"""Line-delimited JSON protocol of `repro serve`.

Every request is one JSON object on one line; every response is one JSON
object on one line.  Requests carry an optional ``id`` echoed verbatim in
the response, so a client may pipeline several requests on one connection
and match responses by id (the server handles each request concurrently,
so response order is not guaranteed).

Request shape::

    {"id": 7, "op": "count", "pairs": [[0, 1], [2, 5]]}

Response shape::

    {"id": 7, "ok": true, "result": [3, 0]}
    {"id": 7, "ok": false, "error": {"code": "bad-request", "message": "..."}}

Operations (see ``docs/serving.md`` for the full reference):

========== =============================================== ================
op         parameters                                      result
========== =============================================== ================
`ping`     —                                               ``"pong"``
`stats`    —                                               artifact summary
`metrics`  —                                               server counters
`reload`   —                                               new generation info
`member`   ``set`` (int), ``elements`` (list of ints)      list of bools
`count`    ``pairs`` (list of ``[i, j]``)                  list of ints
`multiway` ``sets`` (list of >= 2 distinct ints)           elements object
`topk`     ``set`` (int), ``k`` (int >= 1)                 ``[[j, count]]``
========== =============================================== ================

``reload`` re-attaches the spill directory in place — after an out-of-band
``repro ingest --append`` / ``repro delete`` / ``repro compact``, it swaps
the serving engine to the new generation with no dropped requests (queries
queued before the reload answer from the old generation, queries after it
from the new one).

This module is pure data-plane: validation, canonicalisation and digests.
It never touches sockets or NumPy, so both the asyncio server and the
synchronous test client share it.
"""

from __future__ import annotations

import hashlib
import json

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "CACHEABLE_OPS",
    "ERROR_CODES",
    "ProtocolError",
    "decode_request",
    "normalize_params",
    "query_digest",
    "encode_message",
    "ok_response",
    "error_response",
]

PROTOCOL_VERSION = 1

#: Upper bound on one request line (also the asyncio stream limit).  A
#: million-element membership probe fits comfortably; anything larger should
#: be split — the batcher would serialise it into one giant gather anyway.
MAX_LINE_BYTES = 1 << 20

OPS = ("ping", "stats", "metrics", "reload",
       "member", "count", "multiway", "topk")

#: Operations whose results are immutable functions of the attached artifact
#: *generation* and may therefore be cached (the server namespaces their
#: digests with the engine's artifact token).  ``ping`` is trivial,
#: ``stats``/``metrics`` must reflect live state, and ``reload`` is a
#: lifecycle action, not a query.
CACHEABLE_OPS = frozenset({"member", "count", "multiway", "topk"})

ERROR_CODES = (
    "bad-request",   # malformed JSON / invalid parameters
    "unknown-op",    # op missing or not in OPS
    "timeout",       # per-request deadline expired before the batch ran
    "overloaded",    # bounded request queue is full (backpressure)
    "shutting-down", # server is draining; retry against a live instance
    "reload-failed", # reload target damaged/mid-commit; old engine kept serving
    "server-error",  # unexpected failure while executing the query
)


class ProtocolError(ValueError):
    """A request that cannot be executed, with its wire-level error code."""

    def __init__(self, message: str, code: str = "bad-request") -> None:
        super().__init__(message)
        self.code = code


def decode_request(line) -> dict:
    """Parse one request line into a dict, checking only the envelope.

    Raises :class:`ProtocolError` (``bad-request``) on malformed JSON or a
    non-object payload.  Operation and parameter validation is
    :func:`normalize_params`'s job, so a request with a bad ``op`` still
    gets its ``id`` echoed in the error response.
    """
    if isinstance(line, (bytes, bytearray)):
        line = line.decode("utf-8", errors="replace")
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(request).__name__}")
    return request


def _require_int(value, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"{name} must be an integer, got {value!r}")
    return value


def _require_int_list(value, name: str) -> list:
    if not isinstance(value, list):
        raise ProtocolError(f"{name} must be a list of integers, got {value!r}")
    return [_require_int(v, f"{name}[{k}]") for k, v in enumerate(value)]


def normalize_params(request: dict) -> dict:
    """Validate and canonicalise one decoded request's parameters.

    Returns ``{"op": ..., **params}`` with every parameter in a canonical
    form (plain ints, nested lists), so that two logically identical
    requests produce identical dicts — the property :func:`query_digest`
    needs for cache keys.  Raises :class:`ProtocolError` on an unknown op
    (``unknown-op``) or bad parameters (``bad-request``).
    """
    op = request.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {list(OPS)}",
                            code="unknown-op")
    if op in ("ping", "stats", "metrics", "reload"):
        return {"op": op}
    if op == "member":
        return {
            "op": op,
            "set": _require_int(request.get("set"), "set"),
            "elements": _require_int_list(request.get("elements"), "elements"),
        }
    if op == "count":
        raw = request.get("pairs")
        if not isinstance(raw, list):
            raise ProtocolError(f"pairs must be a list of [i, j] pairs, got {raw!r}")
        pairs = []
        for k, pair in enumerate(raw):
            if not isinstance(pair, list) or len(pair) != 2:
                raise ProtocolError(f"pairs[{k}] must be a [i, j] pair, got {pair!r}")
            pairs.append([_require_int(pair[0], f"pairs[{k}][0]"),
                          _require_int(pair[1], f"pairs[{k}][1]")])
        return {"op": op, "pairs": pairs}
    if op == "multiway":
        sets = _require_int_list(request.get("sets"), "sets")
        if len(sets) < 2:
            raise ProtocolError(f"multiway needs at least two sets, got {len(sets)}")
        if len(set(sets)) != len(sets):
            raise ProtocolError("multiway set indices must be distinct")
        return {"op": op, "sets": sets}
    if op == "topk":
        k = _require_int(request.get("k"), "k")
        if k < 1:
            raise ProtocolError(f"k must be >= 1, got {k}")
        return {"op": op, "set": _require_int(request.get("set"), "set"), "k": k}
    raise ProtocolError(f"unknown op {op!r}", code="unknown-op")  # pragma: no cover


def query_digest(params: dict) -> str:
    """Stable digest of one normalised request — the result-cache key.

    Canonical JSON (sorted keys, no whitespace) hashed with blake2b; two
    requests share a digest iff :func:`normalize_params` maps them to the
    same operation and parameters.
    """
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def encode_message(message: dict) -> bytes:
    """Serialise one protocol message to its wire form (JSON + newline)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def ok_response(request_id, result) -> dict:
    """Build a success response envelope."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, code: str, message: str) -> dict:
    """Build an error response envelope with one of :data:`ERROR_CODES`."""
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}
