"""LRU result cache for served queries, keyed on generation-scoped digests.

Served results are immutable functions of one *generation* of the attached
artifact — but the artifact itself is no longer immutable: ``repro ingest
--append``, ``repro delete`` and ``repro compact`` all produce a new
generation that a live server picks up via the ``reload`` operation.  The
cache therefore never invalidates entries explicitly; instead the server
namespaces every key with the engine's artifact token
(:attr:`repro.core.sharded.ShardedCollection.content_token` — generation
counter plus a digest of the manifest and tombstone bytes), so keys from a
superseded generation simply stop matching and age out of the LRU.  A
pre-ingest result can never answer a post-ingest query.

Keys are ``"{artifact_token}:{query_digest}"`` with the digest from
:func:`repro.serve.protocol.query_digest`; values are the already-JSON-able
result payloads, so a hit skips both the NumPy work and the result
conversion.

The cache is thread-safe: the event loop reads it while executor threads
(via the batcher) populate it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["LRUResultCache", "MISS"]

#: Sentinel distinguishing "not cached" from a cached ``None`` result.
MISS = object()


class LRUResultCache:
    """A bounded least-recently-used mapping with hit/miss counters.

    ``capacity <= 0`` disables caching entirely (every lookup misses, no
    entry is stored) — the cache-off arm of the serving ablation.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        """Return the cached value for ``key``, or :data:`MISS`."""
        with self._lock:
            if key not in self._entries:
                self.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]

    def put(self, key: str, value) -> None:
        """Insert (or refresh) one entry, evicting the least recently used."""
        if self.capacity <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def snapshot(self) -> dict:
        """Counters and occupancy for the ``metrics`` operation."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
