"""Per-request latency and throughput counters for the serving layer.

The server records one latency sample per completed request (measured from
line-received to response-written, so queueing and batching delays are
included), batch-size samples per executed batch, and error counts by
protocol code.  :meth:`ServerMetrics.snapshot` folds them into a JSON-able
dict — the payload of the ``metrics`` operation and the raw material the
serving benchmark exports through the ``BENCH_*.json`` pipeline.

Samples are kept in bounded deques (newest-wins) so a long-lived server's
metrics stay O(1) in memory; totals are monotonic counters.
"""

from __future__ import annotations

import threading
from collections import Counter, deque

__all__ = ["ServerMetrics", "percentile"]

#: Latency samples retained per operation (newest retained, oldest dropped).
SAMPLE_WINDOW = 65536


def percentile(values, q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of a sequence of floats.

    Deterministic and dependency-free — the convention the serving
    benchmark's recorded p50/p99 follow.  Returns 0.0 for an empty input.
    """
    data = sorted(values)
    if not data:
        return 0.0
    if q <= 0:
        return float(data[0])
    rank = max(1, -(-len(data) * q // 100))  # ceil(len * q / 100)
    return float(data[min(len(data), int(rank)) - 1])


class ServerMetrics:
    """Thread-safe counters shared by the event loop and executor threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests_by_op: Counter = Counter()
        self.errors_by_code: Counter = Counter()
        self.latencies: dict[str, deque] = {}
        self.batch_sizes: deque = deque(maxlen=SAMPLE_WINDOW)
        self.batches = 0
        self.batched_requests = 0
        self.queue_high_water = 0

    def record_request(self, op: str, seconds: float) -> None:
        """Record one successfully answered request and its latency."""
        with self._lock:
            self.requests_by_op[op] += 1
            window = self.latencies.get(op)
            if window is None:
                window = self.latencies[op] = deque(maxlen=SAMPLE_WINDOW)
            window.append(seconds)

    def record_error(self, code: str) -> None:
        """Record one error response by protocol error code."""
        with self._lock:
            self.errors_by_code[code] += 1

    def record_batch(self, size: int) -> None:
        """Record one executed batch of coalesced requests."""
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.batch_sizes.append(size)

    def observe_queue(self, depth: int) -> None:
        """Track the request queue's high-water mark."""
        with self._lock:
            if depth > self.queue_high_water:
                self.queue_high_water = depth

    def snapshot(self) -> dict:
        """All counters plus per-op latency percentiles, JSON-able."""
        with self._lock:
            per_op = {}
            for op, window in self.latencies.items():
                samples = list(window)
                per_op[op] = {
                    "count": self.requests_by_op[op],
                    "p50_ms": percentile(samples, 50) * 1e3,
                    "p90_ms": percentile(samples, 90) * 1e3,
                    "p99_ms": percentile(samples, 99) * 1e3,
                    "max_ms": (max(samples) * 1e3) if samples else 0.0,
                }
            return {
                "requests_total": sum(self.requests_by_op.values()),
                "requests_by_op": dict(self.requests_by_op),
                "errors_by_code": dict(self.errors_by_code),
                "latency_by_op": per_op,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "mean_batch_size": (self.batched_requests / self.batches
                                    if self.batches else 0.0),
                "max_batch_size": max(self.batch_sizes, default=0),
                "queue_high_water": self.queue_high_water,
            }
