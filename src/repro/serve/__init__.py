"""Online query serving over spilled batmap collections (`repro serve`).

The serving layer turns a PR-5 spill artifact — memory-mapped
:class:`~repro.core.batch.WidthClassIndex` buffers plus the persisted hash
family — into a long-lived TCP service answering membership probes, pairwise
and multiway intersections and top-k-similar-set queries, with request
batching, an LRU result cache and per-request latency metrics.  Everything is
stdlib ``asyncio`` + NumPy; served results are bit-identical to the
equivalent direct :class:`~repro.core.collection.BatmapCollection` /
:class:`~repro.core.sharded.ShardedCollection` calls.

See ``docs/serving.md`` for the protocol reference and operational guide.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.engine import SpillQueryEngine
from repro.serve.server import BackgroundServer, BatmapServer

__all__ = [
    "BackgroundServer",
    "BatmapServer",
    "ServeClient",
    "ServeError",
    "SpillQueryEngine",
]
