"""Query execution over an attached spill artifact.

:class:`SpillQueryEngine` is the synchronous, NumPy-facing half of the
server: it attaches every shard of a :class:`~repro.core.sharded.ShardedCollection`
once (memory-mapped — the page cache shares the bytes across processes) and
answers each query family with the narrowest existing vectorised primitive:

* **membership** — one permuted-value gather per hash function shared across
  *all* elements of *all* coalesced probes (the probe arithmetic of
  :meth:`repro.core.batmap.Batmap.contains`, vectorised and amortised);
* **pair counts** — :meth:`~repro.core.batch.WidthClassIndex.pairwise_slots`
  within a shard, :meth:`~repro.core.batch.WidthClassIndex.pairwise_index`
  across shards, grouped so one SWAR fold serves many coalesced pairs;
* **top-k** — one :meth:`~repro.core.batch.WidthClassIndex.cross_index`
  rectangle per (query shard, target shard) pair, shared by every coalesced
  top-k request;
* **multiway** — :func:`repro.extensions.multiway.multiway_intersection`
  with the engine itself as the batmap provider: batmaps are *rehydrated*
  on demand from the packed device rows (byte-identical to direct builds,
  because spilling is injective) and kept in a small LRU.

Every public method returns exactly what the equivalent direct
:class:`~repro.core.collection.BatmapCollection` call returns — the
bit-identity contract ``tests/test_serve_engine.py`` pins.

Set indices in every query are **live** indices: tombstoned sets (see
:meth:`~repro.core.sharded.ShardedCollection.delete`) are invisible — they
cannot be probed, never appear among top-k candidates or count-row columns,
and the index space is dense over the surviving sets, exactly as if the
collection had been built from scratch without them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.core.batmap import Batmap
from repro.core.config import DEFAULT_CONFIG
from repro.extensions.multiway import MultiwayResult, multiway_intersection
from repro.utils.bits import unpack_words_to_bytes
from repro.utils.validation import require

__all__ = ["SpillQueryEngine", "DEFAULT_BATMAP_CACHE_SETS"]

#: Rehydrated batmaps kept resident (multiway pivots/probes revisit sets).
DEFAULT_BATMAP_CACHE_SETS = 256


class SpillQueryEngine:
    """Serve membership / count / top-k / multiway queries from one spill.

    The engine is constructed once per server process and shared by every
    request; methods are thread-safe for the single-executor-thread model
    the batcher uses (one batch executes at a time) plus concurrent cheap
    reads (``stats``).  ``close()`` drops every attached index and cached
    batmap so the memory maps are released deterministically.
    """

    def __init__(self, sharded, *, block_words=None,
                 batmap_cache_sets: int = DEFAULT_BATMAP_CACHE_SETS,
                 result_format: str = "dense") -> None:
        """Attach all shards of ``sharded`` and precompute slot mappings.

        ``result_format`` selects the top-k serving strategy: ``"dense"``
        (default) materialises full count rows per query; ``"sparse"``
        streams shard rectangles through a per-query heap-threshold
        accumulator, skipping whole rectangles once the heap floor exceeds
        the target shard's width bound.  Both return identical rankings.
        """
        require(sharded.n_sets > 0, "cannot serve an empty collection")
        require(result_format in ("dense", "sparse"),
                f"result_format must be 'dense' or 'sparse', got {result_format!r}")
        self.result_format = result_format
        self._shard_bounds: list | None = None
        self.sharded = sharded
        self.family = sharded.family          # raises on pre-family spills
        self.config = DEFAULT_CONFIG.with_(payload_bits=sharded.payload_bits)
        self.n_sets = sharded.n_sets          # live sets (tombstones excluded)
        self.generation = sharded.generation
        self.universe_size = sharded.universe_size
        #: live index -> physical (storage) index; identity when no tombstones
        self._live_ids = sharded.live_ids
        self._has_tombstones = sharded.tombstones.size > 0
        self._shard_los = np.array([s.lo for s in sharded.shards], dtype=np.int64)
        self._indexes = [
            sharded.attach(s, block_words=block_words)
            for s in range(sharded.n_shards)
        ]
        #: per shard: local set index -> width-sorted slot (inverse of order)
        self._ranks = []
        for shard in sharded.shards:
            rank = np.empty(shard.n_sets, dtype=np.int64)
            rank[shard.order] = np.arange(shard.n_sets)
            self._ranks.append(rank)
        #: per shard: element -> sorted list of local sets that failed it
        self._failed_by_shard = [shard.failed for shard in sharded.shards]
        self._batmaps: OrderedDict = OrderedDict()
        self._batmap_cache_sets = int(batmap_cache_sets)
        self._batmap_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def shard_of(self, set_ids: np.ndarray) -> np.ndarray:
        """Shard index holding each *physical* set id."""
        return np.searchsorted(self._shard_los, set_ids, side="right") - 1

    def _slot_of(self, shard: int, set_ids: np.ndarray) -> np.ndarray:
        """Width-sorted slots of physical ``set_ids`` living in ``shard``."""
        return self._ranks[shard][set_ids - self._shard_los[shard]]

    def check_set_ids(self, set_ids) -> np.ndarray:
        """Validate live set indices, returning them as an int64 array."""
        ids = np.asarray(set_ids, dtype=np.int64).ravel()
        if ids.size and (ids.min() < 0 or ids.max() >= self.n_sets):
            bad = int(ids[(ids < 0) | (ids >= self.n_sets)][0])
            raise IndexError(
                f"set index {bad} out of range for {self.n_sets} sets")
        return ids

    def _physical(self, live: np.ndarray) -> np.ndarray:
        """Map validated live indices to physical storage indices."""
        return self._live_ids[live]

    # ------------------------------------------------------------------ #
    # Batmap rehydration (multiway / decode serving)
    # ------------------------------------------------------------------ #
    def batmap(self, set_index: int) -> Batmap:
        """Rehydrate one batmap from its packed device row (LRU-cached).

        The spill stores each set's interleaved Figure-4 device bytes
        verbatim, so de-interleaving recovers the exact ``(3, r)`` entries
        a direct build produces; ``set_size`` is reconstructed from the
        two-copies invariant plus the shard's failed list.  This is what
        makes the engine a drop-in batmap provider for
        :func:`~repro.extensions.multiway.multiway_intersection`.
        """
        set_index = int(set_index)
        self.check_set_ids([set_index])
        with self._batmap_lock:
            cached = self._batmaps.get(set_index)
            if cached is not None:
                self._batmaps.move_to_end(set_index)
                return cached
        physical = int(self._live_ids[set_index])
        shard = int(self.shard_of(np.array([physical]))[0])
        index = self._indexes[shard]
        slot = int(self._slot_of(shard, np.array([physical]))[0])
        width = int(index.widths[slot])
        offset = int(index.offsets[slot])
        device = unpack_words_to_bytes(np.asarray(index.words[offset:offset + width]))
        r = 4 * width // 3
        r0 = self.sharded.r0
        blocks = r // r0
        entries = np.empty((3, r), dtype=np.uint8)
        interleaved = device.reshape(blocks, 3 * r0)
        for t in range(3):
            entries[t] = interleaved[:, t * r0:(t + 1) * r0].reshape(r)
        failed_pairs = self._failed_by_shard[shard]
        local = physical - int(self._shard_los[shard])
        failed = tuple(int(e) for e, li in failed_pairs.tolist() if li == local)
        stored = int(np.count_nonzero(entries)) // 2
        bm = Batmap(
            family=self.family,
            config=self.config,
            r=r,
            entries=entries,
            set_size=stored + len(failed),
            failed=failed,
        )
        with self._batmap_lock:
            self._batmaps[set_index] = bm
            self._batmaps.move_to_end(set_index)
            while len(self._batmaps) > self._batmap_cache_sets:
                self._batmaps.popitem(last=False)
        return bm

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def members_batch(self, queries) -> list:
        """Answer many ``(set_id, elements)`` membership probes at once.

        The permutation application — the only O(elements) work that does
        not depend on the probed set — runs **once per hash function over
        the concatenation of every query's elements**, then each query
        re-masks its slice with its own batmap's ``r - 1`` and gathers.
        Semantics match :meth:`repro.core.batmap.Batmap.contains`
        element-for-element: out-of-universe ids are non-members, failed
        insertions are members.
        """
        if not queries:
            return []
        arrays = [np.asarray(elements, dtype=np.int64).ravel()
                  for _, elements in queries]
        bounds = np.cumsum([0] + [a.size for a in arrays])
        all_elements = (np.concatenate(arrays) if bounds[-1]
                        else np.zeros(0, dtype=np.int64))
        valid = (all_elements >= 0) & (all_elements < self.universe_size)
        safe = np.where(valid, all_elements, 0)
        shift = np.int64(self.family.shift)
        payload_mask = np.int64(self.config.payload_mask)
        permuted = [self.family.permuted(t, safe) for t in range(3)]
        payloads = [(permuted[t] >> shift) + 1 for t in range(3)]

        results = []
        for k, (set_id, _) in enumerate(queries):
            self.check_set_ids([set_id])
            bm = self.batmap(int(set_id))
            sl = slice(int(bounds[k]), int(bounds[k + 1]))
            member = np.zeros(bounds[k + 1] - bounds[k], dtype=bool)
            position_mask = np.int64(bm.r - 1)
            for t in range(3):
                entries = bm.entries[t, permuted[t][sl] & position_mask]
                # NULL entries extract payload 0; true payloads are >= 1,
                # so no explicit empty-slot test is needed.
                member |= (entries.astype(np.int64) & payload_mask) == payloads[t][sl]
            if bm.failed:
                member |= np.isin(arrays[k], np.asarray(bm.failed, dtype=np.int64))
            member &= valid[sl]
            results.append(member)
        return results

    def members(self, set_id: int, elements) -> np.ndarray:
        """Membership of ``elements`` in set ``set_id`` (bool array)."""
        return self.members_batch([(set_id, elements)])[0]

    # ------------------------------------------------------------------ #
    # Pairwise counts
    # ------------------------------------------------------------------ #
    def count_pairs(self, pairs) -> np.ndarray:
        """Stored-copy intersection counts for explicit global ``(i, j)`` pairs.

        Pairs are grouped by the (shard, shard) combination of their
        endpoints; each group runs as one aligned SWAR fold
        (``pairwise_slots`` within a shard, ``pairwise_index`` across two).
        Bit-identical to ``BatmapCollection.count_pairs`` on the same sets.
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        require(pairs.ndim == 2 and pairs.shape[1] == 2,
                f"pairs must have shape (k, 2), got {pairs.shape}")
        if pairs.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        self.check_set_ids(pairs)
        pairs = self._physical(pairs)
        # Counting is symmetric; orient every pair with the lower shard first
        # so each unordered shard combination forms a single group.
        shards = self.shard_of(pairs)
        flip = shards[:, 0] > shards[:, 1]
        left = np.where(flip, pairs[:, 1], pairs[:, 0])
        right = np.where(flip, pairs[:, 0], pairs[:, 1])
        shard_left = np.where(flip, shards[:, 1], shards[:, 0])
        shard_right = np.where(flip, shards[:, 0], shards[:, 1])
        out = np.empty(pairs.shape[0], dtype=np.int64)
        combos = np.stack([shard_left, shard_right], axis=1)
        for p, q in np.unique(combos, axis=0).tolist():
            mask = (shard_left == p) & (shard_right == q)
            a_slots = self._slot_of(p, left[mask])
            b_slots = self._slot_of(q, right[mask])
            if p == q:
                out[mask] = self._indexes[p].pairwise_slots(a_slots, b_slots)
            else:
                out[mask] = self._indexes[p].pairwise_index(
                    self._indexes[q], a_slots, b_slots)
        return out

    def count_rows(self, set_ids) -> np.ndarray:
        """Dense count rows: ``out[k, j] = |set_ids[k] ∩ set_j|`` for all ``j``.

        One ``cross_index`` rectangle per (query shard, target shard) pair,
        shared across every queried row — the primitive behind coalesced
        top-k serving.  Row ``k`` equals row ``set_ids[k]`` of
        ``count_all_pairs()`` bit-for-bit.  Rectangles are computed in
        physical (storage) space, then tombstoned columns are dropped so
        every returned column is a live set in live index order.
        """
        set_ids = self.check_set_ids(set_ids)
        if set_ids.size == 0:
            return np.zeros((0, self.n_sets), dtype=np.int64)
        physical = self._physical(set_ids)
        out = np.zeros((set_ids.size, self.sharded.n_physical_sets),
                       dtype=np.int64)
        row_shards = self.shard_of(physical)
        for p in np.unique(row_shards).tolist():
            row_mask = row_shards == p
            row_slots = self._slot_of(p, physical[row_mask])
            row_positions = np.nonzero(row_mask)[0]
            for q in range(self.sharded.n_shards):
                block = self._indexes[p].cross_index(self._indexes[q], row_slots, None)
                cols_global = self.sharded.shards[q].global_order
                out[np.ix_(row_positions, cols_global)] = block
        if self._has_tombstones:
            out = out[:, self._live_ids]
        return out

    def top_k_batch(self, requests) -> list:
        """Answer many ``(set_id, k)`` top-k-similar-set queries at once.

        With ``result_format="dense"``, all query rows are gathered with one
        :meth:`count_rows` call; each result ranks the other sets by
        descending intersection count with ties broken by ascending set
        index (the :meth:`~repro.core.batch.BatchPairCounter.top_k`
        convention), the queried set itself excluded.  The ``"sparse"``
        engine answers the same queries through per-query heap accumulators
        without ever holding a full count row (identical rankings — the
        bit-identity tests pin it).
        """
        if not requests:
            return []
        if self.result_format == "sparse":
            return self._top_k_batch_sparse(requests)
        set_ids = [int(set_id) for set_id, _ in requests]
        rows = self.count_rows(set_ids)
        results = []
        for k_row, (set_id, k) in enumerate(requests):
            row = rows[k_row].copy()
            row[int(set_id)] = -1           # exclude self from the ranking
            limit = min(int(k), self.n_sets - 1)
            ranked = np.lexsort((np.arange(self.n_sets), -row))[:limit]
            results.append([(int(j), int(rows[k_row, j])) for j in ranked])
        return results

    def _shard_bound(self, q: int) -> int:
        """Count upper bound over shard ``q``'s live slots (cached).

        ``2 * width + failed`` per slot (:func:`~repro.core.batch.width_slot_bounds`
        — the layout is the only thing resident for an mmap'd shard), with
        tombstoned slots zeroed so fully-deleted shards prune outright.
        """
        if self._shard_bounds is None:
            self._shard_bounds = [None] * self.sharded.n_shards
        if self._shard_bounds[q] is None:
            from repro.core.batch import width_slot_bounds

            shard = self.sharded.shards[q]
            failed = None
            if shard.failed.size:
                failed = np.bincount(
                    shard.failed[:, 1].astype(np.int64),
                    minlength=shard.n_sets)[shard.order]
            bounds = width_slot_bounds(self._indexes[q].widths, failed)
            if self._has_tombstones:
                live = self.sharded.live_positions[shard.global_order]
                bounds = bounds.copy()
                bounds[live < 0] = 0
            self._shard_bounds[q] = int(bounds.max()) if bounds.size else 0
        return self._shard_bounds[q]

    def _top_k_batch_sparse(self, requests) -> list:
        """Heap-threshold top-k: stream shard rectangles, prune below floors."""
        from repro.core.results import TopKAccumulator

        set_ids = self.check_set_ids([int(set_id) for set_id, _ in requests])
        physical = self._physical(set_ids)
        row_shards = self.shard_of(physical)
        live_pos = (self.sharded.live_positions if self._has_tombstones
                    else None)
        limits = [min(int(k), self.n_sets - 1) for _, k in requests]
        accs = [TopKAccumulator(limit) if limit > 0 else None
                for limit in limits]
        for p in np.unique(row_shards).tolist():
            in_shard = [i for i in np.nonzero(row_shards == p)[0].tolist()
                        if accs[i] is not None]
            for q in range(self.sharded.n_shards):
                bound = self._shard_bound(q)
                # Strict-floor skip, per query: a rectangle whose best
                # possible count is below a full heap's weakest kept count
                # cannot change that query's result (ties still examined).
                needed = [i for i in in_shard if bound >= accs[i].floor]
                if not needed:
                    continue
                slots = self._slot_of(p, physical[needed])
                block = self._indexes[p].cross_index(self._indexes[q], slots, None)
                cols_global = self.sharded.shards[q].global_order
                cols_live = (live_pos[cols_global] if live_pos is not None
                             else cols_global)
                alive = cols_live >= 0
                for bi, i in enumerate(needed):
                    keep = alive & (cols_live != set_ids[i])
                    cand = cols_live[keep]
                    accs[i].push(cand, cand, block[bi][keep])
        results = []
        for i, limit in enumerate(limits):
            if accs[i] is None:
                results.append([])
                continue
            ranked = accs[i].result(self.n_sets, fill_zeros=False).ranked()
            out = [(int(j), int(v)) for (j, _), v in ranked]
            if len(out) < limit:
                # Pad with zero-count sets in ascending live index order —
                # the same tail a dense sort returns.
                kept = {j for j, _ in out}
                kept.add(int(set_ids[i]))
                for j in range(self.n_sets):
                    if j in kept:
                        continue
                    out.append((j, 0))
                    if len(out) == limit:
                        break
            results.append(out)
        return results

    def top_k(self, set_id: int, k: int) -> list:
        """Top-``k`` most-similar sets to ``set_id`` as ``[(j, count), ...]``."""
        return self.top_k_batch([(set_id, k)])[0]

    # ------------------------------------------------------------------ #
    # Multiway
    # ------------------------------------------------------------------ #
    def multiway(self, set_indices) -> MultiwayResult:
        """Exact multiway intersection of several sets (batched probes).

        Delegates to :func:`~repro.extensions.multiway.multiway_intersection`
        with this engine as the batmap provider; rehydrated batmaps make the
        result identical to the in-memory collection's.
        """
        self.check_set_ids(list(set_indices))
        return multiway_intersection(self, set_indices)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def artifact_token(self) -> str:
        """Content token of the attached generation — the cache-key namespace.

        Changes whenever the artifact changes (append, delete, compaction),
        so results cached under one token can never answer queries against
        another generation of the collection.
        """
        return self.sharded.content_token

    def stats(self) -> dict:
        """Artifact summary served by the ``stats`` operation."""
        return {
            "n_sets": self.n_sets,
            "n_physical_sets": self.sharded.n_physical_sets,
            "n_tombstones": int(self.sharded.tombstones.size),
            "n_shards": self.sharded.n_shards,
            "generation": self.generation,
            "family_kind": self.sharded.family_kind,
            "artifact_token": self.artifact_token,
            "universe_size": self.universe_size,
            "r0": self.sharded.r0,
            "payload_bits": self.sharded.payload_bits,
            "total_packed_bytes": self.sharded.total_packed_bytes,
            "batmap_cache_sets": self._batmap_cache_sets,
            "result_format": self.result_format,
        }

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the attachments."""
        return self._closed

    def close(self) -> None:
        """Detach every shard index and drop cached batmaps (idempotent).

        Dropping the :class:`~repro.core.batch.WidthClassIndex` objects
        releases their memory-mapped ``words`` arrays — the clean-shutdown
        contract the server relies on.
        """
        self._indexes = []
        with self._batmap_lock:
            self._batmaps.clear()
        self._closed = True
