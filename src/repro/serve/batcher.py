"""Request coalescing: many concurrent queries, one vectorized engine call.

NumPy dispatch overhead dominates small queries — the same observation that
led ``core/bulk_build.py`` to place whole collections per scatter instead of
one element per call.  The serving analogue: requests that arrive while a
batch is executing accumulate in a bounded queue; the drain loop then takes
up to ``max_batch`` of them and executes each *operation group* with a
single engine call —

* all coalesced ``member`` probes share one permutation gather per hash
  function (:meth:`~repro.serve.engine.SpillQueryEngine.members_batch`);
* all coalesced ``count`` pairs concatenate into one grouped SWAR fold
  (:meth:`~repro.serve.engine.SpillQueryEngine.count_pairs`);
* all coalesced ``topk`` queries share one ``cross_index`` rectangle per
  shard pair (:meth:`~repro.serve.engine.SpillQueryEngine.top_k_batch`);
* ``multiway`` queries run per-request (their probe chains share nothing)
  but still inside the same executor trip.

Batches execute in the event loop's default thread-pool executor so the
loop keeps accepting connections while NumPy works.  ``max_batch=1``
disables coalescing — the batching-off arm of the E17 ablation.  A full
queue rejects instead of blocking (backpressure): the caller maps
:class:`QueueFullError` to an ``overloaded`` response.
"""

from __future__ import annotations

import asyncio

import numpy as np

__all__ = ["QueueFullError", "RequestBatcher"]


class QueueFullError(Exception):
    """Raised by :meth:`RequestBatcher.submit` when the bounded queue is full."""


class _EngineSwap:
    """Queue sentinel marking the point where a new engine takes over.

    Requests enqueued before the sentinel execute against the old engine;
    requests after it execute against the new one.  ``future`` resolves with
    the *old* engine once the swap is applied, so the caller can close it
    knowing no in-flight batch still reads its memory maps.
    """

    __slots__ = ("engine", "future")

    def __init__(self, engine, future) -> None:
        self.engine = engine
        self.future = future


def _member_result(mask: np.ndarray) -> list:
    return [bool(b) for b in mask]


def _multiway_result(result) -> dict:
    return {
        "elements": [int(x) for x in result.elements],
        "failed_involved": [int(x) for x in result.failed_involved],
        "size": int(result.size),
    }


def _topk_result(ranked) -> list:
    return [[j, count] for j, count in ranked]


class RequestBatcher:
    """Bounded queue plus drain loop turning request streams into batches.

    One batcher serves one :class:`~repro.serve.engine.SpillQueryEngine`.
    ``submit`` enqueues a request and returns a future resolved with the
    JSON-able result (or an exception); the drain task groups queued
    requests by operation and executes each group vectorised.
    """

    def __init__(self, engine, metrics, *, max_batch: int = 64,
                 max_queue: int = 1024) -> None:
        """Create a batcher; call :meth:`start` inside a running loop."""
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.engine = engine
        self.metrics = metrics
        self.max_batch = int(max_batch)
        self.max_queue = int(max_queue)
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None

    def start(self) -> None:
        """Create the queue and spawn the drain task on the running loop."""
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._task = asyncio.get_running_loop().create_task(self._drain())

    async def stop(self) -> None:
        """Cancel the drain task and fail any still-queued requests."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        if self._queue is not None:
            while not self._queue.empty():
                item = self._queue.get_nowait()
                future = item.future if isinstance(item, _EngineSwap) else item[2]
                if not future.done():
                    future.set_exception(
                        ConnectionResetError("server shutting down"))

    def submit(self, op: str, params: dict) -> asyncio.Future:
        """Enqueue one normalised request; the future carries its result.

        Raises :class:`QueueFullError` immediately when the queue is at
        capacity — requests are rejected, never silently delayed, so a
        saturated server degrades with explicit ``overloaded`` errors.
        """
        if self._queue is None:
            raise RuntimeError("batcher not started")
        future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((op, params, future))
        except asyncio.QueueFull:
            raise QueueFullError(
                f"request queue full ({self.max_queue} pending)") from None
        self.metrics.observe_queue(self._queue.qsize())
        return future

    async def swap_engine(self, engine) -> object:
        """Atomically hand all *subsequent* requests to ``engine``.

        A sentinel enters the queue behind every already-enqueued request,
        so those still execute against the current engine; once the drain
        loop reaches the sentinel it installs the new engine and this
        coroutine returns the old one — at that point no batch that could
        touch the old engine is queued or in flight, so the caller may
        ``close()`` it (releasing its memory maps) without racing a query.
        The live server's ``reload`` operation is exactly this plus a fresh
        :meth:`~repro.core.sharded.ShardedCollection.from_spill` attach.
        """
        if self._queue is None:
            raise RuntimeError("batcher not started")
        marker = _EngineSwap(engine, asyncio.get_running_loop().create_future())
        await self._queue.put(marker)
        return await marker.future

    def _apply_swap(self, swap: _EngineSwap) -> None:
        old, self.engine = self.engine, swap.engine
        if not swap.future.done():
            swap.future.set_result(old)

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if isinstance(first, _EngineSwap):
                self._apply_swap(first)
                continue
            batch = [first]
            swap = None
            while len(batch) < self.max_batch:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if isinstance(item, _EngineSwap):
                    # The batch collected so far predates the swap: run it
                    # on the old engine first, then install the new one.
                    swap = item
                    break
                batch.append(item)
            live = [(op, params, fut) for op, params, fut in batch
                    if not fut.done()]          # timed-out entries are skipped
            if not live:
                if swap is not None:
                    self._apply_swap(swap)
                continue
            self.metrics.record_batch(len(live))
            try:
                outcomes = await loop.run_in_executor(
                    None, self._execute, [(op, params) for op, params, _ in live])
            except asyncio.CancelledError:
                # Cancelled mid-batch (shutdown): the in-flight requests are
                # no longer in the queue, so stop()'s drain cannot fail
                # them — they must be failed here or they hang forever.
                for _, _, future in live:
                    if not future.done():
                        future.set_exception(
                            ConnectionResetError("server shutting down"))
                if swap is not None and not swap.future.done():
                    swap.future.set_exception(
                        ConnectionResetError("server shutting down"))
                raise
            for (_, _, future), (ok, value) in zip(live, outcomes):
                if future.done():
                    continue
                if ok:
                    future.set_result(value)
                else:
                    future.set_exception(value)
            if swap is not None:
                self._apply_swap(swap)

    # ------------------------------------------------------------------ #
    # Executor side (synchronous NumPy work)
    # ------------------------------------------------------------------ #
    def _execute(self, items) -> list:
        """Run one batch, grouped by op; returns ``[(ok, value_or_exc)]``.

        A failure while executing a *group* falls back to per-item
        execution, so one bad request cannot poison the results of the
        others it happened to be coalesced with.
        """
        outcomes: list = [None] * len(items)
        by_op: dict[str, list[int]] = {}
        for k, (op, _) in enumerate(items):
            by_op.setdefault(op, []).append(k)
        for op, positions in by_op.items():
            group = [items[k][1] for k in positions]
            try:
                results = self._execute_group(op, group)
                for k, result in zip(positions, results):
                    outcomes[k] = (True, result)
            except Exception:
                for k in positions:
                    try:
                        result = self._execute_group(op, [items[k][1]])[0]
                        outcomes[k] = (True, result)
                    except Exception as exc:
                        outcomes[k] = (False, exc)
        return outcomes

    def _execute_group(self, op: str, group: list) -> list:
        """Execute all same-op requests of one batch with one engine call."""
        engine = self.engine
        if op == "member":
            queries = [(p["set"], np.asarray(p["elements"], dtype=np.int64))
                       for p in group]
            return [_member_result(mask) for mask in engine.members_batch(queries)]
        if op == "count":
            lengths = [len(p["pairs"]) for p in group]
            flat = [pair for p in group for pair in p["pairs"]]
            counts = engine.count_pairs(
                np.asarray(flat, dtype=np.int64).reshape(-1, 2))
            results, start = [], 0
            for length in lengths:
                results.append([int(c) for c in counts[start:start + length]])
                start += length
            return results
        if op == "topk":
            requests = [(p["set"], p["k"]) for p in group]
            return [_topk_result(r) for r in engine.top_k_batch(requests)]
        if op == "multiway":
            return [_multiway_result(engine.multiway(p["sets"])) for p in group]
        raise ValueError(f"unbatchable op {op!r}")  # pragma: no cover
