"""repro — a reproduction of "A New Data Layout for Set Intersection on GPUs".

The package implements the BATMAP set layout of Amossen & Pagh (IPDPS 2011)
together with everything needed to regenerate the paper's evaluation on a
machine without a GPU: a deterministic OpenCL-style GPU simulator, the CPU
baselines (Apriori, FP-growth, Eclat, merge intersection, vertical bitmaps),
synthetic dataset generators, and the frequent-pair-mining pipeline.

Quickstart::

    import numpy as np
    from repro import BatmapCollection, count_common

    sets = [np.array([1, 5, 9, 12]), np.array([5, 9, 42])]
    coll = BatmapCollection.build(sets, universe_size=64, rng=0)
    assert coll.count_pair(0, 1) == 2
"""

from repro._version import __version__
from repro.core import (
    Batmap,
    BatmapCollection,
    BatmapConfig,
    DEFAULT_CONFIG,
    HashFamily,
    build_batmap,
    count_common,
    exact_intersection_size,
)

__all__ = [
    "__version__",
    "Batmap",
    "BatmapCollection",
    "BatmapConfig",
    "DEFAULT_CONFIG",
    "HashFamily",
    "build_batmap",
    "count_common",
    "exact_intersection_size",
]
