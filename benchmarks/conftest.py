"""Benchmark-suite fixtures: every ``-m bench`` test emits a JSON artifact.

The autouse fixture below times each benchmark test wall-clock and writes a
``BENCH_<test_name>.json`` record (scale knobs, wall time, throughput, git
SHA — see :class:`benchmarks.harness.BenchArtifact`) into the artifact
directory, so CI's bench-smoke job has machine-readable history to upload
and diff without every benchmark file carrying boilerplate.  Benchmarks
that want richer records (speed-up ratios, peak memory, series points)
request the ``bench_artifact`` fixture and ``add()`` fields to the same
record.

Artifacts are written for passing tests only — a failed benchmark's numbers
would poison the baseline the delta report compares against.
"""

from __future__ import annotations

import re
import time

import pytest

from benchmarks.harness import BenchArtifact


def _artifact_name(nodeid: str) -> str:
    """A filesystem-safe artifact name from a pytest node id."""
    name = nodeid.split("::", 1)[-1]
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_")


@pytest.fixture
def bench_artifact(request) -> BenchArtifact:
    """The current benchmark test's artifact record (add fields freely)."""
    return request.node._bench_artifact


@pytest.hookimpl(tryfirst=True, hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Stash each phase's report on the item so teardown can see the outcome."""
    outcome = yield
    report = outcome.get_result()
    setattr(item, f"_bench_report_{report.when}", report)


@pytest.fixture(autouse=True)
def _emit_bench_artifact(request):
    if request.node.get_closest_marker("bench") is None:
        yield
        return
    artifact = BenchArtifact(_artifact_name(request.node.nodeid))
    request.node._bench_artifact = artifact
    start = time.perf_counter()
    yield
    artifact.wall_seconds = time.perf_counter() - start
    report = getattr(request.node, "_bench_report_call", None)
    if report is not None and report.passed:
        artifact.write()
