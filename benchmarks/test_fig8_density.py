"""Figure 8 — pair-generation time for varying item density.

Paper setup: instance size 10 million occurrences, n = 8000 items fixed,
density swept from 0.1% to 10% (log scale).  Apriori and FP-growth slow down
markedly as the instance gets denser; the GPU batmap time is almost
independent of density, with a mild *increase* at the lowest densities caused
by the compression floor (hash ranges cannot shrink below 2^s, Section III-A).

Scaled harness: n = 200 items, the same density sweep.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import (
    SeriesTable,
    TIME_LIMIT_SECONDS,
    make_instance,
    run_apriori_pairs,
    run_batmap_miner,
    run_fpgrowth_pairs,
    time_call,
)

pytestmark = pytest.mark.bench

DENSITY_SWEEP = [0.002, 0.005, 0.01, 0.02, 0.05, 0.1]
N_ITEMS = 200


def density_series() -> SeriesTable:
    table = SeriesTable(
        title="Figure 8 (scaled) — pair generation time vs item density",
        x_label="density",
    )
    table.x_values = list(DENSITY_SWEEP)
    apriori_t, fp_t, gpu_t, gpu_bytes = [], [], [], []
    for p in DENSITY_SWEEP:
        db = make_instance(N_ITEMS, p, seed=int(p * 10_000))
        t_apriori, _ = time_call(run_apriori_pairs, db)
        t_fp, _ = time_call(run_fpgrowth_pairs, db)
        report = run_batmap_miner(db)
        apriori_t.append(min(t_apriori, TIME_LIMIT_SECONDS))
        fp_t.append(min(t_fp, TIME_LIMIT_SECONDS))
        gpu_t.append(report.counting_seconds)
        gpu_bytes.append(report.device_bytes)
    table.add("apriori_s", apriori_t)
    table.add("fpgrowth_s", fp_t)
    table.add("gpu_device_s", gpu_t)
    table.add("gpu_device_bytes", gpu_bytes)
    table.note(f"n = {N_ITEMS} items, instance size fixed; paper uses n = 8000, 10M items")
    return table


class TestFigure8:
    def test_report(self):
        table = density_series()
        table.show()
        apriori = table.series["apriori_s"]
        fp = table.series["fpgrowth_s"]
        gpu = table.series["gpu_device_s"]
        # CPU miners degrade as the instance gets denser.  (At the very lowest
        # densities the Python baselines also pay a per-transaction overhead —
        # fixed instance size means many more transactions — so the comparison
        # anchors at the sweep's fastest point rather than its sparsest point;
        # see EXPERIMENTS.md E4.)
        assert fp[-1] > 2 * min(fp)
        assert apriori[-1] > 1.2 * min(apriori)
        # The GPU counting time is nearly density-independent above the
        # compression floor ...
        gpu_upper = gpu[1:]  # densities >= 0.005
        assert max(gpu_upper) / max(min(gpu_upper), 1e-12) < 3
        # ... and shows the paper's mild increase at the lowest density, where
        # hash ranges are pinned at 2**shift.
        assert gpu[0] >= gpu[1]
        # Overall the GPU series varies far less than the densest/sparsest
        # swing of the CPU miners.
        gpu_spread = max(gpu_upper) / max(min(gpu_upper), 1e-12)
        fp_spread = max(fp) / max(min(fp), 1e-12)
        assert gpu_spread < fp_spread

    def test_low_density_floor_increases_device_bytes_per_element(self):
        """The compression floor makes very sparse instances relatively more expensive."""
        sparse = make_instance(N_ITEMS, 0.002, seed=1)
        dense = make_instance(N_ITEMS, 0.05, seed=2)
        sparse_report = run_batmap_miner(sparse)
        dense_report = run_batmap_miner(dense)
        sparse_cost = sparse_report.device_bytes / max(sparse.total_items, 1)
        dense_cost = dense_report.device_bytes / max(dense.total_items, 1)
        assert sparse_cost > dense_cost

    def test_benchmark_batmap_dense_instance(self, benchmark):
        db = make_instance(N_ITEMS, 0.1, seed=3)
        report = benchmark(lambda: run_batmap_miner(db))
        assert report.counting_seconds > 0
