"""Print a one-line wall-time delta per benchmark artifact vs a previous run.

Usage::

    python benchmarks/bench_delta.py CURRENT_DIR [PREVIOUS_DIR]

Reads every ``BENCH_*.json`` in ``CURRENT_DIR`` and, when ``PREVIOUS_DIR``
holds an artifact of the same name, prints the relative wall-time change.
Comparisons are only made when both runs used the same scale knobs — a
delta across different scales would be noise dressed up as signal.  The
script never fails the build: it is a reporting step, regressions gate
through the benchmarks' own assertions.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def load_artifacts(directory: Path) -> dict:
    out = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            out[path.stem] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path.name}: unreadable ({exc})")
    return out


def delta_line(name: str, current: dict, previous: dict | None) -> str:
    wall = current.get("wall_seconds", 0.0)
    line = f"{name}: {wall:.3f}s"
    if previous is None:
        return line + " (no previous run)"
    if previous.get("scale") != current.get("scale"):
        return line + " (previous run used different scale knobs; not comparable)"
    prev_wall = previous.get("wall_seconds", 0.0)
    if not prev_wall:
        return line + " (previous wall time missing)"
    change = 100.0 * (wall - prev_wall) / prev_wall
    return line + f" (prev {prev_wall:.3f}s, {change:+.1f}%)"


def main(argv: list[str]) -> int:
    if not argv or len(argv) > 2:
        print(__doc__)
        return 2
    current_dir = Path(argv[0])
    previous_dir = Path(argv[1]) if len(argv) == 2 else None
    current = load_artifacts(current_dir) if current_dir.is_dir() else {}
    if not current:
        print(f"no BENCH_*.json artifacts in {current_dir}")
        return 0
    previous = (load_artifacts(previous_dir)
                if previous_dir is not None and previous_dir.is_dir() else {})
    for name, artifact in current.items():
        print(delta_line(name, artifact, previous.get(name)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
