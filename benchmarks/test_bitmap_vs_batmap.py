"""E9 — dense vs sparse comparison against the PBI bitmap layout (Section I-B2a).

Fang et al.'s PBI-GPU stores every tidlist as an uncompressed bitmap of m
bits.  The paper's discussion: on dense data (their 49%-density experiment)
the bitmap layout is excellent, but on sparse data (0.6% density) it wastes
both space and bandwidth — which is exactly the gap batmaps close.

The harness runs both layouts through the *same* GPU simulator on a dense and
a sparse instance and compares device bytes, modelled time and resident size.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.harness import SeriesTable, make_instance
from repro.baselines.bitmap import BitmapIndex
from repro.core.collection import BatmapCollection
from repro.kernels.driver import run_batmap_pair_counts, run_bitmap_pair_counts

pytestmark = pytest.mark.bench


N_ITEMS = 96
DENSE = 0.40
SPARSE = 0.006


def layout_comparison(density: float, seed: int) -> dict[str, float]:
    db = make_instance(N_ITEMS, density, total_items=30_000, seed=seed)
    tidlists = db.tidlists()
    m = db.n_transactions

    coll = BatmapCollection.build(tidlists, m, rng=seed)
    batmap_run = run_batmap_pair_counts(coll, tile_size=512)

    index = BitmapIndex.from_sets(tidlists, m)
    bitmap_run = run_bitmap_pair_counts(index, tile_size=512)

    # sanity: both layouts must produce identical pair counts
    order = coll.order
    remapped = np.zeros_like(batmap_run.counts)
    remapped[np.ix_(order, order)] = batmap_run.counts
    off_diag = ~np.eye(N_ITEMS, dtype=bool)
    coll_failed = sum(len(coll.batmap(i).failed) for i in range(N_ITEMS))
    if coll_failed == 0:
        assert np.array_equal(remapped[off_diag], bitmap_run.counts[off_diag])

    return {
        "density": density,
        "batmap_resident_B": coll.memory_bytes,
        "bitmap_resident_B": index.memory_bytes,
        "batmap_device_B": batmap_run.total_device_bytes,
        "bitmap_device_B": bitmap_run.total_device_bytes,
        "batmap_device_s": batmap_run.device_seconds,
        "bitmap_device_s": bitmap_run.device_seconds,
    }


class TestBitmapVsBatmap:
    def test_report(self):
        dense = layout_comparison(DENSE, seed=1)
        sparse = layout_comparison(SPARSE, seed=2)
        table = SeriesTable(
            title="E9 — batmap vs uncompressed bitmap (PBI) on the same simulator",
            x_label="metric",
        )
        metrics = ["batmap_resident_B", "bitmap_resident_B",
                   "batmap_device_B", "bitmap_device_B",
                   "batmap_device_s", "bitmap_device_s"]
        table.x_values = metrics
        table.add(f"dense(p={DENSE})", [dense[k] for k in metrics])
        table.add(f"sparse(p={SPARSE})", [sparse[k] for k in metrics])
        table.show()

        # Sparse data: the bitmap layout wastes space and bandwidth relative
        # to batmaps (the paper's core argument), and its device time is no
        # better despite the simpler per-word operation.
        assert sparse["batmap_resident_B"] < sparse["bitmap_resident_B"]
        assert sparse["batmap_device_B"] < sparse["bitmap_device_B"]
        assert sparse["batmap_device_s"] < 1.25 * sparse["bitmap_device_s"]
        # Dense data: the advantage shrinks (and may invert) — bitmaps are a
        # good layout when nearly every transaction contains the item.
        sparse_gap = sparse["bitmap_device_B"] / sparse["batmap_device_B"]
        dense_gap = dense["bitmap_device_B"] / dense["batmap_device_B"]
        assert sparse_gap > dense_gap
        # At fixed instance size, lowering the density inflates the bitmap
        # layout's cost (its width is the transaction count) while the batmap
        # cost stays essentially unchanged — the paper's sparsity argument.
        assert sparse["bitmap_device_s"] > 4 * dense["bitmap_device_s"]
        assert sparse["batmap_device_s"] < 2 * dense["batmap_device_s"]

    def test_benchmark_bitmap_kernel(self, benchmark):
        db = make_instance(64, DENSE, total_items=20_000, seed=3)
        index = BitmapIndex.from_sets(db.tidlists(), db.n_transactions)
        result = benchmark(lambda: run_bitmap_pair_counts(index, tile_size=512))
        assert result.device_seconds > 0

    def test_benchmark_batmap_kernel(self, benchmark):
        db = make_instance(64, DENSE, total_items=20_000, seed=3)
        coll = BatmapCollection.build(db.tidlists(), db.n_transactions, rng=0)
        result = benchmark(lambda: run_batmap_pair_counts(coll, tile_size=512))
        assert result.device_seconds > 0
