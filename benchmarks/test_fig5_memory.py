"""Figure 5 — memory usage for varying number of distinct items.

Paper setup: instance size fixed at 10 million item occurrences, density 5%,
number of distinct items n swept from 4,000 to 128,000.  Apriori's memory is
quadratic in n and exceeds the machine's 6 GB before n = 64,000; FP-growth
and the GPU/batmap pipeline scale (roughly) linearly.

This harness reports two things:

* measured memory of the scaled-down runs: peak candidate-structure bytes for
  Apriori, FP-tree model bytes for FP-growth, and actual batmap buffer bytes
  for the GPU pipeline;
* the analytic :class:`MiningMemoryModel` evaluated at the paper's full scale,
  which is where the 6 GB crossover appears.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import BENCH_TOTAL_ITEMS, SeriesTable, make_instance
from repro.analysis.space import MiningMemoryModel
from repro.baselines.apriori import AprioriMiner
from repro.baselines.fpgrowth import FPGrowthMiner
from repro.mining.preprocess import preprocess

pytestmark = pytest.mark.bench


#: scaled sweep of the number of distinct items (paper: 4k .. 128k)
N_ITEMS_SWEEP = [40, 80, 160, 320, 640]
DENSITY = 0.05


def measured_memory_series() -> SeriesTable:
    table = SeriesTable(
        title="Figure 5 (scaled) — memory usage vs number of distinct items",
        x_label="#items",
    )
    table.x_values = list(N_ITEMS_SWEEP)
    apriori_mem, fp_mem, gpu_mem = [], [], []
    for n in N_ITEMS_SWEEP:
        db = make_instance(n, DENSITY, seed=n)
        apriori = AprioriMiner(max_size=2).mine(db.transactions, db.n_items, 1)
        apriori_mem.append(apriori.peak_memory_bytes)
        fp = FPGrowthMiner(max_size=2)
        fp.mine_pairs(db.transactions, db.n_items, 1)
        fp_mem.append(fp.peak_memory_bytes)
        pre = preprocess(db, rng=0)
        gpu_mem.append(pre.batmap_bytes)
    table.add("apriori_B", apriori_mem)
    table.add("fpgrowth_B", fp_mem)
    table.add("gpu_batmap_B", gpu_mem)
    table.note(f"instance size {BENCH_TOTAL_ITEMS} occurrences, density {DENSITY}")
    return table


def paper_scale_model_series() -> SeriesTable:
    table = SeriesTable(
        title="Figure 5 (paper scale, analytic model) — memory in GB",
        x_label="#items",
    )
    sweep = [4_000, 8_000, 16_000, 32_000, 64_000, 128_000]
    table.x_values = sweep
    model = MiningMemoryModel(total_items=10_000_000, n_items=4_000, density=0.05)
    series = model.series(sweep)
    gib = 2**30
    table.add("apriori_GB", [round(v / gib, 2) for v in series["apriori"]])
    table.add("fpgrowth_GB", [round(v / gib, 2) for v in series["fpgrowth"]])
    table.add("gpu_batmap_GB", [round(v / gib, 2) for v in series["gpu_batmap"]])
    table.note("Apriori exceeds the paper machine's 6 GB RAM below n = 64,000")
    return table


class TestFigure5:
    def test_report(self):
        measured = measured_memory_series()
        measured.show()
        model = paper_scale_model_series()
        model.show()
        # Shape assertions (the reproduction criteria from DESIGN.md / E1):
        apriori = measured.series["apriori_B"]
        gpu = measured.series["gpu_batmap_B"]
        fp = measured.series["fpgrowth_B"]
        n_ratio = N_ITEMS_SWEEP[-1] / N_ITEMS_SWEEP[0]
        apriori_growth = apriori[-1] / apriori[0]
        assert apriori_growth > n_ratio                    # super-linear (quadratic) in n
        assert gpu[-1] / gpu[0] < 4 * n_ratio              # ~linear in n
        assert fp[-1] / fp[0] < apriori_growth / 4         # far below Apriori's blow-up
        # Paper-scale crossover: Apriori alone breaks the 6 GB budget.
        paper = paper_scale_model_series()
        assert paper.series["apriori_GB"][-2] > 6.0        # n = 64,000
        assert max(paper.series["fpgrowth_GB"]) < 6.0
        assert max(paper.series["gpu_batmap_GB"]) < 6.0

    def test_benchmark_batmap_preprocess_memory(self, benchmark):
        db = make_instance(320, DENSITY, seed=1)
        result = benchmark(lambda: preprocess(db, rng=0).batmap_bytes)
        assert result > 0
