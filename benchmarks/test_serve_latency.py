"""Serving latency under concurrent load (E17).

N synchronous clients (one thread each, the closed-loop load model) hammer a
:class:`~repro.serve.server.BackgroundServer` with pairwise-count queries and
record client-observed latency per request.  The run reports p50/p99 for two
arms — request coalescing on (``max_batch`` default) and off
(``max_batch=1``) — plus a cache arm that repeats one query, all through the
``BENCH_*.json`` artifact pipeline.

Every response is checked bit-identical to the direct
:class:`~repro.serve.engine.SpillQueryEngine` answer computed up front, so
the latency numbers can never come from a server that silently serves wrong
results under concurrency.

Scale knobs: ``REPRO_BENCH_SERVE_CLIENTS`` (concurrent clients),
``REPRO_BENCH_SERVE_REQUESTS`` (requests per client),
``REPRO_BENCH_SERVE_SETS`` / ``REPRO_BENCH_SERVE_UNIVERSE`` (artifact size).
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.core.sharded import ShardedCollection
from repro.serve.client import ServeClient
from repro.serve.engine import SpillQueryEngine
from repro.serve.metrics import percentile
from repro.serve.server import BackgroundServer
from repro.utils.memory import parse_memory_size

pytestmark = pytest.mark.bench

N_CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", 4))
REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", 50))
N_SETS = int(os.environ.get("REPRO_BENCH_SERVE_SETS", 48))
UNIVERSE = int(os.environ.get("REPRO_BENCH_SERVE_UNIVERSE", 2048))
SEED = 13


def build_spill(tmp_path):
    rng = np.random.default_rng(7)
    sets = [np.sort(rng.choice(UNIVERSE, size=int(rng.integers(8, UNIVERSE // 4)),
                               replace=False))
            for _ in range(N_SETS)]
    spill_dir = tmp_path / "spill"
    ShardedCollection.build(sets, UNIVERSE, spill_dir, rng=SEED,
                            memory_budget=parse_memory_size("128M"),
                            max_sets_per_shard=max(4, N_SETS // 4))
    return spill_dir


def drive_load(server, expected):
    """Closed-loop load: every client thread reports (latencies, mismatches)."""
    pairs = list(expected)

    def one_client(client_id, out):
        rng = np.random.default_rng(client_id)
        latencies, mismatches = [], 0
        with ServeClient(server.host, server.port) as client:
            for _ in range(REQUESTS_PER_CLIENT):
                pair = pairs[int(rng.integers(len(pairs)))]
                start = time.perf_counter()
                result = client.count([pair])
                latencies.append(time.perf_counter() - start)
                if result != [expected[pair]]:
                    mismatches += 1
        out.append((latencies, mismatches))

    results: list = []
    threads = [threading.Thread(target=one_client, args=(c, results))
               for c in range(N_CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    assert len(results) == N_CLIENTS, "a client thread died or timed out"
    latencies = [s for lat, _ in results for s in lat]
    assert sum(m for _, m in results) == 0, "served result != direct engine call"
    return latencies


def test_serve_latency_under_concurrency(tmp_path, bench_artifact):
    spill_dir = build_spill(tmp_path)

    # Ground truth once, from the direct engine attachment.
    engine = SpillQueryEngine(ShardedCollection.from_spill(spill_dir))
    all_pairs = [(i, j) for i in range(N_SETS) for j in range(i + 1, N_SETS)]
    counts = engine.count_pairs(np.asarray(all_pairs, dtype=np.int64))
    expected = {pair: int(count) for pair, count in zip(all_pairs, counts)}
    engine.close()

    arms = {}
    for arm, max_batch in (("batched", None), ("unbatched", 1)):
        kwargs = {"cache_entries": 0}          # isolate batching from caching
        if max_batch is not None:
            kwargs["max_batch"] = max_batch
        with BackgroundServer(spill_dir, **kwargs) as server:
            latencies = drive_load(server, expected)
        metrics = server.final_metrics
        assert metrics is not None
        arms[arm] = {
            "p50_ms": percentile(latencies, 50) * 1e3,
            "p99_ms": percentile(latencies, 99) * 1e3,
            "mean_batch_size": metrics["mean_batch_size"],
            "max_batch_size": metrics["max_batch_size"],
            "requests": metrics["requests_total"],
        }
    assert arms["unbatched"]["max_batch_size"] == 1
    assert arms["batched"]["requests"] == N_CLIENTS * REQUESTS_PER_CLIENT

    # Cache arm: one hot query repeated; hits must dominate and stay correct.
    hot = all_pairs[0]
    with BackgroundServer(spill_dir) as server:
        with ServeClient(server.host, server.port) as client:
            hot_latencies = []
            for _ in range(REQUESTS_PER_CLIENT):
                start = time.perf_counter()
                assert client.count([hot]) == [expected[hot]]
                hot_latencies.append(time.perf_counter() - start)
            cache = client.metrics()["cache"]
    assert cache["hits"] >= REQUESTS_PER_CLIENT - 1
    cache_arm = {
        "p50_ms": percentile(hot_latencies, 50) * 1e3,
        "hit_rate": cache["hit_rate"],
    }

    bench_artifact.add("clients", N_CLIENTS)
    bench_artifact.add("requests_per_client", REQUESTS_PER_CLIENT)
    bench_artifact.add("n_sets", N_SETS)
    bench_artifact.add("universe", UNIVERSE)
    bench_artifact.add("serve_batched", arms["batched"])
    bench_artifact.add("serve_unbatched", arms["unbatched"])
    bench_artifact.add("serve_cached", cache_arm)

    print(f"\nserve latency, {N_CLIENTS} clients x {REQUESTS_PER_CLIENT} requests:")
    for arm, record in arms.items():
        print(f"  {arm:>9}: p50 {record['p50_ms']:.2f} ms  "
              f"p99 {record['p99_ms']:.2f} ms  "
              f"mean batch {record['mean_batch_size']:.2f}")
    print(f"     cached: p50 {cache_arm['p50_ms']:.2f} ms  "
          f"hit rate {cache_arm['hit_rate']:.2f}")
