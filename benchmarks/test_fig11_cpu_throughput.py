"""Figure 11 — memory throughput of the CPU batmap comparison vs core count.

Paper setup: two 20 MB arrays compared with the SWAR counting technique 300
times, on 1, 2, 4 and 8 cores of the dual Xeon 5462; throughput saturates
around 4 cores and never exceeds 7.6 GB/s — almost a factor 5 below the
36.2 GB/s the GPU sustains on the same comparison.

Harness: the single-core point is *measured* (NumPy SWAR over 8 MB arrays by
default); the multi-core points come from the bandwidth-saturation model of
:mod:`repro.parallel.cpu`.  The GPU reference line is the modelled device
throughput of a representative pair-count run.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import SeriesTable, make_instance, run_batmap_miner
from repro.gpu.device import XEON_5462
from repro.parallel.cpu import (
    cpu_throughput_series,
    measure_single_core_throughput,
    model_multicore_throughput,
)

pytestmark = pytest.mark.bench

CORE_COUNTS = (1, 2, 4, 8)
N_WORDS = 1_000_000  # 4 MB per operand; the paper uses 20 MB


#: Single-core throughput of the paper's compiled (gcc -O3) SWAR loop,
#: Figure 11's 1-core data point (~2.6 GB/s).  Used to show that the
#: saturation plateau follows from the socket's memory bandwidth.
PAPER_C_SINGLE_CORE_GBPS = 2.6


def throughput_series() -> SeriesTable:
    series = cpu_throughput_series(core_counts=CORE_COUNTS, n_words=N_WORDS, rng=0)
    gpu_report = run_batmap_miner(make_instance(160, 0.05, seed=21))
    table = SeriesTable(
        title="Figure 11 (scaled) — CPU batmap-comparison throughput vs cores",
        x_label="#cores",
    )
    table.x_values = list(CORE_COUNTS)
    table.add("numpy_GB_per_s", [round(p.gbytes_per_second, 3) for p in series])
    table.add("c_model_GB_per_s",
              [round(model_multicore_throughput(PAPER_C_SINGLE_CORE_GBPS, c), 3)
               for c in CORE_COUNTS])
    table.add("gpu_GB_per_s", [round(gpu_report.achieved_bandwidth_gbps, 3)] * len(CORE_COUNTS))
    table.note("numpy series: 1-core point measured here, multi-core via the saturation model")
    table.note("c_model series: the paper's compiled 1-core rate (2.6 GB/s) through the same "
               "bandwidth-saturation model — this is where the 4-core plateau appears")
    table.note(f"CPU bandwidth ceiling: {XEON_5462.memory_bandwidth_gbps} GB/s socket peak")
    return table


class TestFigure11:
    def test_report(self):
        table = throughput_series()
        table.show()
        numpy_series = table.series["numpy_GB_per_s"]
        c_model = table.series["c_model_GB_per_s"]
        gpu = table.series["gpu_GB_per_s"][0]
        # The compiled-rate series saturates: the 4 -> 8 core step gains far
        # less than the 1 -> 2 step, and the plateau respects the bandwidth cap
        # (the paper's <= 7.6 GB/s on a 12.8 GB/s socket).
        assert (c_model[3] - c_model[2]) < (c_model[1] - c_model[0])
        assert max(c_model) <= XEON_5462.memory_bandwidth_gbps * 0.6 + 1e-9
        # The interpreted NumPy implementation is slower per core, so its
        # scaled series may not reach the ceiling; it must stay below it.
        assert max(numpy_series) <= XEON_5462.memory_bandwidth_gbps * 0.6 + 1e-9
        # The modelled GPU throughput sits well above the CPU plateau (paper: ~5x).
        assert gpu > max(c_model) / 2

    def test_single_core_measurement_is_stable(self):
        a = measure_single_core_throughput(n_words=N_WORDS // 4, repeats=3, rng=1)
        b = measure_single_core_throughput(n_words=N_WORDS // 4, repeats=3, rng=2)
        ratio = a.gbytes_per_second / b.gbytes_per_second
        assert 0.2 < ratio < 5.0  # same order of magnitude across runs

    def test_benchmark_swar_comparison(self, benchmark):
        import numpy as np
        from repro.core.swar import count_matches
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2**32, size=N_WORDS, dtype=np.uint32)
        y = rng.integers(0, 2**32, size=N_WORDS, dtype=np.uint32)
        total = benchmark(lambda: count_matches(x, y))
        assert total >= 0
