"""Figure 7 — total execution time (including pre- and postprocessing) vs #items.

Paper finding: the batmap pipeline's preprocessing (done in Python on the
host) is expensive, but the total still scales well in n and overtakes both
Apriori and FP-growth for large numbers of distinct items.  The harness
prints the batmap total broken into phases so the preprocessing share is
visible, exactly the point the paper makes when discussing Figure 7.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import (
    SeriesTable,
    TIME_LIMIT_SECONDS,
    make_instance,
    run_apriori_pairs,
    run_batmap_miner,
    run_fpgrowth_pairs,
    time_call,
)

pytestmark = pytest.mark.bench

N_ITEMS_SWEEP = [40, 80, 160, 320, 640]
DENSITY = 0.05


def total_time_series() -> SeriesTable:
    table = SeriesTable(
        title="Figure 7 (scaled) — total time (pre+count+post) vs number of distinct items",
        x_label="#items",
    )
    table.x_values = list(N_ITEMS_SWEEP)
    apriori_t, fp_t = [], []
    gpu_pre, gpu_device, gpu_total = [], [], []
    for n in N_ITEMS_SWEEP:
        db = make_instance(n, DENSITY, seed=n + 2)
        t_apriori, _ = time_call(run_apriori_pairs, db)
        t_fp, _ = time_call(run_fpgrowth_pairs, db)
        report = run_batmap_miner(db)
        apriori_t.append(min(t_apriori, TIME_LIMIT_SECONDS))
        fp_t.append(min(t_fp, TIME_LIMIT_SECONDS))
        gpu_pre.append(report.preprocess_seconds)
        gpu_device.append(report.counting_seconds)
        gpu_total.append(report.total_seconds)
    table.add("apriori_s", apriori_t)
    table.add("fpgrowth_s", fp_t)
    table.add("gpu_pre_s", gpu_pre)
    table.add("gpu_device_s", gpu_device)
    table.add("gpu_total_s", gpu_total)
    table.note("gpu_total = host preprocessing + modelled device time + host postprocessing")
    table.note("the paper attributes the high preprocessing cost to Python; ours is Python too")
    return table


class TestFigure7:
    def test_report(self):
        table = total_time_series()
        table.show()
        gpu_total = table.series["gpu_total_s"]
        gpu_pre = table.series["gpu_pre_s"]
        apriori = table.series["apriori_s"]
        # Preprocessing dominates the batmap total (the paper's observation).
        assert gpu_pre[-1] > table.series["gpu_device_s"][-1]
        # Totals grow roughly linearly in n (fixed instance size): the largest
        # point costs far less than a quadratic extrapolation of the smallest.
        n_ratio = N_ITEMS_SWEEP[-1] / N_ITEMS_SWEEP[0]
        assert gpu_total[-1] < gpu_total[0] * n_ratio ** 2 / 4
        # Apriori's growth trend is steeper than the batmap pipeline's.
        assert (apriori[-1] / apriori[0]) > (gpu_total[-1] / gpu_total[0]) / 4

    def test_benchmark_batmap_total(self, benchmark):
        db = make_instance(160, DENSITY, seed=9)
        report = benchmark(lambda: run_batmap_miner(db))
        assert report.total_seconds > 0
