"""Batch engine — vectorised all-pairs counting vs the per-pair Python loop.

Not a paper figure: this benchmark guards the host-side serving path.  The
seed computed ``BatmapCollection.count_all_pairs`` with one ``count_common``
call (validation + re-tiling + SWAR) per pair — ``O(n^2)`` interpreter
overhead.  The batch engine (:mod:`repro.core.batch`) groups batmaps by
width class and answers each class pair with one broadcasted NumPy SWAR
comparison over the packed device buffer.

The acceptance bar recorded in EXPERIMENTS.md: on a 512-set synthetic
collection the engine must be at least 10x faster than the per-pair loop and
return a bit-identical count matrix.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.batch import BatchPairCounter
from repro.core.collection import BatmapCollection
from repro.core.intersection import count_common

pytestmark = pytest.mark.bench

N_SETS = 512
UNIVERSE = 4096
MIN_SPEEDUP = 10.0


def _make_collection(n_sets: int = N_SETS, universe: int = UNIVERSE) -> BatmapCollection:
    rng = np.random.default_rng(7)
    sets = [np.sort(rng.choice(universe, size=int(rng.integers(8, 260)), replace=False))
            for _ in range(n_sets)]
    return BatmapCollection.build(sets, universe, rng=3)


def _per_pair_loop(coll: BatmapCollection) -> np.ndarray:
    """The seed's host path: one Python ``count_common`` call per pair."""
    n = len(coll)
    out = np.zeros((n, n), dtype=np.int64)
    batmaps = coll.batmaps_sorted
    order = coll.order
    for a in range(n):
        ia = int(order[a])
        out[ia, ia] = batmaps[a].stored_count
        for b in range(a + 1, n):
            ib = int(order[b])
            c = count_common(batmaps[a], batmaps[b])
            out[ia, ib] = c
            out[ib, ia] = c
    return out


class TestBatchEngine:
    def test_speedup_and_bit_identical(self):
        coll = _make_collection()
        coll.device_buffer()                      # packing is shared setup, not engine time

        # Warm-up pass (first-touch page allocation dominates a cold run),
        # then best of three timed passes on a fresh engine each time.
        engine_counts = BatchPairCounter(coll).count_all_pairs()
        batch_seconds = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            engine_counts = BatchPairCounter(coll).count_all_pairs()
            batch_seconds = min(batch_seconds, time.perf_counter() - start)

        start = time.perf_counter()
        loop_counts = _per_pair_loop(coll)
        loop_seconds = time.perf_counter() - start

        n_pairs = N_SETS * (N_SETS - 1) // 2
        speedup = loop_seconds / batch_seconds if batch_seconds > 0 else float("inf")
        print(f"\n== batch engine vs per-pair loop ({N_SETS} sets, {n_pairs} pairs) ==")
        print(f"   per-pair loop : {loop_seconds:8.3f} s "
              f"({1e6 * loop_seconds / n_pairs:7.2f} us/pair)")
        print(f"   batch engine  : {batch_seconds:8.3f} s "
              f"({1e6 * batch_seconds / n_pairs:7.2f} us/pair)")
        print(f"   speedup       : {speedup:8.1f} x")

        assert np.array_equal(engine_counts, loop_counts)
        assert speedup >= MIN_SPEEDUP

    def test_benchmark_batch_all_pairs(self, benchmark):
        coll = _make_collection(n_sets=256)
        coll.device_buffer()

        def run():
            return BatchPairCounter(coll).count_all_pairs()

        counts = benchmark(run)
        assert counts.shape == (256, 256)

    def test_benchmark_batch_pairs_list(self, benchmark):
        coll = _make_collection(n_sets=256)
        counter = coll.batch_counter()
        rng = np.random.default_rng(1)
        pairs = rng.integers(0, 256, size=(4096, 2))

        counts = benchmark(counter.count_pairs, pairs)
        assert counts.shape == (4096,)
