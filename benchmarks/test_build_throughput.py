"""Collection-build throughput — bulk engine vs the per-element inserter.

Not a paper figure: this benchmark guards the construction side of the
pre-processing phase (Sections II-A/III-A).  PRs 1-3 made pair *counting*
vectorized and parallel, which left ``place_set`` — one cuckoo copy at a
time, in pure Python — as the dominant cost of Figure-6-scale runs.  The
bulk engine (:mod:`repro.core.bulk_build`) builds whole width groups per
round with NumPy scatters.

The acceptance bar recorded in EXPERIMENTS.md (E14): on a Figure-6-scale
synthetic mining workload of at least 10,000 tidlists, the bulk engine must
build the collection at least 10x faster than the per-element inserter and
the two collections must agree exactly (failed lists and spot-checked pair
counts).  The speedup assertion applies at full scale only; downsized CI
runs (via ``REPRO_BENCH_BUILD_SETS``) still check the equivalences.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.collection import BatmapCollection
from repro.datasets.synthetic import generate_density_instance

pytestmark = pytest.mark.bench

#: Number of item tidlists (= sets) in the workload; ``>= 10_000`` is the
#: acceptance scale.  CI downsizes through the environment variable.
N_SETS = int(os.environ.get("REPRO_BENCH_BUILD_SETS", 10_000))
#: Item occurrences; scaled with the set count so the per-set size
#: distribution (~150 transactions per tidlist) matches the full-scale run.
TOTAL_ITEMS = N_SETS * 150
MIN_SPEEDUP = 10.0
FULL_SCALE = N_SETS >= 10_000


def _make_tidlists():
    db = generate_density_instance(n_items=N_SETS, density=0.05,
                                   total_items=TOTAL_ITEMS, rng=0)
    return db.tidlists(), db.n_transactions


class TestBuildThroughput:
    def test_speedup_and_equivalence(self):
        tidlists, universe = _make_tidlists()

        # Warm-up on a slice (page cache, allocator), then one timed pass
        # per engine; the bulk engine gets best-of-three since its runtime
        # is small enough for scheduler noise to matter.
        BatmapCollection.build(tidlists[:200], universe, rng=1,
                               build_compute="bulk")
        bulk_seconds = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            bulk = BatmapCollection.build(tidlists, universe, rng=1,
                                          build_compute="bulk")
            bulk_seconds = min(bulk_seconds, time.perf_counter() - start)

        start = time.perf_counter()
        host = BatmapCollection.build(tidlists, universe, rng=1,
                                      build_compute="host")
        host_seconds = time.perf_counter() - start

        n_elements = sum(t.size for t in tidlists)
        speedup = host_seconds / bulk_seconds if bulk_seconds > 0 else float("inf")
        print(f"\n== collection build: bulk engine vs per-element inserter "
              f"({len(tidlists)} sets, {n_elements} elements) ==")
        print(f"   per-element inserter : {host_seconds:8.3f} s "
              f"({1e6 * host_seconds / n_elements:7.2f} us/element)")
        print(f"   bulk engine          : {bulk_seconds:8.3f} s "
              f"({1e6 * bulk_seconds / n_elements:7.2f} us/element)")
        print(f"   speedup              : {speedup:8.1f} x")

        # Equivalence: identical failure semantics everywhere, identical
        # pair counts on a slice (the full n^2 matrix is a counting
        # benchmark's job, not a build benchmark's).
        assert host.failed_insertions() == bulk.failed_insertions()
        probe = slice(0, min(1200, len(tidlists)))
        host_counts = BatmapCollection.build(
            tidlists[probe], universe, rng=1, build_compute="host"
        ).count_all_pairs()
        bulk_counts = BatmapCollection.build(
            tidlists[probe], universe, rng=1, build_compute="bulk"
        ).count_all_pairs()
        assert np.array_equal(host_counts, bulk_counts)

        if FULL_SCALE:
            assert speedup >= MIN_SPEEDUP
        else:
            print(f"   (downsized run: {len(tidlists)} sets — the "
                  f">= {MIN_SPEEDUP:.0f}x bar applies at >= 10,000 sets)")

    def test_benchmark_bulk_build(self, benchmark):
        tidlists, universe = _make_tidlists()
        subset = tidlists[: max(500, len(tidlists) // 8)]

        def run():
            return BatmapCollection.build(subset, universe, rng=1,
                                          build_compute="bulk")

        collection = benchmark(run)
        assert len(collection) == len(subset)
