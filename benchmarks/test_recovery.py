"""Crash recovery: what verify and repair cost on a real artifact.

PR 9 made every spill mutation an atomic commit and added ``repro verify``
(full checksum walk) and ``repro repair`` (roll back to the last committed
generation, sweep orphans).  This benchmark prices that safety net: it
builds a sharded artifact, times a clean ``verify_spill`` pass, crashes a
full compaction at the ``commit.rename`` faultpoint, then times the
post-crash verify and the repair.  A retried compaction must afterwards
answer a query sample bit-identically to the pre-crash state — the
benchmark refuses to publish numbers for a recovery that loses data.

Headline series: ``verify_seconds`` (and the derived
``verify_mb_per_second``), ``repair_seconds``.

Scale knobs: ``REPRO_BENCH_RECOVERY_SETS`` (corpus size; CI downsizes).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from benchmarks.harness import time_call
from repro.core.integrity import repair_spill, verify_spill
from repro.core.sharded import ShardedCollection
from repro.serve.engine import SpillQueryEngine
from repro.utils import faultpoints as fp
from repro.utils.memory import parse_memory_size
from tests.conftest import random_sets

pytestmark = pytest.mark.bench

SRC = str(Path(__file__).resolve().parents[1] / "src")
N_SETS = int(os.environ.get("REPRO_BENCH_RECOVERY_SETS", 400))
UNIVERSE = 2048
MIN_SIZE, MAX_SIZE = 20, 120
BUDGET = parse_memory_size("2M")  # small on purpose: several shards to walk
SEED = 17
N_QUERY_SAMPLE = 100


def _artifact_bytes(spill_dir) -> int:
    return sum(p.stat().st_size for p in spill_dir.rglob("*") if p.is_file())


def test_recovery(tmp_path, bench_artifact):
    # The CI smoke and the delta report key on BENCH_recovery.json.
    bench_artifact.name = "recovery"

    rng = np.random.default_rng(5)
    sets = random_sets(rng, N_SETS, UNIVERSE, min_size=MIN_SIZE, max_size=MAX_SIZE)
    spill_dir = tmp_path / "recovery"
    sharded = ShardedCollection.build(
        sets, UNIVERSE, spill_dir, rng=SEED, memory_budget=BUDGET)
    sharded.delete(range(0, N_SETS, 7))

    pair_rng = np.random.default_rng(6)
    pairs = pair_rng.integers(
        0, sharded.n_sets, size=(N_QUERY_SAMPLE, 2)).astype(np.int64)
    engine = SpillQueryEngine(sharded)
    try:
        expected_counts = engine.count_pairs(pairs)
    finally:
        engine.close()

    total_bytes = _artifact_bytes(spill_dir)
    verify_seconds, clean_report = time_call(verify_spill, spill_dir)
    assert clean_report.ok and not clean_report.warnings, clean_report.render()

    # Crash a full compaction mid-commit in a real subprocess: merged shards
    # staged and fsynced, first rename about to land, manifest untouched.
    # (An in-process InjectedFault would be aborted — and swept — by the
    # commit context manager; only a hard exit leaves wreckage to repair.)
    env = dict(os.environ, PYTHONPATH=SRC,
               REPRO_FAULTPOINT="commit.rename",
               REPRO_FAULTPOINT_MODE="exit")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "compact", str(spill_dir), "--full"],
        env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == fp.FAULT_EXIT_CODE, proc.stderr

    crash_verify_seconds, crashed_report = time_call(verify_spill, spill_dir)
    assert crashed_report.ok, crashed_report.render()  # leftovers, not damage
    assert crashed_report.warnings

    repair_seconds, result = time_call(repair_spill, spill_dir)
    assert result.report.ok and not result.report.warnings
    assert result.actions  # the staged wreckage was actually swept

    recovered = ShardedCollection.from_spill(spill_dir)
    recovered.compact(full=True)
    engine = SpillQueryEngine(recovered)
    try:
        np.testing.assert_array_equal(engine.count_pairs(pairs), expected_counts)
    finally:
        engine.close()

    mb = total_bytes / 1e6
    print(f"\n{N_SETS} sets, {sharded.n_shards} shards, {mb:.1f} MB | clean "
          f"verify {verify_seconds:.3f}s ({mb / verify_seconds:.0f} MB/s) | "
          f"post-crash verify {crash_verify_seconds:.3f}s | repair "
          f"{repair_seconds:.3f}s ({len(result.actions)} sweeps)")
    bench_artifact.add("n_sets", N_SETS)
    bench_artifact.add("n_shards", sharded.n_shards)
    bench_artifact.add("artifact_bytes", total_bytes)
    bench_artifact.add("verify_seconds", verify_seconds)
    bench_artifact.add("verify_mb_per_second", mb / verify_seconds)
    bench_artifact.add("post_crash_verify_seconds", crash_verify_seconds)
    bench_artifact.add("repair_seconds", repair_seconds)
    bench_artifact.add("repair_actions", len(result.actions))
