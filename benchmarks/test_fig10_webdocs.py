"""Figure 10 — computation time on growing prefixes of WebDocs.

Paper setup: prefixes of the WebDocs dataset of 1,600 to 25,600 transactions;
the number of distinct items grows rapidly with the prefix, which is what
breaks Apriori first (memory trashing) while the GPU batmap pipeline solves
the largest prefix.  The real WebDocs is not redistributable, so the harness
uses the Zipfian surrogate of :mod:`repro.datasets.webdocs` (the substitution
is recorded in DESIGN.md); the prefix sizes are scaled down accordingly.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import (
    SeriesTable,
    TIME_LIMIT_SECONDS,
    run_apriori_pairs,
    run_batmap_miner,
    run_fpgrowth_pairs,
    time_call,
)
from repro.datasets.webdocs import generate_webdocs_like, vocabulary_growth

pytestmark = pytest.mark.bench


PREFIX_SIZES = [40, 80, 160]
VOCABULARY = 15_000
MIN_SUPPORT = 2


def webdocs_series() -> SeriesTable:
    base = generate_webdocs_like(max(PREFIX_SIZES), vocabulary_size=VOCABULARY,
                                 mean_length=50.0, rng=0)
    growth = dict(vocabulary_growth(base, PREFIX_SIZES))
    table = SeriesTable(
        title="Figure 10 (scaled, surrogate) — computation time vs WebDocs prefix size",
        x_label="prefix",
    )
    table.x_values = list(PREFIX_SIZES)
    distinct, apriori_t, fp_t, gpu_t = [], [], [], []
    for size in PREFIX_SIZES:
        prefix = base.prefix(size)
        filtered, _ = prefix.filter_by_support(MIN_SUPPORT)
        distinct.append(growth[size])
        t_apriori, _ = time_call(run_apriori_pairs, filtered, MIN_SUPPORT)
        t_fp, _ = time_call(run_fpgrowth_pairs, filtered, MIN_SUPPORT)
        report = run_batmap_miner(filtered, min_support=MIN_SUPPORT)
        apriori_t.append(min(t_apriori, TIME_LIMIT_SECONDS))
        fp_t.append(min(t_fp, TIME_LIMIT_SECONDS))
        gpu_t.append(report.counting_seconds + report.preprocess_seconds
                     + report.postprocess_seconds)
    table.add("distinct_items", distinct)
    table.add("apriori_s", apriori_t)
    table.add("fpgrowth_s", fp_t)
    table.add("gpu_batmap_s", gpu_t)
    table.note("surrogate WebDocs: Zipfian vocabulary, log-normal document lengths")
    return table


class TestFigure10:
    def test_report(self):
        table = webdocs_series()
        table.show()
        distinct = table.series["distinct_items"]
        apriori = table.series["apriori_s"]
        # The defining property of WebDocs: the vocabulary keeps growing with
        # the prefix, which is what drives Apriori's blow-up in the paper.
        assert distinct[-1] > 2 * distinct[0]
        # Apriori's time grows faster than the prefix size (super-linear).
        prefix_ratio = PREFIX_SIZES[-1] / PREFIX_SIZES[0]
        assert apriori[-1] / max(apriori[0], 1e-9) > prefix_ratio or \
            apriori[-1] >= TIME_LIMIT_SECONDS

    def test_vocabulary_growth_is_monotone(self):
        db = generate_webdocs_like(200, vocabulary_size=VOCABULARY, rng=1)
        growth = vocabulary_growth(db, [25, 50, 100, 200])
        counts = [g[1] for g in growth]
        assert counts == sorted(counts)

    def test_benchmark_batmap_webdocs_prefix(self, benchmark):
        base = generate_webdocs_like(60, vocabulary_size=VOCABULARY, mean_length=50.0, rng=2)
        filtered, _ = base.filter_by_support(MIN_SUPPORT)
        report = benchmark(lambda: run_batmap_miner(filtered, min_support=MIN_SUPPORT))
        assert report.total_seconds > 0
