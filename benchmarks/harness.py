"""Shared helpers for the benchmark suite.

Every ``test_fig*.py`` file in this directory regenerates one table or figure
of the paper at a reduced scale (the paper's instances have 10^7 item
occurrences and up to 128,000 distinct items; the defaults here are ~100x
smaller so the whole suite runs in minutes on a laptop).  Each harness prints
the same series the paper plots — the absolute numbers differ (Python +
simulator vs C + a real GTX 285) but the *shape* comparisons (who wins, who
blows up, where the crossover happens) are the reproduction target; see
EXPERIMENTS.md for the side-by-side record.

Scale factors can be raised via the environment variables
``REPRO_BENCH_TOTAL_ITEMS`` and ``REPRO_BENCH_SCALE`` for a closer (slower)
reproduction.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.baselines.apriori import AprioriMiner
from repro.baselines.eclat import EclatMiner
from repro.baselines.fpgrowth import FPGrowthMiner
from repro.datasets.synthetic import generate_density_instance
from repro.datasets.transactions import TransactionDatabase
from repro.mining.pair_mining import BatmapPairMiner

__all__ = [
    "BENCH_TOTAL_ITEMS",
    "BENCH_SCALE",
    "SeriesTable",
    "make_instance",
    "time_call",
    "run_batmap_miner",
    "run_apriori_pairs",
    "run_fpgrowth_pairs",
    "run_eclat_pairs",
    "TIME_LIMIT_SECONDS",
    "ARTIFACT_DIR",
    "BenchArtifact",
    "git_sha",
    "scale_knobs",
]

#: Total instance size (item occurrences); the paper uses 10_000_000.
BENCH_TOTAL_ITEMS = int(os.environ.get("REPRO_BENCH_TOTAL_ITEMS", 60_000))
#: Generic down-scale factor applied to the paper's item counts.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", 0.01))
#: The paper cancels runs after 1800 CPU seconds; the scaled suite uses a
#: proportionally smaller censoring limit.
TIME_LIMIT_SECONDS = float(os.environ.get("REPRO_BENCH_TIME_LIMIT", 20.0))


# --------------------------------------------------------------------------- #
# Machine-readable benchmark artifacts (BENCH_<name>.json)
# --------------------------------------------------------------------------- #
#: Where ``BENCH_<name>.json`` files land; CI uploads this directory from
#: the bench-smoke job and diffs it against the previous run's cache.
ARTIFACT_DIR = Path(os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "bench-artifacts"))


def git_sha() -> str:
    """Current commit SHA: ``GITHUB_SHA`` in CI, ``git rev-parse`` locally."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def scale_knobs() -> dict:
    """Every ``REPRO_BENCH_*`` knob in effect, plus the resolved defaults.

    Recorded in every artifact so a stored run is interpretable on its own —
    a 2x wall-time delta means nothing without knowing both runs' scales.
    """
    knobs = {
        "total_items": BENCH_TOTAL_ITEMS,
        "scale": BENCH_SCALE,
        "time_limit_seconds": TIME_LIMIT_SECONDS,
    }
    for key, value in sorted(os.environ.items()):
        if key.startswith("REPRO_BENCH_"):
            knobs[key] = value
    return knobs


@dataclass
class BenchArtifact:
    """One benchmark run's machine-readable record.

    Created per ``-m bench`` test by the autouse fixture in
    ``benchmarks/conftest.py`` (which fills ``wall_seconds`` and writes the
    file on teardown); benchmarks deepen the record through the
    ``bench_artifact`` fixture — ``add(series_name, value)`` for headline
    numbers, arbitrary ``extra`` keys for anything else.
    """

    name: str
    wall_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    def add(self, key: str, value) -> None:
        self.extra[key] = value

    def payload(self) -> dict:
        payload = {
            "name": self.name,
            "git_sha": git_sha(),
            "recorded_unix": time.time(),
            "python": platform.python_version(),
            "scale": scale_knobs(),
            "wall_seconds": self.wall_seconds,
        }
        # Throughput only when the test declared what it actually processed
        # (``add("total_items_processed", n)``) — a generic knob divided by
        # the wall time would fabricate a series that moves with unrelated
        # configuration.
        processed = self.extra.get("total_items_processed")
        if processed and self.wall_seconds > 0:
            payload["throughput_items_per_second"] = processed / self.wall_seconds
        payload.update(self.extra)
        return payload

    def write(self, directory: Path | None = None) -> Path:
        directory = Path(directory) if directory is not None else ARTIFACT_DIR
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_{self.name}.json"
        path.write_text(json.dumps(self.payload(), indent=1, sort_keys=True))
        return path


@dataclass
class SeriesTable:
    """A labelled table of series, printed in the paper's row/column layout."""

    title: str
    x_label: str
    x_values: list = field(default_factory=list)
    series: dict[str, list] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add(self, name: str, values: list) -> None:
        self.series[name] = values

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        width = 14
        header = f"{self.x_label:>{width}} | " + " | ".join(
            f"{name:>{width}}" for name in self.series
        )
        lines = [f"== {self.title} ==", header, "-" * len(header)]
        for i, x in enumerate(self.x_values):
            cells = []
            for name in self.series:
                value = self.series[name][i]
                if isinstance(value, float):
                    cells.append(f"{value:>{width}.4g}")
                else:
                    cells.append(f"{str(value):>{width}}")
            lines.append(f"{str(x):>{width}} | " + " | ".join(cells))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")


def make_instance(n_items: int, density: float = 0.05,
                  total_items: int | None = None, seed: int = 0) -> TransactionDatabase:
    """The paper's synthetic instance, at benchmark scale."""
    return generate_density_instance(
        n_items=n_items,
        density=density,
        total_items=total_items or BENCH_TOTAL_ITEMS,
        rng=seed,
    )


def time_call(fn, *args, **kwargs) -> tuple[float, object]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


# --------------------------------------------------------------------------- #
# Miner adapters used by several figures
# --------------------------------------------------------------------------- #
def run_batmap_miner(db: TransactionDatabase, min_support: int = 1, seed: int = 0):
    """Run the batmap pipeline; returns its MiningReport."""
    miner = BatmapPairMiner(tile_size=512)
    return miner.mine(db, min_support=min_support, rng=seed)


def run_apriori_pairs(db: TransactionDatabase, min_support: int = 1):
    miner = AprioriMiner(max_size=2)
    result = miner.mine(db.transactions, db.n_items, min_support)
    return result


def run_fpgrowth_pairs(db: TransactionDatabase, min_support: int = 1):
    miner = FPGrowthMiner(max_size=2)
    pairs = miner.mine_pairs(db.transactions, db.n_items, min_support)
    return miner, pairs


def run_eclat_pairs(db: TransactionDatabase, min_support: int = 1):
    miner = EclatMiner(max_size=2)
    return miner.mine_pairs(db.transactions, db.n_items, min_support)
