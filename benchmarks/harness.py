"""Shared helpers for the benchmark suite.

Every ``test_fig*.py`` file in this directory regenerates one table or figure
of the paper at a reduced scale (the paper's instances have 10^7 item
occurrences and up to 128,000 distinct items; the defaults here are ~100x
smaller so the whole suite runs in minutes on a laptop).  Each harness prints
the same series the paper plots — the absolute numbers differ (Python +
simulator vs C + a real GTX 285) but the *shape* comparisons (who wins, who
blows up, where the crossover happens) are the reproduction target; see
EXPERIMENTS.md for the side-by-side record.

Scale factors can be raised via the environment variables
``REPRO_BENCH_TOTAL_ITEMS`` and ``REPRO_BENCH_SCALE`` for a closer (slower)
reproduction.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.baselines.apriori import AprioriMiner
from repro.baselines.eclat import EclatMiner
from repro.baselines.fpgrowth import FPGrowthMiner
from repro.datasets.synthetic import generate_density_instance
from repro.datasets.transactions import TransactionDatabase
from repro.mining.pair_mining import BatmapPairMiner

__all__ = [
    "BENCH_TOTAL_ITEMS",
    "BENCH_SCALE",
    "SeriesTable",
    "make_instance",
    "time_call",
    "run_batmap_miner",
    "run_apriori_pairs",
    "run_fpgrowth_pairs",
    "run_eclat_pairs",
    "TIME_LIMIT_SECONDS",
]

#: Total instance size (item occurrences); the paper uses 10_000_000.
BENCH_TOTAL_ITEMS = int(os.environ.get("REPRO_BENCH_TOTAL_ITEMS", 60_000))
#: Generic down-scale factor applied to the paper's item counts.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", 0.01))
#: The paper cancels runs after 1800 CPU seconds; the scaled suite uses a
#: proportionally smaller censoring limit.
TIME_LIMIT_SECONDS = float(os.environ.get("REPRO_BENCH_TIME_LIMIT", 20.0))


@dataclass
class SeriesTable:
    """A labelled table of series, printed in the paper's row/column layout."""

    title: str
    x_label: str
    x_values: list = field(default_factory=list)
    series: dict[str, list] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add(self, name: str, values: list) -> None:
        self.series[name] = values

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        width = 14
        header = f"{self.x_label:>{width}} | " + " | ".join(
            f"{name:>{width}}" for name in self.series
        )
        lines = [f"== {self.title} ==", header, "-" * len(header)]
        for i, x in enumerate(self.x_values):
            cells = []
            for name in self.series:
                value = self.series[name][i]
                if isinstance(value, float):
                    cells.append(f"{value:>{width}.4g}")
                else:
                    cells.append(f"{str(value):>{width}}")
            lines.append(f"{str(x):>{width}} | " + " | ".join(cells))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")


def make_instance(n_items: int, density: float = 0.05,
                  total_items: int | None = None, seed: int = 0) -> TransactionDatabase:
    """The paper's synthetic instance, at benchmark scale."""
    return generate_density_instance(
        n_items=n_items,
        density=density,
        total_items=total_items or BENCH_TOTAL_ITEMS,
        rng=seed,
    )


def time_call(fn, *args, **kwargs) -> tuple[float, object]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


# --------------------------------------------------------------------------- #
# Miner adapters used by several figures
# --------------------------------------------------------------------------- #
def run_batmap_miner(db: TransactionDatabase, min_support: int = 1, seed: int = 0):
    """Run the batmap pipeline; returns its MiningReport."""
    miner = BatmapPairMiner(tile_size=512)
    return miner.mine(db, min_support=min_support, rng=seed)


def run_apriori_pairs(db: TransactionDatabase, min_support: int = 1):
    miner = AprioriMiner(max_size=2)
    result = miner.mine(db.transactions, db.n_items, min_support)
    return result


def run_fpgrowth_pairs(db: TransactionDatabase, min_support: int = 1):
    miner = FPGrowthMiner(max_size=2)
    pairs = miner.mine_pairs(db.transactions, db.n_items, min_support)
    return miner, pairs


def run_eclat_pairs(db: TransactionDatabase, min_support: int = 1):
    miner = EclatMiner(max_size=2)
    return miner.mine_pairs(db.transactions, db.n_items, min_support)
