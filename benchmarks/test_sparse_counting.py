"""Sparse/pruned counting: result footprint, tile pruning, and auto demotion.

Two claims from the sparse counting redesign are measured here:

* **Pruning pays before SWAR work** — on a support-skewed collection, a
  ``min_support`` bound lets the tiled engines skip whole width-class tiles
  whose set-size bounds cannot reach the threshold, and the surviving
  sparse result is bit-identical to dense-then-filter while storing a
  fraction of the ``8 n^2`` dense matrix.
* **``result_format="auto"`` demotes an oversized dense matrix** — a
  streamed mining workload whose dense all-pairs matrix alone exceeds the
  memory budget completes with a sparse result whose traced peak stays
  under that budget, and the surviving counts match the dense oracle.

Scale knobs: ``REPRO_BENCH_SPARSE_SETS`` (pruning bench),
``REPRO_BENCH_SPARSE_ITEMS`` / ``REPRO_BENCH_SPARSE_TXNS`` /
``REPRO_BENCH_SPARSE_BUDGET`` (auto-demotion bench).  Defaults are sized to
stay fast under the tier-1 run (which collects ``benchmarks/``); the
paper-scale figure (50k+ items, dense matrix far over budget) is reached by
raising the knobs, e.g. ``REPRO_BENCH_SPARSE_ITEMS=50000
REPRO_BENCH_SPARSE_TXNS=60000 REPRO_BENCH_SPARSE_BUDGET=192000000``.  When
the dense oracle itself would not fit in ``REPRO_BENCH_SPARSE_ORACLE_CAP``
bytes, bit-identity is checked on a downsized replica of the same workload
shape instead, and the full-scale run keeps only the budget/pruning
assertions.
"""

from __future__ import annotations

import gc
import os
import tracemalloc

import numpy as np
import pytest

from benchmarks.harness import time_call
from repro.core.collection import BatmapCollection
from repro.core.results import DenseCountResult, SparseCountResult
from repro.datasets.fimi_io import read_fimi
from repro.mining.pair_mining import BatmapPairMiner

pytestmark = pytest.mark.bench

# --- pruning bench ---------------------------------------------------------
N_SETS = int(os.environ.get("REPRO_BENCH_SPARSE_SETS", 384))
UNIVERSE = int(os.environ.get("REPRO_BENCH_SPARSE_UNIVERSE", 1500))
PRUNE_MIN_SUPPORT = int(os.environ.get("REPRO_BENCH_SPARSE_PRUNE_MS", 24))

# --- auto-demotion bench ---------------------------------------------------
N_ITEMS = int(os.environ.get("REPRO_BENCH_SPARSE_ITEMS", 2600))
N_TXNS = int(os.environ.get("REPRO_BENCH_SPARSE_TXNS", 4000))
BUDGET = int(os.environ.get("REPRO_BENCH_SPARSE_BUDGET", 24_000_000))
MIN_SUPPORT = int(os.environ.get("REPRO_BENCH_SPARSE_MIN_SUPPORT", 4))
#: Largest dense all-pairs matrix (bytes) the in-line oracle may allocate;
#: beyond this the bit-identity check moves to a downsized replica.
ORACLE_CAP = int(os.environ.get("REPRO_BENCH_SPARSE_ORACLE_CAP", 600_000_000))
SEED = 1


def traced_peak(fn, *args, **kwargs):
    """Run ``fn`` under tracemalloc; return (result, peak_bytes, seconds)."""
    gc.collect()
    tracemalloc.start()
    try:
        seconds, result = time_call(fn, *args, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak, seconds


def skewed_sets(n_sets: int, universe: int, rng: np.random.Generator):
    """Mostly-small sets with a hot minority — the shape pruning feeds on.

    Every 12th set is large (its pairs survive ``PRUNE_MIN_SUPPORT``); the
    rest are tiny, so their width-class tiles carry set-size bounds far
    below the threshold and are skipped before any SWAR work.
    """
    sets = []
    for i in range(n_sets):
        size = 160 if i % 12 == 0 else int(rng.integers(1, 9))
        sets.append(np.unique(rng.integers(0, universe, size=size)))
    return sets


def test_sparse_counting_prunes_and_shrinks(bench_artifact):
    rng = np.random.default_rng(7)
    sets = skewed_sets(N_SETS, UNIVERSE, rng)
    collection = BatmapCollection.build(sets, UNIVERSE, rng=3)
    counter = collection.batch_counter()

    dense_seconds, dense = time_call(
        lambda: counter.count_result(result_format="dense"))
    sparse_seconds, sparse = time_call(
        lambda: counter.count_result(result_format="sparse",
                                     min_support=PRUNE_MIN_SUPPORT))
    assert isinstance(dense, DenseCountResult)
    assert isinstance(sparse, SparseCountResult)

    # Bit-identity: every surviving pair equals dense-then-filter.
    di, dj, dv = dense.frequent_pairs(PRUNE_MIN_SUPPORT)
    si, sj, sv = sparse.frequent_pairs(PRUNE_MIN_SUPPORT)
    np.testing.assert_array_equal(di, si)
    np.testing.assert_array_equal(dj, sj)
    np.testing.assert_array_equal(dv, sv)

    skipped = sparse.stats["tiles_skipped"]
    total = sparse.stats["tiles_total"]
    print(f"\npruned {skipped}/{total} tiles | dense {dense.result_bytes} B "
          f"({dense_seconds:.2f}s) | sparse {sparse.result_bytes} B "
          f"({sparse_seconds:.2f}s) | {sv.size} surviving pairs")
    bench_artifact.add("n_sets", N_SETS)
    bench_artifact.add("min_support", PRUNE_MIN_SUPPORT)
    bench_artifact.add("tiles_total", int(total))
    bench_artifact.add("tiles_skipped", int(skipped))
    bench_artifact.add("dense_result_bytes", int(dense.result_bytes))
    bench_artifact.add("sparse_result_bytes", int(sparse.result_bytes))
    bench_artifact.add("dense_seconds", dense_seconds)
    bench_artifact.add("sparse_seconds", sparse_seconds)
    bench_artifact.add("surviving_pairs", int(sv.size))

    assert skipped > 0, "no tiles pruned — the skew should starve most tiles"
    assert sparse.result_bytes < dense.result_bytes


def write_workload(path, n_items: int, n_txns: int, seed: int = 0) -> None:
    """Pair-per-transaction workload with a hot head.

    Most items land in only a handful of transactions (their width-class
    tiles fall below ``MIN_SUPPORT`` and prune); a 40-item hot head joins
    every third transaction, producing the surviving frequent pairs.
    """
    rng = np.random.default_rng(seed)
    hot = min(40, max(2, n_items // 4))
    lines = []
    for t in range(n_txns):
        items = np.unique(rng.integers(hot, n_items, size=2))
        if t % 3 == 0:
            items = np.unique(np.concatenate([items, [int(rng.integers(0, hot))]]))
        lines.append(" ".join(map(str, items)))
    path.write_text("\n".join(lines) + "\n")


def test_auto_demotes_oversized_result(tmp_path, bench_artifact):
    path = tmp_path / "sparse.fimi"
    write_workload(path, N_ITEMS, N_TXNS, seed=SEED)
    miner = BatmapPairMiner(compute="auto")

    # Warm-up on a tiny instance so lazy imports and pool machinery are not
    # billed to the traced windows.
    warm = tmp_path / "warm.fimi"
    write_workload(warm, 64, 200, seed=2)
    miner.mine(read_fimi(warm), min_support=1, rng=SEED)
    miner.mine_stream(warm, min_support=1, rng=SEED, memory_budget="32M",
                      result_format="sparse", filter_items=False)

    report, peak_sparse, sparse_seconds = traced_peak(
        lambda: miner.mine_stream(path, min_support=MIN_SUPPORT, rng=SEED,
                                  memory_budget=BUDGET, result_format="auto",
                                  filter_items=False))
    counts = report.supports.counts
    assert isinstance(counts, SparseCountResult), (
        "auto kept the dense format — the workload no longer exceeds the "
        "budget; lower REPRO_BENCH_SPARSE_BUDGET or raise *_ITEMS")
    n_kept = counts.n_rows
    dense_bytes = 8 * n_kept * n_kept
    assert dense_bytes > BUDGET, (
        f"dense matrix ({dense_bytes} B) fits the budget ({BUDGET} B); "
        "the demotion was not exercised")
    assert peak_sparse < BUDGET, (
        f"sparse streaming peak {peak_sparse} exceeds the budget {BUDGET}")
    assert counts.stats["tiles_skipped"] > 0

    # Bit-identity against the dense oracle — in line when the dense matrix
    # is affordable, on a downsized replica of the same workload otherwise.
    if dense_bytes <= ORACLE_CAP:
        oracle_items, oracle_txns, oracle_path = N_ITEMS, N_TXNS, path
        replica = report
    else:
        oracle_items = int((ORACLE_CAP / 8) ** 0.5 // 2)
        oracle_txns = max(200, oracle_items * N_TXNS // N_ITEMS)
        oracle_path = tmp_path / "replica.fimi"
        write_workload(oracle_path, oracle_items, oracle_txns, seed=SEED)
        replica = miner.mine_stream(oracle_path, min_support=MIN_SUPPORT,
                                    rng=SEED, memory_budget=BUDGET,
                                    result_format="sparse",
                                    filter_items=False)
    dense_report, peak_dense, dense_seconds = traced_peak(
        lambda: miner.mine(read_fimi(oracle_path), min_support=MIN_SUPPORT,
                           rng=SEED, filter_items=False))
    assert (replica.supports.frequent_pairs(MIN_SUPPORT)
            == dense_report.supports.frequent_pairs(MIN_SUPPORT))

    skipped = counts.stats["tiles_skipped"]
    total = counts.stats["tiles_total"]
    print(f"\nbudget {BUDGET} B | dense matrix {dense_bytes} B | sparse peak "
          f"{peak_sparse} B ({sparse_seconds:.1f}s) | oracle peak "
          f"{peak_dense} B at {oracle_items} items ({dense_seconds:.1f}s) | "
          f"pruned {skipped}/{total} tiles | nnz {counts.nnz}")
    bench_artifact.add("n_items", N_ITEMS)
    bench_artifact.add("n_kept", int(n_kept))
    bench_artifact.add("budget_bytes", BUDGET)
    bench_artifact.add("dense_matrix_bytes", int(dense_bytes))
    bench_artifact.add("sparse_peak_bytes", int(peak_sparse))
    bench_artifact.add("sparse_seconds", sparse_seconds)
    bench_artifact.add("oracle_items", int(oracle_items))
    bench_artifact.add("oracle_peak_bytes", int(peak_dense))
    bench_artifact.add("oracle_seconds", dense_seconds)
    bench_artifact.add("tiles_total", int(total))
    bench_artifact.add("tiles_skipped", int(skipped))
    bench_artifact.add("result_bytes", int(counts.result_bytes))
    bench_artifact.add("nnz", int(counts.nnz))
