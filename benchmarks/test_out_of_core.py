"""Out-of-core sharded mining: bounded resident memory under a ≥4x workload.

The claim under test (E15): on a workload whose in-memory pipeline needs at
least **4x the configured resident-set budget**, the sharded streaming
pipeline (``BatmapPairMiner.mine_stream``) returns identical frequent pairs
while its peak traced heap stays **under the budget**.

Accounting: peaks are measured with ``tracemalloc`` (numpy registers its
allocations there), which captures the pipeline's data structures while
excluding the interpreter/import baseline that no pipeline choice can
remove.  The budget covers *everything* the pipeline allocates — including
the O(universe) hash family and the dense result matrix, which the sharded
path must fit alongside its bounded shard state.

Scale knobs: ``REPRO_BENCH_OOC_ITEMS`` / ``REPRO_BENCH_OOC_TOTAL_ITEMS``
(CI downsizes the total; keep it >= ~10^5 or the in-memory path gets cheap
enough that no honest budget satisfies the 4x gap).
"""

from __future__ import annotations

import gc
import os
import tracemalloc

import numpy as np
import pytest

from benchmarks.harness import time_call
from repro.core.sharded import fixed_resident_bytes
from repro.datasets.fimi_io import read_fimi, write_fimi
from repro.datasets.synthetic import generate_density_instance
from repro.mining.pair_mining import BatmapPairMiner

pytestmark = pytest.mark.bench

N_ITEMS = int(os.environ.get("REPRO_BENCH_OOC_ITEMS", 256))
TOTAL_ITEMS = int(os.environ.get("REPRO_BENCH_OOC_TOTAL_ITEMS", 1_020_000))
DENSITY = 0.4
MIN_SUPPORT = 2
SEED = 1
#: Working allowance above the fixed residents; the budget is
#: ``fixed_resident_bytes(...) + WORKING_ALLOWANCE``.  Sized ~25% above the
#: pipeline's observed floor (bulk single-set group tables at r=8192 plus
#: one shard's tidlists) so the assertion guards regressions, not noise.
WORKING_ALLOWANCE = 8_000_000
#: The workload must cost at least this multiple of the budget in memory.
MIN_WORKLOAD_RATIO = 4.0


def traced_peak(fn, *args, **kwargs):
    """Run ``fn`` under tracemalloc; return (result, peak_bytes, seconds)."""
    gc.collect()
    tracemalloc.start()
    try:
        seconds, result = time_call(fn, *args, **kwargs)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak, seconds


def test_sharded_pipeline_respects_memory_budget(tmp_path, bench_artifact):
    db = generate_density_instance(N_ITEMS, DENSITY, TOTAL_ITEMS, rng=0)
    path = tmp_path / "ooc.fimi"
    write_fimi(db, path)
    universe, n_items = db.n_transactions, db.n_items
    del db
    budget = fixed_resident_bytes(universe, n_items) + WORKING_ALLOWANCE

    miner = BatmapPairMiner(compute="host")
    # Warm-up on a tiny instance: lazy imports and pool machinery would
    # otherwise be billed to whichever traced window runs first.
    warm_db = generate_density_instance(16, 0.3, 500, rng=2)
    warm = tmp_path / "warm.fimi"
    write_fimi(warm_db, warm)
    miner.mine(read_fimi(warm), min_support=1, rng=SEED)
    miner.mine_stream(warm, min_support=1, rng=SEED, memory_budget="32M")
    del warm_db

    report_mem, peak_mem, mem_seconds = traced_peak(
        lambda: miner.mine(read_fimi(path), min_support=MIN_SUPPORT, rng=SEED))
    # Park the reference result on disk so the comparison state does not
    # occupy heap inside the streaming pipeline's traced window.
    reference = tmp_path / "reference-counts.npy"
    np.save(reference, report_mem.supports.counts)
    del report_mem

    report, peak_stream, stream_seconds = traced_peak(
        lambda: miner.mine_stream(path, min_support=MIN_SUPPORT, rng=SEED,
                                  memory_budget=budget))

    print(f"\nbudget {budget} B | in-memory peak {peak_mem} B "
          f"({peak_mem / budget:.1f}x budget, {mem_seconds:.1f}s) | "
          f"streaming peak {peak_stream} B "
          f"({peak_stream / budget:.2f}x budget, {stream_seconds:.1f}s) | "
          f"packed {report.batmap_bytes} B | backends "
          f"{report.count_backend}/{report.build_backend}")
    bench_artifact.add("total_items_processed", TOTAL_ITEMS)
    bench_artifact.add("budget_bytes", budget)
    bench_artifact.add("in_memory_peak_bytes", int(peak_mem))
    bench_artifact.add("streaming_peak_bytes", int(peak_stream))
    bench_artifact.add("in_memory_seconds", mem_seconds)
    bench_artifact.add("streaming_seconds", stream_seconds)
    bench_artifact.add("packed_bytes", report.batmap_bytes)
    bench_artifact.add("workload_over_budget", peak_mem / budget)

    # The workload genuinely exceeds the budget: the in-memory pipeline
    # needs at least MIN_WORKLOAD_RATIO times more resident memory.
    assert peak_mem >= MIN_WORKLOAD_RATIO * budget, (
        f"in-memory peak {peak_mem} is below {MIN_WORKLOAD_RATIO}x the "
        f"budget {budget}; raise REPRO_BENCH_OOC_TOTAL_ITEMS"
    )
    # The sharded pipeline honours the configured ceiling on that workload.
    assert peak_stream < budget, (
        f"streaming peak {peak_stream} exceeds the memory budget {budget}"
    )
    # And it is the same computation: a bit-identical support matrix.
    np.testing.assert_array_equal(report.supports.counts, np.load(reference))
