"""E10 — ablations over the design choices DESIGN.md calls out.

These are not figures from the paper; they quantify the individual design
decisions the paper argues for qualitatively:

* **tile size k** (Section III-C): smaller tiles mean more kernel launches
  (watchdog-friendliness costs launch overhead), identical results;
* **work-group size** (Section III-B): the 16x16 choice balances shared-memory
  usage against coalescing width;
* **width sorting** (Section III-C): sorting batmaps by width reduces the
  wasted comparisons inside 16-wide groups;
* **range multiplier / MaxLoop** (Section II): smaller hash ranges save space
  but produce more failed insertions for the repair path to absorb;
* **symmetry pruning** (Section III-C): the upper-triangle schedule does about
  half the work of the full n x n schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.harness import SeriesTable, make_instance
from repro.analysis.theory import measure_insertion_behaviour
from repro.core.collection import BatmapCollection
from repro.core.config import BatmapConfig
from repro.kernels.driver import run_batmap_pair_counts
from repro.kernels.tiling import TileScheduler

pytestmark = pytest.mark.bench


N_ITEMS = 96
DENSITY = 0.05


def _collection(seed: int = 5, sort_by_size: bool = True) -> BatmapCollection:
    db = make_instance(N_ITEMS, DENSITY, total_items=30_000, seed=seed)
    return BatmapCollection.build(db.tidlists(), db.n_transactions, rng=seed,
                                  sort_by_size=sort_by_size)


class TestTileSizeAblation:
    def test_results_identical_and_launches_scale(self):
        coll = _collection()
        table = SeriesTable(title="Ablation — tile size k", x_label="tile_size")
        tile_sizes = [16, 32, 96]
        table.x_values = tile_sizes
        launches, overhead, seconds = [], [], []
        reference = None
        for k in tile_sizes:
            run = run_batmap_pair_counts(coll, tile_size=k)
            if reference is None:
                reference = run.counts
            else:
                assert np.array_equal(run.counts, reference)
            launches.append(run.simulator.totals.launches)
            overhead.append(sum(r.timing.launch_overhead_seconds for r in run.simulator.records))
            seconds.append(run.device_seconds)
        table.add("launches", launches)
        table.add("launch_overhead_s", overhead)
        table.add("device_s", seconds)
        table.show()
        assert launches[0] > launches[-1]
        assert overhead[0] > overhead[-1]


class TestWorkGroupAblation:
    def test_results_identical_across_group_sizes(self):
        coll = _collection()
        reference = None
        shared_bytes = {}
        for wg in ((8, 8), (16, 16)):
            run = run_batmap_pair_counts(coll, tile_size=96, work_group=wg)
            if reference is None:
                reference = run.counts
            else:
                assert np.array_equal(run.counts, reference)
            shared_bytes[wg] = run.simulator.combined_stats().shared_bytes
        # Larger work groups stage more data through shared memory per load,
        # but totals stay in the same ballpark (same underlying comparisons).
        assert shared_bytes[(16, 16)] > 0 and shared_bytes[(8, 8)] > 0


class TestWidthSortingAblation:
    def test_sorting_reduces_device_bytes(self):
        sorted_coll = _collection(seed=6, sort_by_size=True)
        unsorted_coll = _collection(seed=6, sort_by_size=False)
        sorted_run = run_batmap_pair_counts(sorted_coll, tile_size=96)
        unsorted_run = run_batmap_pair_counts(unsorted_coll, tile_size=96)
        # Sorting groups similar widths together so 16-wide groups waste fewer
        # word comparisons on the padding of one long batmap.
        assert sorted_run.total_device_bytes <= unsorted_run.total_device_bytes


class TestSymmetryPruning:
    def test_upper_triangle_halves_the_tiles(self):
        scheduler = TileScheduler(1024, 64)
        assert scheduler.n_tiles == 136           # 16 * 17 / 2
        assert scheduler.n_tiles_full == 256
        assert scheduler.n_tiles / scheduler.n_tiles_full < 0.56


class TestRangeMultiplierAblation:
    def test_space_vs_failures_tradeoff(self):
        table = SeriesTable(title="Ablation — hash range multiplier", x_label="multiplier")
        multipliers = [1.0, 2.0, 4.0]
        table.x_values = multipliers
        failure_rates, ranges = [], []
        for mult in multipliers:
            exp = measure_insertion_behaviour(400, 8192, n_sets=4,
                                              range_multiplier=mult, rng=7)
            failure_rates.append(round(exp.failure_rate, 4))
            cfg = BatmapConfig(range_multiplier=max(1.0, mult))
            ranges.append(cfg.range_for_size(400, 8192))
        table.add("failure_rate", failure_rates)
        table.add("hash_range", ranges)
        table.show()
        assert failure_rates[0] >= failure_rates[-1]
        assert ranges[0] <= ranges[-1]

    def test_tiny_max_loop_increases_failures(self):
        strict = BatmapConfig(max_loop=1, range_multiplier=1.0)
        roomy = BatmapConfig(range_multiplier=2.0)
        db = make_instance(32, 0.3, total_items=20_000, seed=8)
        from repro.mining.preprocess import preprocess
        strict_failures = sum(len(v) for v in
                              preprocess(db, config=strict, rng=0).failed_insertions().values())
        roomy_failures = sum(len(v) for v in
                             preprocess(db, config=roomy, rng=0).failed_insertions().values())
        assert strict_failures >= roomy_failures
