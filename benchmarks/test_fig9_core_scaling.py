"""Figure 9 — relative speed-up of the CPU miners vs number of computation units.

Paper setup: instance of 10 million occurrences, 4000 items, density 5%;
parallel execution on i cores simulated by splitting the instance into i
equal parts; i in {1, 2, 4, 8}.  Finding: neither Apriori nor FP-growth
benefits noticeably from more than four cores (consistent with earlier work
on parallel Apriori).

Scaled harness: 200 items, same splitting methodology, with the simulated
makespan modelled as max(part times) + the measured serial merge of the
per-part count dicts (see EXPERIMENTS.md E5) — the serial reduction is what
caps the speed-up below linear.

**Measured mode** (:class:`TestFigure9Measured`): in addition to the paper's
split-simulation, the multiprocess executor
(:mod:`repro.parallel.executor`) runs the batmap pair-counting workload for
real — shared-memory buffer, worker pool, tile fan-out, serial merge — and
the recorded speed-up curve is a wall-clock measurement, not a model.  See
EXPERIMENTS.md E12.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks.harness import SeriesTable, make_instance
from repro.baselines.apriori import AprioriMiner
from repro.baselines.fpgrowth import FPGrowthMiner
from repro.core.collection import BatmapCollection
from repro.parallel.executor import measure_executor_scaling
from repro.parallel.scaling import measure_split_scaling, relative_speedups

pytestmark = pytest.mark.bench


CORE_COUNTS = (1, 2, 4, 8)
N_ITEMS = 200
DENSITY = 0.05

#: Worker counts of the measured (non-simulated) executor runs.
MEASURED_WORKERS = (1, 2, 4)
#: Sets in the measured pair-counting instance; sized so the counting work
#: dominates pool startup (override for a closer / faster run).
MEASURED_N_SETS = int(os.environ.get("REPRO_BENCH_MEASURED_SETS", 1200))


def core_scaling_series() -> SeriesTable:
    db = make_instance(N_ITEMS, DENSITY, seed=11)
    table = SeriesTable(
        title="Figure 9 (scaled) — relative speed-up vs number of computation units",
        x_label="#cores",
    )
    table.x_values = list(CORE_COUNTS)

    # best-of-2 timing for both the parts and the serial merge: the
    # efficiency-monotonicity assertions tolerate only small noise
    apriori_points = measure_split_scaling(
        lambda t, n, s: AprioriMiner(max_size=2).mine(t, n, s),
        db, min_support=1, core_counts=CORE_COUNTS, repeats=2)
    fp_points = measure_split_scaling(
        lambda t, n, s: FPGrowthMiner(max_size=2).mine_pairs(t, n, s),
        db, min_support=1, core_counts=CORE_COUNTS, repeats=2)

    apriori_speedup = relative_speedups(apriori_points)
    fp_speedup = relative_speedups(fp_points)
    table.add("theoretical", list(CORE_COUNTS))
    table.add("apriori", [round(apriori_speedup[c], 2) for c in CORE_COUNTS])
    table.add("fpgrowth", [round(fp_speedup[c], 2) for c in CORE_COUNTS])
    table.note("parallelism simulated by instance splitting: "
               "max part time + measured serial merge (EXPERIMENTS.md E5)")
    return table


class TestFigure9:
    def test_report(self):
        table = core_scaling_series()
        table.show()
        apriori = dict(zip(table.x_values, table.series["apriori"]))
        fp = dict(zip(table.x_values, table.series["fpgrowth"]))
        for series in (apriori, fp):
            # splitting the instance always stays below the ideal linear speed-up
            assert series[8] < 0.85 * 8.0
            # and the parallel efficiency (speed-up per core) keeps degrading
            # as cores are added — the qualitative finding behind the paper's
            # "no noticeable benefit beyond four cores".  (The hard plateau at
            # exactly 4 cores depends on Borgelt's C implementations' serial
            # fraction and is not asserted here; see EXPERIMENTS.md E5.)
            efficiency = [series[c] / c for c in (1, 2, 4, 8)]
            assert efficiency[1] <= efficiency[0] + 0.05
            assert efficiency[2] <= efficiency[1] + 0.05
            assert efficiency[3] <= efficiency[2] + 0.05

    def test_benchmark_apriori_split4(self, benchmark):
        db = make_instance(N_ITEMS, DENSITY, seed=12)
        parts = db.split(4)

        def run_all_parts():
            return [AprioriMiner(max_size=2).mine(p.transactions, p.n_items, 1)
                    for p in parts]

        results = benchmark(run_all_parts)
        assert len(results) == 4


# --------------------------------------------------------------------------- #
# Measured mode: the executor runs the workload for real
# --------------------------------------------------------------------------- #
def _measured_collection(seed: int = 13) -> BatmapCollection:
    """A pair-counting instance large enough that the pool pays off."""
    rng = np.random.default_rng(seed)
    universe = 8192
    sets = [np.sort(rng.choice(universe, size=int(rng.integers(16, 260)),
                               replace=False))
            for _ in range(MEASURED_N_SETS)]
    return BatmapCollection.build(sets, universe, rng=seed)


def measured_core_scaling_series() -> tuple:
    """Real multiprocess speed-up of all-pairs counting (not a simulation).

    Every point is an end-to-end wall-clock run of
    :class:`~repro.parallel.executor.ParallelPairCounter`: shared-segment
    creation, pool startup, tile fan-out and the serial per-tile merge are
    all inside the measured window.
    """
    collection = _measured_collection()
    points = measure_executor_scaling(collection, worker_counts=MEASURED_WORKERS,
                                      repeats=2)
    speedups = relative_speedups(points)
    table = SeriesTable(
        title="Figure 9 (measured) — real multiprocess pair-counting speed-up",
        x_label="#workers",
    )
    table.x_values = list(MEASURED_WORKERS)
    table.add("theoretical", list(MEASURED_WORKERS))
    table.add("seconds", [round(p.seconds, 3) for p in points])
    table.add("speedup", [round(speedups[w], 2) for w in MEASURED_WORKERS])
    table.note(f"measured end-to-end on {os.cpu_count()} host cores "
               f"({MEASURED_N_SETS} sets, shared-memory executor; "
               "EXPERIMENTS.md E12)")
    return table, speedups


class TestFigure9Measured:
    def test_report(self):
        table, speedups = measured_core_scaling_series()
        table.show()
        assert speedups[1] == pytest.approx(1.0)
        assert all(s > 0 for s in speedups.values())
        cores = os.cpu_count() or 1
        if cores >= 4:
            # On real multi-core hardware 4 workers must at least halve the
            # 1-worker wall clock (the PR 2 acceptance bar).  On fewer cores
            # no real speed-up is physically available, so only sanity holds.
            # Downsized runs (CI smoke) use a softer bar: with a smaller
            # instance the fixed pool/merge overhead claims a larger share.
            assert speedups[4] >= (2.0 if MEASURED_N_SETS >= 1200 else 1.5)
        if cores < 2:
            # Single-core host: parallelism cannot win, but the executor must
            # not collapse either (startup + merge overhead stays bounded).
            assert speedups[max(MEASURED_WORKERS)] >= 0.3
