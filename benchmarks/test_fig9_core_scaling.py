"""Figure 9 — relative speed-up of the CPU miners vs number of computation units.

Paper setup: instance of 10 million occurrences, 4000 items, density 5%;
parallel execution on i cores simulated by splitting the instance into i
equal parts; i in {1, 2, 4, 8}.  Finding: neither Apriori nor FP-growth
benefits noticeably from more than four cores (consistent with earlier work
on parallel Apriori).

Scaled harness: 200 items, same splitting methodology, with the simulated
makespan modelled as max(part times) + the measured serial merge of the
per-part count dicts (see EXPERIMENTS.md E5) — the serial reduction is what
caps the speed-up below linear.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import SeriesTable, make_instance
from repro.baselines.apriori import AprioriMiner
from repro.baselines.fpgrowth import FPGrowthMiner
from repro.parallel.scaling import measure_split_scaling, relative_speedups

pytestmark = pytest.mark.bench


CORE_COUNTS = (1, 2, 4, 8)
N_ITEMS = 200
DENSITY = 0.05


def core_scaling_series() -> SeriesTable:
    db = make_instance(N_ITEMS, DENSITY, seed=11)
    table = SeriesTable(
        title="Figure 9 (scaled) — relative speed-up vs number of computation units",
        x_label="#cores",
    )
    table.x_values = list(CORE_COUNTS)

    # best-of-2 timing for both the parts and the serial merge: the
    # efficiency-monotonicity assertions tolerate only small noise
    apriori_points = measure_split_scaling(
        lambda t, n, s: AprioriMiner(max_size=2).mine(t, n, s),
        db, min_support=1, core_counts=CORE_COUNTS, repeats=2)
    fp_points = measure_split_scaling(
        lambda t, n, s: FPGrowthMiner(max_size=2).mine_pairs(t, n, s),
        db, min_support=1, core_counts=CORE_COUNTS, repeats=2)

    apriori_speedup = relative_speedups(apriori_points)
    fp_speedup = relative_speedups(fp_points)
    table.add("theoretical", list(CORE_COUNTS))
    table.add("apriori", [round(apriori_speedup[c], 2) for c in CORE_COUNTS])
    table.add("fpgrowth", [round(fp_speedup[c], 2) for c in CORE_COUNTS])
    table.note("parallelism simulated by instance splitting: "
               "max part time + measured serial merge (EXPERIMENTS.md E5)")
    return table


class TestFigure9:
    def test_report(self):
        table = core_scaling_series()
        table.show()
        apriori = dict(zip(table.x_values, table.series["apriori"]))
        fp = dict(zip(table.x_values, table.series["fpgrowth"]))
        for series in (apriori, fp):
            # splitting the instance always stays below the ideal linear speed-up
            assert series[8] < 0.85 * 8.0
            # and the parallel efficiency (speed-up per core) keeps degrading
            # as cores are added — the qualitative finding behind the paper's
            # "no noticeable benefit beyond four cores".  (The hard plateau at
            # exactly 4 cores depends on Borgelt's C implementations' serial
            # fraction and is not asserted here; see EXPERIMENTS.md E5.)
            efficiency = [series[c] / c for c in (1, 2, 4, 8)]
            assert efficiency[1] <= efficiency[0] + 0.05
            assert efficiency[2] <= efficiency[1] + 0.05
            assert efficiency[3] <= efficiency[2] + 0.05

    def test_benchmark_apriori_split4(self, benchmark):
        db = make_instance(N_ITEMS, DENSITY, seed=12)
        parts = db.split(4)

        def run_all_parts():
            return [AprioriMiner(max_size=2).mine(p.transactions, p.n_items, 1)
                    for p in parts]

        results = benchmark(run_all_parts)
        assert len(results) == 4
