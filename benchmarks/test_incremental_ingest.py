"""Incremental ingest: appending a delta must beat rebuilding the world.

The claim under test (E18): appending 10% new sets to a spilled collection
costs **under 25% of a full from-scratch rebuild** of the final dataset —
the whole point of delta-shard ingest is that existing shards are never
touched, so ingest cost tracks the delta, not the corpus.  The benchmark
also times a full compaction of the appended state and the post-compaction
point-query latency, and pins bit-identity: the appended-then-compacted
spill answers a query sample exactly like the from-scratch rebuild (same
seed, same family capacity).

Scale knobs: ``REPRO_BENCH_INC_SETS`` (base corpus size; CI downsizes).
The <25% assertion only fires at full scale — at toy sizes fixed overheads
(manifest IO, process setup) dominate and the ratio is meaningless.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from benchmarks.harness import time_call
from repro.core.sharded import ShardedCollection
from repro.serve.engine import SpillQueryEngine
from repro.utils.memory import parse_memory_size
from tests.conftest import random_sets

pytestmark = pytest.mark.bench

FULL_SCALE_SETS = 2000
N_SETS = int(os.environ.get("REPRO_BENCH_INC_SETS", FULL_SCALE_SETS))
UNIVERSE = 4096
CAPACITY = 8188  # lazy-family headroom so ingest could also grow the universe
MIN_SIZE, MAX_SIZE = 20, 200
BUDGET = parse_memory_size("256M")
SEED = 13
APPEND_FRACTION = 0.10
MAX_APPEND_RATIO = 0.25
N_QUERY_SAMPLE = 200


def build_kwargs():
    return dict(rng=SEED, memory_budget=BUDGET, family_kind="lazy",
                family_capacity=CAPACITY)


def query_p50_ms(engine, pairs) -> float:
    samples = []
    for pair in pairs:
        start = time.perf_counter()
        engine.count_pairs(pair.reshape(1, 2))
        samples.append((time.perf_counter() - start) * 1e3)
    return float(np.median(samples))


def test_append_beats_rebuild(tmp_path, bench_artifact):
    rng = np.random.default_rng(4)
    n_delta = max(1, int(N_SETS * APPEND_FRACTION))
    base = random_sets(rng, N_SETS, UNIVERSE, min_size=MIN_SIZE,
                       max_size=MAX_SIZE)
    delta = random_sets(rng, n_delta, UNIVERSE, min_size=MIN_SIZE,
                        max_size=MAX_SIZE)

    build_seconds, sharded = time_call(
        ShardedCollection.build, base, UNIVERSE, tmp_path / "incremental",
        **build_kwargs())
    append_seconds, _ = time_call(sharded.append, delta)
    rebuild_seconds, rebuilt = time_call(
        ShardedCollection.build, base + delta, UNIVERSE, tmp_path / "scratch",
        **build_kwargs())
    compact_seconds, _ = time_call(sharded.compact, full=True)

    # Bit-identity spot check: same family (same seed + capacity), so the
    # compacted incremental spill and the rebuild serve identical answers.
    pair_rng = np.random.default_rng(6)
    pairs = pair_rng.integers(0, N_SETS + n_delta,
                              size=(N_QUERY_SAMPLE, 2)).astype(np.int64)
    incremental_engine = SpillQueryEngine(sharded)
    rebuilt_engine = SpillQueryEngine(rebuilt)
    try:
        np.testing.assert_array_equal(incremental_engine.count_pairs(pairs),
                                      rebuilt_engine.count_pairs(pairs))
        p50_ms = query_p50_ms(incremental_engine, pairs[:50])
    finally:
        incremental_engine.close()
        rebuilt_engine.close()

    ratio = append_seconds / rebuild_seconds
    print(f"\n{N_SETS} base sets + {n_delta} appended | build "
          f"{build_seconds:.2f}s | append {append_seconds:.2f}s | rebuild "
          f"{rebuild_seconds:.2f}s ({ratio:.0%}) | compact "
          f"{compact_seconds:.2f}s | post-compaction query p50 {p50_ms:.3f} ms")
    bench_artifact.add("n_sets", N_SETS)
    bench_artifact.add("n_appended", n_delta)
    bench_artifact.add("append_fraction", APPEND_FRACTION)
    bench_artifact.add("build_seconds", build_seconds)
    bench_artifact.add("append_seconds", append_seconds)
    bench_artifact.add("rebuild_seconds", rebuild_seconds)
    bench_artifact.add("append_over_rebuild", ratio)
    bench_artifact.add("compact_seconds", compact_seconds)
    bench_artifact.add("post_compact_query_p50_ms", p50_ms)

    if N_SETS >= FULL_SCALE_SETS:
        assert append_seconds < MAX_APPEND_RATIO * rebuild_seconds, (
            f"appending {APPEND_FRACTION:.0%} cost {ratio:.0%} of a full "
            f"rebuild (limit {MAX_APPEND_RATIO:.0%})")
