"""Section IV "Throughput computation" and "Comparison with merging" (E8).

The paper's text derives, for the n = 4000 / 10M / 5% experiment:

* GPU batmap throughput: 36.2 GB/s (a factor >4 below the 159 GB/s peak);
* 3.68e9 set elements per second;
* 13-26x faster than a single-core merge of sorted lists (2.25e8 elements/s);
* the 8-core merge reaches 1.71e9 elements/s, still 29-57% of the GPU.

The harness reproduces the *structure* of that comparison at reduced scale:
the batmap numbers come from the simulator's modelled device time, the merge
numbers from a measured NumPy merge on this machine, and the paper's own
arithmetic is checked exactly (it only depends on the published constants).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.harness import SeriesTable, make_instance, run_batmap_miner, time_call
from repro.analysis.throughput import compute_throughput
from repro.baselines.merge import intersection_size_numpy, intersection_size_sorted
from repro.gpu.device import GTX_285

pytestmark = pytest.mark.bench


N_ITEMS = 160
DENSITY = 0.05


def paper_arithmetic() -> dict[str, float]:
    """The exact numbers of the paper's throughput paragraph (no simulation)."""
    gpu = compute_throughput(n_sets=4000, avg_set_size=2500, seconds=10.87)
    merge_1core = compute_throughput(4000, 2500, 40e9 / 2.25e8)
    merge_8core = compute_throughput(4000, 2500, 40e9 / 1.71e9)
    return {
        "gpu_GBps": gpu.gbytes_per_second,
        "gpu_elems_per_s": gpu.elements_per_second,
        "fraction_of_peak": gpu.fraction_of_peak(GTX_285.memory_bandwidth_gbps),
        "speedup_vs_merge_1core": gpu.speedup_over(merge_1core),
        "speedup_vs_merge_8core": gpu.speedup_over(merge_8core),
    }


def simulated_throughput() -> dict[str, float]:
    """The same accounting applied to a scaled simulator run and a measured merge."""
    db = make_instance(N_ITEMS, DENSITY, seed=33)
    report = run_batmap_miner(db)
    avg = np.mean([t.size for t in db.tidlists()])
    gpu = compute_throughput(N_ITEMS, float(avg), report.counting_seconds)

    # Measured merge baseline on the same tidlists (every pair, vectorised merge).
    tidlists = db.tidlists()
    def merge_all():
        total = 0
        for i in range(len(tidlists)):
            for j in range(i + 1, len(tidlists)):
                total += intersection_size_numpy(tidlists[i], tidlists[j])
        return total
    merge_seconds, _ = time_call(merge_all)
    merge = compute_throughput(N_ITEMS, float(avg), merge_seconds)
    return {
        "gpu_modelled_GBps": gpu.gbytes_per_second,
        "gpu_fraction_of_peak": gpu.fraction_of_peak(GTX_285.memory_bandwidth_gbps),
        "merge_measured_elems_per_s": merge.elements_per_second,
        "gpu_speedup_vs_merge": gpu.speedup_over(merge),
    }


class TestThroughputText:
    def test_paper_arithmetic_reproduced_exactly(self):
        numbers = paper_arithmetic()
        table = SeriesTable(title="Section IV throughput paragraph (paper constants)",
                            x_label="quantity")
        table.x_values = list(numbers)
        table.add("value", [round(v, 3) for v in numbers.values()])
        table.show()
        assert numbers["gpu_GBps"] == pytest.approx(36.2, rel=0.01)
        assert numbers["gpu_elems_per_s"] == pytest.approx(3.68e9, rel=0.01)
        assert numbers["fraction_of_peak"] < 1 / 4          # "a factor of over 4 from peak"
        assert 13 <= numbers["speedup_vs_merge_1core"] <= 26
        assert 1 / 0.57 <= numbers["speedup_vs_merge_8core"] <= 1 / 0.29

    def test_simulated_run_reproduces_the_shape(self):
        numbers = simulated_throughput()
        table = SeriesTable(title="Throughput accounting (scaled simulator run)",
                            x_label="quantity")
        table.x_values = list(numbers)
        table.add("value", [round(v, 3) for v in numbers.values()])
        table.show()
        # The modelled batmap run stays below the device's peak bandwidth but
        # within a factor ~10 of it (memory bound, as the paper argues) ...
        assert 0.02 < numbers["gpu_fraction_of_peak"] < 1.0
        # ... and processes elements much faster than the per-pair merge loop.
        assert numbers["gpu_speedup_vs_merge"] > 5

    def test_benchmark_single_merge_intersection(self, benchmark):
        rng = np.random.default_rng(0)
        a = np.sort(rng.choice(1 << 22, size=1 << 16, replace=False))
        b = np.sort(rng.choice(1 << 22, size=1 << 16, replace=False))
        benchmark(lambda: intersection_size_numpy(a, b))

    def test_benchmark_scalar_merge_intersection(self, benchmark):
        rng = np.random.default_rng(1)
        a = np.sort(rng.choice(1 << 18, size=1 << 12, replace=False))
        b = np.sort(rng.choice(1 << 18, size=1 << 12, replace=False))
        benchmark(lambda: intersection_size_sorted(a, b))
