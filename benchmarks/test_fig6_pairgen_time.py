"""Figure 6 — pure pair-generation time for varying number of distinct items.

Paper setup: instance size 10 million occurrences, density 5%, n from 4,000
to 128,000; only the super-linear "pair generation" phase is timed.  Apriori
and FP-growth exceed the 1800 s limit at n = 64,000, while the GPU batmap
pipeline scales well in n and is more than an order of magnitude faster than
single-core FP-growth at large n.

Scaled harness: the CPU baselines are wall-clocked; the batmap series reports
the simulator's modelled device time (the faithful analogue of the paper's
GPU measurement) alongside the host wall-clock of the simulation itself.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import (
    SeriesTable,
    TIME_LIMIT_SECONDS,
    make_instance,
    run_apriori_pairs,
    run_batmap_miner,
    run_eclat_pairs,
    run_fpgrowth_pairs,
    time_call,
)

pytestmark = pytest.mark.bench

N_ITEMS_SWEEP = [40, 80, 160, 320, 640]
DENSITY = 0.05


def pair_generation_series() -> SeriesTable:
    table = SeriesTable(
        title="Figure 6 (scaled) — pure pair generation time vs number of distinct items",
        x_label="#items",
    )
    table.x_values = list(N_ITEMS_SWEEP)
    apriori_t, fp_t, eclat_t, gpu_model_t = [], [], [], []
    censored = []
    for n in N_ITEMS_SWEEP:
        db = make_instance(n, DENSITY, seed=n + 1)
        t_apriori, _ = time_call(run_apriori_pairs, db)
        t_fp, _ = time_call(run_fpgrowth_pairs, db)
        t_eclat, _ = time_call(run_eclat_pairs, db)
        report = run_batmap_miner(db)
        apriori_t.append(min(t_apriori, TIME_LIMIT_SECONDS))
        fp_t.append(min(t_fp, TIME_LIMIT_SECONDS))
        eclat_t.append(min(t_eclat, TIME_LIMIT_SECONDS))
        gpu_model_t.append(report.counting_seconds)
        if t_apriori >= TIME_LIMIT_SECONDS or t_fp >= TIME_LIMIT_SECONDS:
            censored.append(n)
    table.add("apriori_s", apriori_t)
    table.add("fpgrowth_s", fp_t)
    table.add("eclat_s", eclat_t)
    table.add("gpu_batmap_device_s", gpu_model_t)
    if censored:
        table.note(f"censored at the {TIME_LIMIT_SECONDS}s limit for n in {censored}")
    table.note("gpu series = modelled GTX 285 device time (simulator), CPU series = wall clock")
    return table


class TestFigure6:
    def test_report(self):
        table = pair_generation_series()
        table.show()
        gpu = table.series["gpu_batmap_device_s"]
        apriori = table.series["apriori_s"]
        fp = table.series["fpgrowth_s"]
        n_ratio = N_ITEMS_SWEEP[-1] / N_ITEMS_SWEEP[0]
        # The GPU counting phase is far faster than both CPU baselines at the
        # largest n (the paper reports >10x vs FP-growth).
        assert gpu[-1] < fp[-1]
        assert gpu[-1] < apriori[-1]
        # And it scales (roughly) linearly in n: the n^2 pair space is offset
        # by each batmap shrinking as 1/n at fixed instance size.
        assert gpu[-1] / max(gpu[0], 1e-9) < 3 * n_ratio

    def test_benchmark_batmap_counting(self, benchmark):
        db = make_instance(160, DENSITY, seed=7)
        report = benchmark(lambda: run_batmap_miner(db))
        assert report.counting_seconds > 0

    def test_benchmark_fpgrowth_counting(self, benchmark):
        db = make_instance(160, DENSITY, seed=7)
        pairs = benchmark(lambda: run_fpgrowth_pairs(db)[1])
        assert pairs
