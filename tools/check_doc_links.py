"""Check that intra-repo markdown links and anchors resolve.  Stdlib only.

Scans every tracked-directory ``*.md`` file, extracts inline links outside
code fences / code spans, and verifies:

* relative file targets exist inside the repository;
* ``#fragment`` targets (same-file or ``other.md#anchor``) match a heading
  anchor, computed with GitHub's slug rules (lowercase, punctuation
  stripped, spaces to hyphens, ``-N`` suffixes for duplicates).

Skipped: absolute URLs (``http(s)://``, ``mailto:``) and targets that
resolve *outside* the repository root — those are GitHub-site-relative
URLs (the CI badge's ``../../actions/...``) that only exist on the forge,
not in the checkout.

Exit status 0 when every link resolves, 1 otherwise (one line per dead
link).  Run from anywhere:

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Directories never scanned (generated output, VCS internals).
SKIP_DIRS = {".git", ".pytest_cache", "bench-artifacts", "bench-history",
             "__pycache__", ".ruff_cache", "node_modules"}

_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
_INLINE_CODE = re.compile(r"`[^`]*`")
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?\s*\)")


def markdown_files() -> list:
    """Every ``*.md`` under the repo root, skipping generated directories."""
    files = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            files.append(path)
    return files


def _visible_lines(text: str):
    """Markdown lines with fenced code blocks blanked out."""
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            yield ""
        else:
            yield "" if in_fence else line


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: the target of ``#fragment`` links."""
    text = _INLINE_CODE.sub(lambda m: m.group(0).strip("`"), heading)
    text = re.sub(r"[*_~]", "", text)              # emphasis markers
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)           # punctuation (keeps _ and -)
    return text.replace(" ", "-")


def heading_anchors(path: Path) -> set:
    """All anchors a markdown file defines, with duplicate ``-N`` suffixes."""
    anchors: set = set()
    counts: dict = {}
    for line in _visible_lines(path.read_text()):
        match = _HEADING.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def extract_links(path: Path) -> list:
    """``(lineno, target)`` for each inline link outside code."""
    links = []
    for lineno, line in enumerate(_visible_lines(path.read_text()), start=1):
        for match in _LINK.finditer(_INLINE_CODE.sub("", line)):
            links.append((lineno, match.group(1)))
    return links


def check_file(path: Path, anchor_cache: dict) -> list:
    """All dead-link error strings for one markdown file."""
    errors = []

    def anchors_of(target: Path) -> set:
        if target not in anchor_cache:
            anchor_cache[target] = heading_anchors(target)
        return anchor_cache[target]

    for lineno, raw in extract_links(path):
        where = f"{path.relative_to(REPO_ROOT)}:{lineno}"
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", raw):    # http:, mailto:, ...
            continue
        target_part, _, fragment = raw.partition("#")
        if not target_part:                                 # same-file anchor
            if fragment not in anchors_of(path):
                errors.append(f"{where}: dead anchor #{fragment}")
            continue
        resolved = (path.parent / target_part).resolve()
        try:
            resolved.relative_to(REPO_ROOT)
        except ValueError:
            continue        # GitHub-site-relative (e.g. the CI badge) — skip
        if not resolved.exists():
            errors.append(f"{where}: missing target {raw}")
            continue
        if fragment:
            if resolved.suffix.lower() != ".md":
                errors.append(f"{where}: fragment on non-markdown target {raw}")
            elif fragment not in anchors_of(resolved):
                errors.append(f"{where}: dead anchor {raw}")
    return errors


def check_all() -> list:
    """Dead-link errors across every markdown file in the repository."""
    anchor_cache: dict = {}
    errors = []
    for path in markdown_files():
        errors.extend(check_file(path, anchor_cache))
    return errors


def main() -> int:
    files = markdown_files()
    errors = check_all()
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} dead link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
