"""Regenerate the CLI ``--help`` snapshots under ``tests/data/cli_help/``.

``tests/test_cli_help.py`` compares every subcommand's ``format_help()``
against these files, so the command-line reference cannot drift silently —
a parser change fails the suite until the snapshot (and any docs quoting
it) is updated deliberately.  Run from the repository root:

    python tools/update_cli_snapshots.py

The rendering is normalised to be Python-version independent: a fixed
80-column width, and Python 3.9's ``optional arguments:`` heading rewritten
to the modern ``options:``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SNAPSHOT_DIR = REPO_ROOT / "tests" / "data" / "cli_help"

#: Fixed rendering width: argparse reads ``COLUMNS`` at format time, so
#: pinning it here (and in the test) makes snapshots terminal-independent.
HELP_COLUMNS = "80"

#: Snapshot name used for the top-level ``repro --help`` output.
TOP_LEVEL = "repro"


def render_help(parser) -> str:
    """One parser's ``--help`` text, normalised across Python versions."""
    old_columns = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = HELP_COLUMNS
    try:
        text = parser.format_help()
    finally:
        if old_columns is None:
            del os.environ["COLUMNS"]
        else:
            os.environ["COLUMNS"] = old_columns
    # Python 3.9 titles the flag section "optional arguments:".
    return text.replace("optional arguments:", "options:")


def snapshot_sources() -> dict:
    """Map snapshot file stem -> parser for every CLI entry point."""
    from repro.cli import build_parser, subcommand_parsers

    sources = {TOP_LEVEL: build_parser()}
    for name, subparser in subcommand_parsers().items():
        sources[name] = subparser
    return sources


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    SNAPSHOT_DIR.mkdir(parents=True, exist_ok=True)
    sources = snapshot_sources()
    stale = {p.name for p in SNAPSHOT_DIR.glob("*.txt")}
    for name, parser in sorted(sources.items()):
        path = SNAPSHOT_DIR / f"{name}.txt"
        path.write_text(render_help(parser))
        stale.discard(path.name)
        print(f"wrote {path.relative_to(REPO_ROOT)}")
    for name in sorted(stale):
        (SNAPSHOT_DIR / name).unlink()
        print(f"removed stale {name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
