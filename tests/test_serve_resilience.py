"""Serving resilience: damaged reloads, hostile connections, client retry.

The server must keep serving through everything short of its own artifact
vanishing: a ``reload`` that lands on a damaged or mid-commit artifact
answers a structured ``reload-failed`` error and keeps the old engine; a
connection that sends garbage (malformed JSON, unknown ops, oversized
lines) gets structured errors and stays usable; and the synchronous client
reconnects transparently across server restarts.
"""

from __future__ import annotations

import json
import shutil
import socket

import numpy as np
import pytest

from repro.core.sharded import ShardedCollection
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import MAX_LINE_BYTES
from repro.serve.server import BackgroundServer
from tests.conftest import random_sets


@pytest.fixture
def spill(tmp_path):
    rng = np.random.default_rng(8)
    sets = random_sets(rng, 10, 256, min_size=4, max_size=40)
    ShardedCollection.build(sets, 256, tmp_path / "spill", rng=13,
                            memory_budget=60_000)
    return tmp_path / "spill"


class TestReloadResilience:
    def test_reload_on_damaged_artifact_keeps_the_old_engine(self, spill):
        with BackgroundServer(spill) as bg:
            with ServeClient(bg.host, bg.port) as client:
                before = client.count([(0, 1), (2, 3)])
                manifest = (spill / "manifest.json").read_text()
                (spill / "manifest.json").write_text("{broken")
                with pytest.raises(ServeError) as excinfo:
                    client.reload()
                assert excinfo.value.code == "reload-failed"
                assert "still serving generation 0" in excinfo.value.message
                assert "repro verify" in excinfo.value.message
                # The old engine still answers, on the same connection.
                assert client.count([(0, 1), (2, 3)]) == before
                # Repairing the artifact makes reload succeed again.
                (spill / "manifest.json").write_text(manifest)
                assert client.reload()["generation"] == 0
                assert client.count([(0, 1), (2, 3)]) == before

    def test_reload_on_vanished_artifact_keeps_the_old_engine(self, spill):
        with BackgroundServer(spill) as bg:
            with ServeClient(bg.host, bg.port) as client:
                before = client.stats()
                shutil.rmtree(spill / "shard_0000")
                (spill / "manifest.json").unlink()
                with pytest.raises(ServeError) as excinfo:
                    client.reload()
                assert excinfo.value.code == "reload-failed"
                assert client.stats() == before


class TestHostileConnections:
    def _open(self, bg):
        sock = socket.create_connection((bg.host, bg.port), timeout=30)
        return sock, sock.makefile("rwb")

    def test_oversized_line_gets_an_error_and_the_connection_survives(
            self, spill):
        with BackgroundServer(spill) as bg:
            sock, f = self._open(bg)
            try:
                padding = "x" * (MAX_LINE_BYTES + 100)
                f.write(json.dumps({"id": 1, "op": "ping",
                                    "pad": padding}).encode() + b"\n")
                f.write(b'{"id": 2, "op": "ping"}\n')
                f.flush()
                first = json.loads(f.readline())
                assert first["ok"] is False
                assert first["error"]["code"] == "bad-request"
                assert "exceeds" in first["error"]["message"]
                second = json.loads(f.readline())
                assert second == {"id": 2, "ok": True, "result": "pong"}
            finally:
                sock.close()

    def test_several_oversized_lines_then_normal_service(self, spill):
        with BackgroundServer(spill) as bg:
            sock, f = self._open(bg)
            try:
                for _ in range(3):
                    f.write(b"y" * (MAX_LINE_BYTES + 1) + b"\n")
                f.write(b'{"id": 9, "op": "ping"}\n')
                f.flush()
                responses = [json.loads(f.readline()) for _ in range(4)]
                assert [r["ok"] for r in responses] == [False] * 3 + [True]
                assert responses[-1]["id"] == 9
            finally:
                sock.close()

    def test_malformed_json_then_unknown_op_then_normal(self, spill):
        with BackgroundServer(spill) as bg:
            sock, f = self._open(bg)
            try:
                f.write(b"not json at all\n")
                f.write(b'{"id": 5, "op": "explode"}\n')
                f.write(b'{"id": 6, "op": "ping"}\n')
                f.flush()
                bad = json.loads(f.readline())
                assert bad["error"]["code"] == "bad-request"
                unknown = json.loads(f.readline())
                assert unknown["id"] == 5
                assert unknown["error"]["code"] == "unknown-op"
                fine = json.loads(f.readline())
                assert fine == {"id": 6, "ok": True, "result": "pong"}
            finally:
                sock.close()


class TestClientRetry:
    def test_client_survives_a_server_restart(self, spill):
        bg = BackgroundServer(spill).start()
        host, port = bg.host, bg.port
        client = ServeClient(host, port, retries=4, backoff=0.05)
        try:
            assert client.ping() == "pong"
            bg.stop()
            bg = BackgroundServer(spill, host=host, port=port).start()
            # The old socket is dead; the retry loop reconnects and resends.
            assert client.ping() == "pong"
            assert client.count([(0, 1)]) == client.count([(0, 1)])
        finally:
            client.close()
            bg.stop()

    def test_retries_exhausted_raises_connection_error(self, spill):
        with BackgroundServer(spill) as bg:
            client = ServeClient(bg.host, bg.port, retries=2, backoff=0.01,
                                 timeout=2.0)
        # Server gone for good: every reconnect fails.
        with pytest.raises(ConnectionError, match="3 attempts"):
            client.ping()
        client.close()

    def test_zero_retries_fails_fast(self, spill):
        with BackgroundServer(spill) as bg:
            client = ServeClient(bg.host, bg.port, retries=0, timeout=2.0)
        with pytest.raises(ConnectionError, match="1 attempts"):
            client.ping()
        client.close()

    def test_serve_errors_are_not_retried(self, spill):
        with BackgroundServer(spill) as bg:
            with ServeClient(bg.host, bg.port, retries=3) as client:
                with pytest.raises(ServeError):
                    client.request("bogus-op")
                assert client.metrics()["errors_by_code"]["unknown-op"] == 1
