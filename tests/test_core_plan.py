"""Tests for the workload planner (repro.core.plan)."""

import numpy as np
import pytest

import repro.parallel.executor as executor_module
from repro.core.collection import BatmapCollection
from repro.core.config import BatmapConfig
from repro.core.plan import (
    BULK_BUILD_MIN_ELEMENTS,
    PARALLEL_BUILD_MIN_ELEMENTS,
    PARALLEL_BUILD_MIN_SETS,
    WIDE_WORDS_PER_SET,
    BuildPlan,
    CountPlan,
    PlanFeatures,
    plan_build,
    plan_counts,
    plan_levelwise,
)


def small_collection(n_sets=6, universe=256, rng=0):
    sets = [np.arange(i, universe, n_sets, dtype=np.int64) for i in range(n_sets)]
    return BatmapCollection.build(sets, universe, rng=rng)


def features(n_sets=512, mean_words=64, r0=16, byte_entries=True, cached=False):
    return PlanFeatures(
        n_sets=n_sets,
        total_words=n_sets * mean_words,
        r0=r0,
        byte_entries=byte_entries,
        cached_engine=cached,
    )


class TestCountPlanValidation:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            CountPlan("quantum", 1, "nope")

    def test_rejects_unknown_request(self):
        with pytest.raises(ValueError):
            plan_counts(features(), requested="quantum")

    def test_from_collection_features(self):
        coll = small_collection()
        feats = PlanFeatures.from_collection(coll)
        assert feats.n_sets == len(coll)
        assert feats.r0 == coll.r0
        assert feats.byte_entries
        assert feats.total_words == sum(3 * bm.r // 4 for bm in coll.batmaps_sorted)
        assert not feats.cached_engine
        coll.batch_counter()
        assert PlanFeatures.from_collection(coll).cached_engine


class TestExplicitRequests:
    def test_explicit_backends_honoured(self):
        for backend in ("host", "batch", "kernel"):
            assert plan_counts(features(), requested=backend).backend == backend

    def test_parallel_demotes_below_floor(self):
        plan = plan_counts(features(n_sets=4), requested="parallel", workers=4)
        assert plan.backend == "batch"
        assert "floor" in plan.reason

    def test_parallel_demotes_on_single_worker(self):
        plan = plan_counts(features(n_sets=4096), requested="parallel", workers=1)
        assert plan.backend == "batch"

    def test_parallel_honoured_when_it_pays(self):
        plan = plan_counts(features(n_sets=4096), requested="parallel", workers=4)
        assert plan.backend == "parallel"
        assert plan.workers == 4

    def test_explicit_parallel_ignores_wide_heuristic(self):
        """An explicit parallel request is not second-guessed by the width mix."""
        wide = features(n_sets=4096, mean_words=4 * WIDE_WORDS_PER_SET)
        assert plan_counts(wide, requested="parallel", workers=4).backend == "parallel"


class TestAutoPolicy:
    def test_small_point_query_stays_on_host(self):
        plan = plan_counts(features(n_sets=4096), workers=4, n_pairs=1)
        assert plan.backend == "host"

    def test_point_query_uses_cached_engine(self):
        plan = plan_counts(features(n_sets=4096, cached=True), workers=4, n_pairs=1)
        assert plan.backend != "host"

    def test_small_collection_goes_batch(self):
        assert plan_counts(features(n_sets=32), workers=4).backend == "batch"

    def test_single_worker_goes_batch(self):
        assert plan_counts(features(n_sets=4096), workers=1).backend == "batch"

    def test_wide_class_heavy_goes_batch(self):
        wide = features(n_sets=4096, mean_words=WIDE_WORDS_PER_SET)
        plan = plan_counts(wide, workers=4)
        assert plan.backend == "batch"
        assert "wide" in plan.reason

    def test_large_multicore_goes_parallel(self):
        plan = plan_counts(features(n_sets=4096, mean_words=64), workers=4)
        assert plan.backend == "parallel"
        assert plan.workers == 4

    def test_sub_word_ranges_go_host(self):
        assert plan_counts(features(r0=2), workers=4).backend == "host"

    def test_wide_entries_go_host(self):
        assert plan_counts(features(byte_entries=False), workers=4).backend == "host"

    def test_wide_payload_collection_plans_host(self):
        wide_coll = BatmapCollection.build(
            [np.arange(0, 200, 3), np.arange(0, 200, 5)], 200,
            config=BatmapConfig(payload_bits=9), rng=0,
        )
        assert plan_counts(wide_coll, workers=4).backend == "host"

    def test_respects_monkeypatched_floor(self, monkeypatch):
        """The executor's floor is read at plan time, so test patches apply."""
        monkeypatch.setattr(executor_module, "PARALLEL_MIN_SETS", 2)
        plan = plan_counts(features(n_sets=8, mean_words=16), workers=2)
        assert plan.backend == "parallel"


class TestPlanLevelwise:
    def test_small_work_stays_serial(self):
        assert plan_levelwise(10, 100, workers=4).backend == "batch"

    def test_single_worker_stays_serial(self):
        assert plan_levelwise(1 << 20, 1 << 10, workers=1).backend == "batch"

    def test_large_work_goes_parallel(self):
        plan = plan_levelwise(1 << 20, 1 << 10, workers=4)
        assert plan.backend == "parallel"
        assert plan.workers == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_levelwise(-1, 10)


class TestPlanBuild:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            plan_build(10, 100, requested="device")
        with pytest.raises(ValueError):
            BuildPlan("batch", 1, "counting backend is not a build backend")

    def test_explicit_requests_honoured(self):
        assert plan_build(2, 10, requested="host").backend == "host"
        assert plan_build(2, 10, requested="bulk").backend == "bulk"

    def test_parallel_demotes_below_floor(self):
        plan = plan_build(4, 100, requested="parallel", workers=4)
        assert plan.backend == "bulk"
        assert "pay-off floor" in plan.reason

    def test_parallel_demotes_on_single_worker(self):
        plan = plan_build(PARALLEL_BUILD_MIN_SETS,
                          PARALLEL_BUILD_MIN_ELEMENTS,
                          requested="parallel", workers=1)
        assert plan.backend == "bulk"

    def test_parallel_honoured_above_floor(self):
        plan = plan_build(PARALLEL_BUILD_MIN_SETS,
                          PARALLEL_BUILD_MIN_ELEMENTS,
                          requested="parallel", workers=3)
        assert plan.backend == "parallel"
        assert plan.workers == 3

    def test_auto_tiny_stays_host(self):
        assert plan_build(8, BULK_BUILD_MIN_ELEMENTS - 1).backend == "host"

    def test_auto_medium_goes_bulk(self):
        assert plan_build(64, BULK_BUILD_MIN_ELEMENTS).backend == "bulk"

    def test_auto_large_multicore_goes_parallel(self):
        plan = plan_build(PARALLEL_BUILD_MIN_SETS,
                          PARALLEL_BUILD_MIN_ELEMENTS, workers=4)
        assert plan.backend == "parallel"

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_build(-1, 10)
        with pytest.raises(ValueError):
            plan_build(1, -10)
